//! Deterministic retry policy: exponential backoff with seeded jitter.
//!
//! Retrying an FHE inference is expensive — one attempt can cost seconds —
//! so the policy is deliberately small: a handful of attempts with
//! exponentially growing pauses. The jitter is *seeded*, not sampled from
//! a global RNG, and the stream is keyed **per request id**: each request
//! gets its own splitmix64 substream (`splitmix64(seed ^
//! splitmix64(request_id))`) that the attempt index walks. Nothing about
//! which worker runs the request, or how many workers exist, enters the
//! draw — so a chaos soak replays bit-identical backoff schedules across
//! `CHET_THREADS` settings. That determinism is what lets the soak tests
//! assert breaker transitions instead of sleeping and hoping.

use chet_runtime::fault::splitmix64;
use std::time::Duration;

/// Uniform draw in `[0, 1)` from a mixed word.
fn unit(z: u64) -> f64 {
    (splitmix64(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// How a worker retries a failed primary attempt.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total primary attempts per request (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper bound on any single backoff pause.
    pub cap: Duration,
    /// Jitter amplitude in `[0, 1]`: each pause is scaled by a factor
    /// drawn deterministically from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            jitter: 0.25,
            seed: 0x00C0_FFEE,
        }
    }
}

impl RetryPolicy {
    /// Pause before retry number `attempt` (1-based: the pause after the
    /// first failure is `backoff(request_id, 1)`). Pure function of the
    /// policy, the request id and the attempt index — deliberately *not*
    /// of the worker identity, so the schedule is identical no matter
    /// which thread of how many picks the request up.
    pub fn backoff(&self, request_id: u64, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.cap);
        // Per-request substream: hash the request id into its own stream
        // origin first, then walk it by attempt. XOR-folding the raw id
        // (the old scheme) let structured ids (sequential counters) land
        // adjacent requests on correlated draws.
        let stream = splitmix64(self.seed ^ splitmix64(request_id));
        let draw = unit(stream.wrapping_add(u64::from(attempt)));
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * draw - 1.0);
        exp.mul_f64(factor.max(0.0))
    }

    /// Whether attempt number `attempt` (1-based) may still run.
    pub fn allows(&self, attempt: usize) -> bool {
        attempt <= self.max_attempts.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(7, 1), p.backoff(7, 1));
        // Different requests get different jitter, same envelope.
        assert_ne!(p.backoff(7, 1), p.backoff(8, 1));
        // The exponential envelope dominates the jitter band.
        assert!(p.backoff(7, 3) > p.backoff(7, 1));
    }

    #[test]
    fn backoff_respects_the_cap() {
        let p = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        assert!(p.backoff(1, 30) <= p.cap);
    }

    #[test]
    fn jitter_stays_in_band() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        for req in 0..100u64 {
            let d = p.backoff(req, 1);
            assert!(d >= p.base.mul_f64(0.5) && d <= p.base.mul_f64(1.5), "{d:?}");
        }
    }

    #[test]
    fn attempt_budget_counts_the_first_try() {
        let p = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        assert!(p.allows(1));
        assert!(p.allows(2));
        assert!(!p.allows(3));
    }
}
