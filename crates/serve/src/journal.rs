//! Durable request journal: a write-ahead log giving the service
//! exactly-once *acknowledgement* semantics across process crashes.
//!
//! CHET's serving model computes blindly over ciphertexts — a crash
//! mid-inference silently discards minutes of encrypted work, and the
//! client cannot tell a lost request from a slow one. The store
//! ([`crate::store`]) made the *artifact* crash-safe; this module makes
//! the *requests* crash-safe. Every request walks a journaled state
//! machine under a client-supplied idempotency key:
//!
//! ```text
//! Admitted(key, input) ──> Started ──> Completed(digest, output)
//!                                 └──> Failed(code)
//! ```
//!
//! * **Admitted** is written *durably* before `submit` returns: an
//!   acknowledged admission survives any crash after the ack.
//! * **Completed** is written durably *before* the response is sent: a
//!   response the client saw is always recoverable from the journal, and
//!   replay never re-executes it.
//! * **Failed** closes the request with a typed code — including
//!   [`FailCode::Shutdown`] for requests a draining shutdown rejected, so
//!   replay does not re-run work the client already saw rejected.
//!
//! # On-disk format
//!
//! The journal reuses the store's framing discipline: one append-only
//! file (`journal.wal`) of self-delimiting records, each
//!
//! ```text
//! magic[8]="CHETJRNL" | version u8 | kind u8 | payload_len u32 | payload | fnv1a64 u64
//! ```
//!
//! with the FNV-1a-64 checksum covering every byte before it. Recovery
//! scans the file front to back; the first record that fails framing,
//! checksum or decode marks a **torn tail** — everything from that offset
//! is moved to `journal.torn` (forensics survive) and the live file is
//! truncated back to the last intact record. Nothing after a torn record
//! can be trusted, because framing has lost sync.
//!
//! # Group commit
//!
//! Durability must not serialize the worker pool, so [`Journal::append_durable`]
//! uses **leader-based group commit**: appenders stage framed bytes into a
//! shared buffer under a small mutex, then race for the writer lock. The
//! winner (leader) writes and fsyncs *everything staged so far* in one
//! batch; the losers find their sequence number already durable when they
//! get the lock and return without touching the disk. Under concurrency,
//! one fsync acknowledges many requests. `group_commit: false` disables
//! the shortcut — every durable append holds the writer lock across its
//! own write + fsync — which is what `bench_journal` compares against.
//!
//! # Recovery
//!
//! [`Journal::open`] rebuilds the request state machine and reports, in
//! admission order, every request that was admitted but neither completed
//! nor failed — the service re-enqueues those ([`crate::InferenceService`]
//! replays them through the normal worker pool). Completed responses are
//! kept in a **bounded** in-memory cache so a duplicate idempotency key is
//! answered from the journal instead of re-running ciphertext compute.

use crate::chaos::{CrashPlan, CrashPoint};
use crate::store::RecordFault;
use chet_hisa::serial::{fnv1a64, CodecError, Reader, Writer};
use chet_tensor::Tensor;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Journal record magic — distinct from the store's `CHETSTOR`.
const MAGIC: &[u8; 8] = b"CHETJRNL";

/// Journal format version; bump on layout changes.
pub const JOURNAL_FORMAT_VERSION: u8 = 1;

/// Fixed bytes before the payload: magic + version + kind + payload_len.
const HEADER: usize = 8 + 1 + 1 + 4;

/// Live journal file name inside the store directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Where a torn tail is quarantined for forensics.
pub const TORN_FILE: &str = "journal.torn";

/// Journal tuning, carried in [`crate::ServeConfig::journal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Master switch. When `true`, the service requires a `store_dir` and
    /// journals every admission/completion through it.
    pub enabled: bool,
    /// Leader-based group-commit batching for durable appends. `false`
    /// serializes one fsync per record (measurably slower under load; see
    /// `BENCH_journal.json`).
    pub group_commit: bool,
    /// Capacity of the completed-response cache serving duplicate
    /// idempotency keys. Bounded: oldest completions are evicted first.
    pub completed_cache: usize,
    /// Seeded kill-site plan for the crash harness (`None` in production).
    pub crash: Option<CrashPlan>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { enabled: false, group_commit: true, completed_cache: 256, crash: None }
    }
}

/// Typed close-out code for a journaled request that did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailCode {
    /// Every route failed with an execution error.
    Exec,
    /// Cancelled (explicitly or by deadline).
    Cancelled,
    /// Rejected by a draining shutdown before a worker could finish it.
    Shutdown,
    /// The worker disappeared without replying.
    WorkerLost,
    /// Shed at admission after the journal had already admitted it.
    Overloaded,
}

impl FailCode {
    fn tag(self) -> u8 {
        match self {
            FailCode::Exec => 0,
            FailCode::Cancelled => 1,
            FailCode::Shutdown => 2,
            FailCode::WorkerLost => 3,
            FailCode::Overloaded => 4,
        }
    }

    fn from_tag(tag: u8, at: usize) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(FailCode::Exec),
            1 => Ok(FailCode::Cancelled),
            2 => Ok(FailCode::Shutdown),
            3 => Ok(FailCode::WorkerLost),
            4 => Ok(FailCode::Overloaded),
            tag => Err(CodecError::BadTag { at, what: "FailCode", tag }),
        }
    }
}

impl fmt::Display for FailCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailCode::Exec => "exec",
            FailCode::Cancelled => "cancelled",
            FailCode::Shutdown => "shutdown",
            FailCode::WorkerLost => "worker-lost",
            FailCode::Overloaded => "overloaded",
        };
        write!(f, "{s}")
    }
}

/// One journal record — a transition of one request's state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The request was accepted; written durably before the ack.
    Admitted {
        /// Request id (also the admission order).
        request_id: u64,
        /// Client-supplied idempotency key (empty = unkeyed, no dedup).
        idempotency_key: String,
        /// The input, so replay can re-run the request verbatim.
        image: Tensor,
    },
    /// A worker picked the request up (diagnostic; replay does not need
    /// it, but it distinguishes "lost in queue" from "lost mid-run").
    Started {
        /// Request id.
        request_id: u64,
    },
    /// The request produced a response; written durably before the reply.
    Completed {
        /// Request id.
        request_id: u64,
        /// Whether the response came from the degraded route.
        degraded: bool,
        /// [`response_digest`] of the output — the identity the crash
        /// harness uses to prove dedup served the *same* answer.
        digest: u64,
        /// The output itself, so a duplicate key can be served the actual
        /// response after a restart.
        output: Tensor,
    },
    /// The request resolved with a typed error.
    Failed {
        /// Request id.
        request_id: u64,
        /// Why.
        code: FailCode,
    },
}

impl JournalRecord {
    fn kind_tag(&self) -> u8 {
        match self {
            JournalRecord::Admitted { .. } => 1,
            JournalRecord::Started { .. } => 2,
            JournalRecord::Completed { .. } => 3,
            JournalRecord::Failed { .. } => 4,
        }
    }

    /// The request this record belongs to.
    pub fn request_id(&self) -> u64 {
        match self {
            JournalRecord::Admitted { request_id, .. }
            | JournalRecord::Started { request_id }
            | JournalRecord::Completed { request_id, .. }
            | JournalRecord::Failed { request_id, .. } => *request_id,
        }
    }
}

/// Stable digest of a response: shape, every output bit, and the degraded
/// flag. Two acknowledgements of the same idempotency key must carry equal
/// digests — that is how the crash harness detects double execution.
pub fn response_digest(output: &Tensor, degraded: bool) -> u64 {
    let mut w = Writer::new();
    w.put_u32(output.shape().len() as u32);
    for &d in output.shape() {
        w.put_usize(d);
    }
    for &v in output.data() {
        w.put_f64(v);
    }
    w.put_u8(u8::from(degraded));
    fnv1a64(&w.into_bytes())
}

fn put_tensor(w: &mut Writer, t: &Tensor) {
    w.put_u32(t.shape().len() as u32);
    for &d in t.shape() {
        w.put_usize(d);
    }
    w.put_u32(t.data().len() as u32);
    for &v in t.data() {
        w.put_f64(v);
    }
}

fn get_tensor(r: &mut Reader<'_>, what: &'static str) -> Result<Tensor, CodecError> {
    let at = r.position();
    let rank = r.get_u32(what)? as usize;
    if rank.saturating_mul(8) > r.remaining() {
        return Err(CodecError::BadLength { at, what, len: rank });
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.get_usize(what)?);
    }
    let at = r.position();
    let n = r.get_u32(what)? as usize;
    if n.saturating_mul(8) > r.remaining() {
        return Err(CodecError::BadLength { at, what, len: n });
    }
    if shape.iter().product::<usize>() != n {
        return Err(CodecError::BadLength { at, what, len: n });
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.get_f64(what)?);
    }
    Ok(Tensor::new(shape, data))
}

fn encode_payload(rec: &JournalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    match rec {
        JournalRecord::Admitted { request_id, idempotency_key, image } => {
            w.put_u64(*request_id);
            w.put_str(idempotency_key);
            put_tensor(&mut w, image);
        }
        JournalRecord::Started { request_id } => w.put_u64(*request_id),
        JournalRecord::Completed { request_id, degraded, digest, output } => {
            w.put_u64(*request_id);
            w.put_u8(u8::from(*degraded));
            w.put_u64(*digest);
            put_tensor(&mut w, output);
        }
        JournalRecord::Failed { request_id, code } => {
            w.put_u64(*request_id);
            w.put_u8(code.tag());
        }
    }
    w.into_bytes()
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<JournalRecord, CodecError> {
    let mut r = Reader::new(payload);
    let rec = match kind {
        1 => JournalRecord::Admitted {
            request_id: r.get_u64("Admitted.request_id")?,
            idempotency_key: r.get_str("Admitted.idempotency_key")?,
            image: get_tensor(&mut r, "Admitted.image")?,
        },
        2 => JournalRecord::Started { request_id: r.get_u64("Started.request_id")? },
        3 => JournalRecord::Completed {
            request_id: r.get_u64("Completed.request_id")?,
            degraded: r.get_u8("Completed.degraded")? != 0,
            digest: r.get_u64("Completed.digest")?,
            output: get_tensor(&mut r, "Completed.output")?,
        },
        4 => {
            let request_id = r.get_u64("Failed.request_id")?;
            let at = r.position();
            let code = FailCode::from_tag(r.get_u8("Failed.code")?, at)?;
            JournalRecord::Failed { request_id, code }
        }
        tag => return Err(CodecError::BadTag { at: 0, what: "JournalRecord", tag }),
    };
    r.finish()?;
    Ok(rec)
}

/// Frames one record for the wire: header, payload, trailing checksum.
fn frame(rec: &JournalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut body = Vec::with_capacity(HEADER + payload.len() + 8);
    body.extend_from_slice(MAGIC);
    body.push(JOURNAL_FORMAT_VERSION);
    body.push(rec.kind_tag());
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(&payload);
    let sum = fnv1a64(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// Attempts to read one record at the front of `bytes`; returns the record
/// and the total bytes it consumed.
fn unframe(bytes: &[u8]) -> Result<(JournalRecord, usize), RecordFault> {
    if bytes.len() < HEADER + 8 {
        return Err(RecordFault::Truncated { len: bytes.len() });
    }
    if &bytes[..8] != MAGIC {
        return Err(RecordFault::BadMagic);
    }
    let version = bytes[8];
    if version != JOURNAL_FORMAT_VERSION {
        return Err(RecordFault::UnknownVersion { version });
    }
    let payload_len = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]) as usize;
    let total = HEADER + payload_len + 8;
    if bytes.len() < total {
        return Err(RecordFault::Truncated { len: bytes.len() });
    }
    let body = &bytes[..HEADER + payload_len];
    let stored = u64::from_le_bytes(
        bytes[HEADER + payload_len..total]
            .try_into()
            .map_err(|_| RecordFault::Truncated { len: bytes.len() })?,
    );
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(RecordFault::ChecksumMismatch { stored, computed });
    }
    let rec = decode_payload(bytes[9], &bytes[HEADER..HEADER + payload_len])
        .map_err(RecordFault::Undecodable)?;
    Ok((rec, total))
}

/// A journal-level failure.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error (disk full, permissions…). Sticky: once an append
    /// fails, later appends fail too — a half-written journal must not
    /// quietly resume.
    Io(io::Error),
    /// The journal was closed (service shut down).
    Closed,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Closed => write!(f, "journal is closed"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A completed response recovered from (or served by) the journal — what a
/// duplicate idempotency key receives instead of re-running the circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedResponse {
    /// The original request id.
    pub request_id: u64,
    /// The idempotency key it completed under.
    pub idempotency_key: String,
    /// The decrypted output.
    pub output: Tensor,
    /// Whether the original run was degraded.
    pub degraded: bool,
    /// [`response_digest`] of `output` + `degraded`.
    pub digest: u64,
}

/// One admitted-but-unresolved request recovered at open, in admission
/// order. The service re-enqueues these through the normal worker pool.
#[derive(Debug, Clone)]
pub struct PendingRequest {
    /// Original request id (replay keeps it, so chaos/retry streams — all
    /// keyed by request id — replay bit-identically).
    pub request_id: u64,
    /// Original idempotency key.
    pub idempotency_key: String,
    /// Original input.
    pub image: Tensor,
    /// Whether a `Started` record was seen (it died mid-run, not queued).
    pub started: bool,
}

/// The quarantined torn tail, when recovery found one.
#[derive(Debug, Clone)]
pub struct TornTail {
    /// Byte offset in the old file where framing lost sync.
    pub at_offset: u64,
    /// Bytes moved to the quarantine file.
    pub bytes: u64,
    /// What was wrong with the first bad record.
    pub fault: RecordFault,
    /// Where the bytes went ([`TORN_FILE`]).
    pub quarantined_to: PathBuf,
}

/// What [`Journal::open`] found and rebuilt.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Intact records scanned.
    pub records: usize,
    /// Admitted-but-unresolved requests, in admission order.
    pub pending: Vec<PendingRequest>,
    /// Every completed response, in admission order (the harness inspects
    /// this; the bounded cache only keeps the newest `completed_cache`).
    pub completed: Vec<CompletedResponse>,
    /// Requests closed with a [`FailCode`].
    pub failed: usize,
    /// Requests with more than one `Completed` record — must be zero; a
    /// nonzero count is a double acknowledgement, the bug the journal
    /// exists to prevent.
    pub double_completions: usize,
    /// Torn tail quarantined at the end of the file, if any.
    pub torn: Option<TornTail>,
    /// Highest request id seen (the service resumes its counter above it).
    pub max_request_id: u64,
}

/// Bounded idempotency-key → response cache (FIFO eviction).
#[derive(Debug)]
struct CompletedCache {
    capacity: usize,
    map: HashMap<String, CompletedResponse>,
    order: VecDeque<String>,
}

impl CompletedCache {
    fn new(capacity: usize) -> Self {
        CompletedCache { capacity, map: HashMap::new(), order: VecDeque::new() }
    }

    fn insert(&mut self, resp: CompletedResponse) {
        if resp.idempotency_key.is_empty() || self.capacity == 0 {
            return; // unkeyed requests cannot be deduplicated
        }
        if self.map.insert(resp.idempotency_key.clone(), resp.clone()).is_none() {
            self.order.push_back(resp.idempotency_key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, key: &str) -> Option<CompletedResponse> {
        self.map.get(key).cloned()
    }
}

/// Staged-but-not-yet-durable state, behind a small mutex appenders hold
/// only long enough to copy framed bytes in.
#[derive(Debug)]
struct Staged {
    buf: Vec<u8>,
    /// Sequence number of the last staged record (1-based).
    appended: u64,
    closed: bool,
}

/// Writer-side state: only one thread writes/fsyncs at a time.
#[derive(Debug)]
struct Sink {
    file: File,
    /// Sequence number of the last durable record.
    flushed: u64,
    /// Sticky I/O failure.
    dead: Option<String>,
}

/// The durable request journal. See the module docs for format, group
/// commit and recovery semantics. All methods take `&self` — the journal
/// is shared across the worker pool behind an `Arc`.
#[derive(Debug)]
pub struct Journal {
    staged: Mutex<Staged>,
    sink: Mutex<Sink>,
    completed: Mutex<CompletedCache>,
    group_commit: bool,
    crash: Option<CrashPlan>,
    /// Total records appended (staged) since open.
    records_appended: AtomicU64,
    /// Total fsync batches since open.
    fsyncs: AtomicU64,
    /// Torn-tail events quarantined (0 or 1 per open; cumulative across
    /// reopens is the operator's business).
    torn_records: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, runs torn-tail
    /// recovery, rebuilds the request state machine and returns it with a
    /// [`ReplayReport`] of what must be replayed.
    pub fn open(dir: &Path, config: &JournalConfig) -> Result<(Journal, ReplayReport), JournalError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(JournalError::Io(e)),
        };

        let mut report = ReplayReport::default();
        let mut records: Vec<JournalRecord> = Vec::new();
        let mut offset = 0usize;
        let mut torn_fault: Option<RecordFault> = None;
        while offset < bytes.len() {
            match unframe(&bytes[offset..]) {
                Ok((rec, consumed)) => {
                    records.push(rec);
                    offset += consumed;
                }
                Err(fault) => {
                    torn_fault = Some(fault);
                    break;
                }
            }
        }
        if let Some(fault) = torn_fault {
            // Quarantine the tail: keep the corpse for forensics, truncate
            // the live file back to the last intact record. Quarantine
            // first — if the process dies between the two steps, the next
            // open redoes both (the write is idempotent).
            let torn_path = dir.join(TORN_FILE);
            let tail = &bytes[offset..];
            fs::write(&torn_path, tail)?;
            let keep = OpenOptions::new().write(true).open(&path);
            match keep {
                Ok(f) => f.set_len(offset as u64)?,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(JournalError::Io(e)),
            }
            report.torn = Some(TornTail {
                at_offset: offset as u64,
                bytes: tail.len() as u64,
                fault,
                quarantined_to: torn_path,
            });
        }

        // Rebuild the state machine in admission order.
        let mut admitted: BTreeMap<u64, (String, Tensor)> = BTreeMap::new();
        let mut started: HashSet<u64> = HashSet::new();
        let mut completed_ids: HashSet<u64> = HashSet::new();
        let mut failed_ids: HashSet<u64> = HashSet::new();
        let mut completed: Vec<(u64, CompletedResponse)> = Vec::new();
        for rec in &records {
            report.max_request_id = report.max_request_id.max(rec.request_id());
            match rec {
                JournalRecord::Admitted { request_id, idempotency_key, image } => {
                    admitted.insert(*request_id, (idempotency_key.clone(), image.clone()));
                }
                JournalRecord::Started { request_id } => {
                    started.insert(*request_id);
                }
                JournalRecord::Completed { request_id, degraded, digest, output } => {
                    if !completed_ids.insert(*request_id) {
                        report.double_completions += 1;
                        continue;
                    }
                    let key = admitted
                        .get(request_id)
                        .map(|(k, _)| k.clone())
                        .unwrap_or_default();
                    completed.push((
                        *request_id,
                        CompletedResponse {
                            request_id: *request_id,
                            idempotency_key: key,
                            output: output.clone(),
                            degraded: *degraded,
                            digest: *digest,
                        },
                    ));
                }
                JournalRecord::Failed { request_id, .. } => {
                    if completed_ids.contains(request_id) {
                        // Completed wins: the client saw a response.
                        continue;
                    }
                    failed_ids.insert(*request_id);
                }
            }
        }
        completed.sort_by_key(|(id, _)| *id);
        report.records = records.len();
        report.failed = failed_ids.len();
        report.pending = admitted
            .iter()
            .filter(|(id, _)| !completed_ids.contains(id) && !failed_ids.contains(id))
            .map(|(id, (key, image))| PendingRequest {
                request_id: *id,
                idempotency_key: key.clone(),
                image: image.clone(),
                started: started.contains(id),
            })
            .collect();

        // The bounded cache keeps the newest completions.
        let mut cache = CompletedCache::new(config.completed_cache);
        let skip = completed.len().saturating_sub(config.completed_cache);
        for (_, resp) in completed.iter().skip(skip) {
            cache.insert(resp.clone());
        }
        report.completed = completed.into_iter().map(|(_, r)| r).collect();

        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let journal = Journal {
            staged: Mutex::new(Staged { buf: Vec::new(), appended: 0, closed: false }),
            sink: Mutex::new(Sink { file, flushed: 0, dead: None }),
            completed: Mutex::new(cache),
            group_commit: config.group_commit,
            crash: config.crash.clone(),
            records_appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            torn_records: AtomicU64::new(u64::from(report.torn.is_some())),
        };
        Ok((journal, report))
    }

    /// Stages a record for the next flush (no durability yet). Returns the
    /// record's journal sequence number for [`Journal::wait_durable`]-style
    /// reasoning; most callers use [`Journal::append_durable`] instead.
    pub fn append(&self, rec: &JournalRecord) -> Result<u64, JournalError> {
        let framed = frame(rec);
        let seq = {
            let mut g = self.staged.lock().unwrap_or_else(|p| p.into_inner());
            if g.closed {
                return Err(JournalError::Closed);
            }
            g.buf.extend_from_slice(&framed);
            g.appended += 1;
            g.appended
        };
        self.records_appended.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Stages a record and blocks until it (and everything staged before
    /// it) is fsynced. This is the acknowledgement barrier: `Admitted`
    /// goes through here before `submit` returns, and `Completed` before
    /// the reply is sent.
    pub fn append_durable(&self, rec: &JournalRecord) -> Result<u64, JournalError> {
        if !self.group_commit {
            // No group commit: hold the writer lock across stage + write +
            // fsync, one fsync per record.
            let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
            let seq = self.append(rec)?;
            self.flush_into(&mut sink)?;
            return Ok(seq);
        }
        let seq = self.append(rec)?;
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        if sink.flushed >= seq {
            // A concurrent leader's batch already carried this record.
            if let Some(dead) = &sink.dead {
                return Err(JournalError::Io(io::Error::other(dead.clone())));
            }
            return Ok(seq);
        }
        self.flush_into(&mut sink)?;
        Ok(seq)
    }

    /// Publishes a completed response into the dedup cache. The service
    /// calls this right after journaling the `Completed` record (the
    /// journal itself cannot know the idempotency key binding without
    /// re-deriving it from admissions).
    pub fn note_completed(&self, resp: CompletedResponse) {
        self.completed.lock().unwrap_or_else(|p| p.into_inner()).insert(resp);
    }

    /// Looks a completed response up by idempotency key — the duplicate-
    /// submission fast path.
    pub fn lookup_completed(&self, key: &str) -> Option<CompletedResponse> {
        if key.is_empty() {
            return None;
        }
        self.completed.lock().unwrap_or_else(|p| p.into_inner()).get(key)
    }

    /// Flushes everything staged. Called by shutdown; also useful after a
    /// burst of non-durable appends.
    pub fn flush(&self) -> Result<(), JournalError> {
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        self.flush_into(&mut sink)
    }

    /// Marks the journal closed: subsequent appends fail with
    /// [`JournalError::Closed`]. Staged records are flushed first.
    pub fn close(&self) -> Result<(), JournalError> {
        let flush = self.flush();
        let mut g = self.staged.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        flush
    }

    /// Records staged but not yet durable — the journal-lag health signal.
    pub fn lag(&self) -> u64 {
        let appended = {
            let g = self.staged.lock().unwrap_or_else(|p| p.into_inner());
            g.appended
        };
        let flushed = {
            let g = self.sink.lock().unwrap_or_else(|p| p.into_inner());
            g.flushed
        };
        appended.saturating_sub(flushed)
    }

    /// Total records appended since open.
    pub fn records_appended(&self) -> u64 {
        self.records_appended.load(Ordering::Relaxed)
    }

    /// Total fsync batches since open — `records_appended / fsyncs` is the
    /// realized group-commit batching factor.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Torn-tail events quarantined by this open.
    pub fn torn_records(&self) -> u64 {
        self.torn_records.load(Ordering::Relaxed)
    }

    /// The batch write + fsync cycle, run with the writer lock held.
    /// Carries the crash harness's first two kill sites.
    fn flush_into(&self, sink: &mut Sink) -> Result<(), JournalError> {
        if let Some(dead) = &sink.dead {
            return Err(JournalError::Io(io::Error::other(dead.clone())));
        }
        let (batch, target) = {
            let mut g = self.staged.lock().unwrap_or_else(|p| p.into_inner());
            (std::mem::take(&mut g.buf), g.appended)
        };
        if batch.is_empty() {
            return Ok(());
        }
        if let Some(crash) = &self.crash {
            if crash.fires(CrashPoint::BeforeFsync) {
                // Model a torn write: half the batch durably reaches the
                // disk, then the process dies before the full fsync. The
                // next open must quarantine the torn tail.
                let half = &batch[..batch.len() / 2];
                let _ = sink.file.write_all(half);
                let _ = sink.file.sync_data();
                std::process::abort();
            }
        }
        let result = sink.file.write_all(&batch).and_then(|()| sink.file.sync_data());
        if let Err(e) = result {
            sink.dead = Some(e.to_string());
            return Err(JournalError::Io(e));
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let Some(crash) = &self.crash {
            if crash.fires(CrashPoint::AfterFsyncBeforeAck) {
                // The batch is durable but nobody has been acknowledged.
                std::process::abort();
            }
        }
        sink.flushed = target;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("chet-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn img(seed: u64) -> Tensor {
        Tensor::random(vec![1, 2, 2], 1.0, seed)
    }

    fn admit(id: u64, key: &str) -> JournalRecord {
        JournalRecord::Admitted {
            request_id: id,
            idempotency_key: key.to_string(),
            image: img(id),
        }
    }

    fn complete(id: u64, key: &str) -> (JournalRecord, CompletedResponse) {
        let output = img(1000 + id);
        let digest = response_digest(&output, false);
        (
            JournalRecord::Completed {
                request_id: id,
                degraded: false,
                digest,
                output: output.clone(),
            },
            CompletedResponse {
                request_id: id,
                idempotency_key: key.to_string(),
                output,
                degraded: false,
                digest,
            },
        )
    }

    #[test]
    fn records_roundtrip_through_framing() {
        let recs = vec![
            admit(1, "k1"),
            JournalRecord::Started { request_id: 1 },
            complete(1, "k1").0,
            JournalRecord::Failed { request_id: 2, code: FailCode::Shutdown },
        ];
        for rec in &recs {
            let framed = frame(rec);
            let (back, consumed) = unframe(&framed).unwrap();
            assert_eq!(consumed, framed.len());
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn state_machine_replays_pending_in_admission_order() {
        let dir = tmpdir("replay");
        let cfg = JournalConfig { enabled: true, ..JournalConfig::default() };
        {
            let (j, rep) = Journal::open(&dir, &cfg).unwrap();
            assert!(rep.pending.is_empty());
            j.append_durable(&admit(1, "a")).unwrap();
            j.append_durable(&admit(2, "b")).unwrap();
            j.append(&JournalRecord::Started { request_id: 1 }).unwrap();
            j.append_durable(&admit(3, "c")).unwrap();
            let (rec, resp) = complete(2, "b");
            j.append_durable(&rec).unwrap();
            j.note_completed(resp);
            j.append_durable(&JournalRecord::Failed { request_id: 3, code: FailCode::Shutdown })
                .unwrap();
            j.close().unwrap();
        }
        let (j, rep) = Journal::open(&dir, &cfg).unwrap();
        assert_eq!(rep.records, 6);
        assert_eq!(rep.failed, 1);
        assert_eq!(rep.max_request_id, 3);
        assert!(rep.torn.is_none());
        // Only request 1 is pending: 2 completed, 3 failed(shutdown).
        assert_eq!(rep.pending.len(), 1);
        assert_eq!(rep.pending[0].request_id, 1);
        assert!(rep.pending[0].started);
        assert_eq!(rep.pending[0].idempotency_key, "a");
        // The completed response is servable by key after reopen.
        let resp = j.lookup_completed("b").expect("cached");
        assert_eq!(resp.request_id, 2);
        assert_eq!(rep.completed.len(), 1);
        assert_eq!(rep.double_completions, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_quarantined_and_prefix_survives() {
        let dir = tmpdir("torn");
        let cfg = JournalConfig { enabled: true, ..JournalConfig::default() };
        let path = dir.join(JOURNAL_FILE);
        {
            let (j, _) = Journal::open(&dir, &cfg).unwrap();
            j.append_durable(&admit(1, "a")).unwrap();
            j.append_durable(&admit(2, "b")).unwrap();
            j.close().unwrap();
        }
        let full = fs::read(&path).unwrap();
        let first_len = unframe(&full).unwrap().1;
        // Truncate into the middle of record 2: record 1 must survive,
        // the tail must be quarantined, and a reopen must not see damage.
        fs::write(&path, &full[..first_len + 7]).unwrap();
        let (j, rep) = Journal::open(&dir, &cfg).unwrap();
        assert_eq!(rep.records, 1);
        assert_eq!(rep.pending.len(), 1);
        let torn = rep.torn.expect("torn tail detected");
        assert_eq!(torn.at_offset, first_len as u64);
        assert_eq!(torn.bytes, 7);
        assert!(torn.quarantined_to.exists());
        assert_eq!(j.torn_records(), 1);
        drop(j);
        // The live file was truncated back to the intact prefix, so the
        // next open is clean.
        let (_, rep) = Journal::open(&dir, &cfg).unwrap();
        assert!(rep.torn.is_none());
        assert_eq!(rep.records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_quarantines_everything_after_it() {
        let dir = tmpdir("midflip");
        let cfg = JournalConfig { enabled: true, ..JournalConfig::default() };
        let path = dir.join(JOURNAL_FILE);
        {
            let (j, _) = Journal::open(&dir, &cfg).unwrap();
            j.append_durable(&admit(1, "a")).unwrap();
            j.append_durable(&admit(2, "b")).unwrap();
            j.append_durable(&admit(3, "c")).unwrap();
            j.close().unwrap();
        }
        let full = fs::read(&path).unwrap();
        let first_len = unframe(&full).unwrap().1;
        let mut bad = full.clone();
        bad[first_len + 20] ^= 0x10; // inside record 2
        fs::write(&path, &bad).unwrap();
        let (_, rep) = Journal::open(&dir, &cfg).unwrap();
        // Framing lost sync at record 2: record 3 is quarantined with it.
        assert_eq!(rep.records, 1);
        assert!(matches!(
            rep.torn.as_ref().map(|t| &t.fault),
            Some(RecordFault::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_cache_is_bounded_fifo() {
        let mut cache = CompletedCache::new(2);
        for id in 1..=3u64 {
            let (_, resp) = complete(id, &format!("k{id}"));
            cache.insert(resp);
        }
        assert!(cache.get("k1").is_none(), "oldest evicted");
        assert!(cache.get("k2").is_some());
        assert!(cache.get("k3").is_some());
        // Unkeyed completions never enter the cache.
        let (_, mut resp) = complete(9, "");
        resp.idempotency_key = String::new();
        cache.insert(resp);
        assert!(cache.get("").is_none());
    }

    #[test]
    fn group_commit_batches_concurrent_durable_appends() {
        let dir = tmpdir("group");
        let cfg = JournalConfig { enabled: true, ..JournalConfig::default() };
        let (j, _) = Journal::open(&dir, &cfg).unwrap();
        let j = Arc::new(j);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let j2 = Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for i in 0..16u64 {
                    j2.append_durable(&admit(t * 100 + i, "")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.records_appended(), 64);
        assert_eq!(j.lag(), 0, "every durable append is flushed");
        // Leader-based batching: strictly fewer fsyncs than records would
        // prove batching, but on a fast disk every append may win its own
        // leadership; the hard bound is fsyncs <= records.
        assert!(j.fsyncs() <= 64);
        // Everything actually landed.
        let j_owned = Arc::try_unwrap(j).unwrap();
        j_owned.close().unwrap();
        let (_, rep) = Journal::open(&dir, &cfg).unwrap();
        assert_eq!(rep.records, 64);
        assert_eq!(rep.pending.len(), 64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_group_commit_fsyncs_every_record() {
        let dir = tmpdir("nogroup");
        let cfg =
            JournalConfig { enabled: true, group_commit: false, ..JournalConfig::default() };
        let (j, _) = Journal::open(&dir, &cfg).unwrap();
        for i in 0..8u64 {
            j.append_durable(&admit(i, "")).unwrap();
        }
        assert_eq!(j.fsyncs(), 8);
        assert_eq!(j.lag(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn closed_journal_refuses_appends() {
        let dir = tmpdir("closed");
        let cfg = JournalConfig { enabled: true, ..JournalConfig::default() };
        let (j, _) = Journal::open(&dir, &cfg).unwrap();
        j.close().unwrap();
        assert!(matches!(j.append(&admit(1, "a")), Err(JournalError::Closed)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn response_digest_distinguishes_output_and_degraded() {
        let t = img(5);
        let a = response_digest(&t, false);
        assert_eq!(a, response_digest(&t, false));
        assert_ne!(a, response_digest(&t, true));
        assert_ne!(a, response_digest(&img(6), false));
    }

    #[test]
    fn completed_wins_over_a_later_failed_record() {
        // A watchdog-cancelled worker can race shutdown marking: if the
        // client saw a response, the response is the truth.
        let dir = tmpdir("race");
        let cfg = JournalConfig { enabled: true, ..JournalConfig::default() };
        {
            let (j, _) = Journal::open(&dir, &cfg).unwrap();
            j.append_durable(&admit(1, "k")).unwrap();
            let (rec, _) = complete(1, "k");
            j.append_durable(&rec).unwrap();
            j.append_durable(&JournalRecord::Failed { request_id: 1, code: FailCode::Shutdown })
                .unwrap();
        }
        let (_, rep) = Journal::open(&dir, &cfg).unwrap();
        assert!(rep.pending.is_empty());
        assert_eq!(rep.completed.len(), 1);
        assert_eq!(rep.failed, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
