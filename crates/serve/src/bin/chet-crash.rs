//! Kill-and-restart crash harness for the durable request journal.
//!
//! Proves the journal's exactly-once acknowledgement contract the honest
//! way: by actually killing the process. The harness runs in two roles:
//!
//! * **Parent** (default): orchestrates a scenario for one named crash
//!   point — spawns itself as a child serving process armed with a seeded
//!   [`CrashPlan`], lets it die mid-flight (`std::process::abort` at the
//!   planted kill site), restarts it until a round completes cleanly,
//!   then audits the journal directly:
//!     - zero lost acknowledged requests — every `acked <key> <digest>`
//!       line a child printed must appear in the journal's completed set
//!       with the identical digest;
//!     - zero double executions — no idempotency key completes more than
//!       once across all rounds, and `double_completions == 0`;
//!     - a clean final state — no pending requests survive the last round.
//!   Prints `digest=<hex>` over the sorted completed (key, digest) pairs;
//!   ci.sh diffs it across `CHET_THREADS=1/4` and across seeds.
//! * **Child** (`--child`): starts an [`InferenceService`] with journaling
//!   on and the crash plan armed, submits `--requests` keyed requests,
//!   and prints an ack line per response the moment the client sees it.
//!
//! Crash points (see [`CrashPoint`]): `before-fsync` models a torn batch
//! write (half the batch reaches disk), `after-fsync` dies with durable
//! records nobody was acked for, `mid-replay` dies while re-enqueueing
//! the recovered backlog. The `mid-replay` scenario runs three rounds:
//! an early `after-fsync` crash to build a backlog, a `mid-replay` crash
//! during its recovery, then a clean round.

use chet_ckks::sim::SimCkks;
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_hisa::serial::fnv1a64;
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{
    CrashPlan, CrashPoint, InferenceService, Journal, JournalConfig, ServeConfig, ServeError,
    Submission,
};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::collections::BTreeMap;
use std::io::Write as IoWrite;
use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

fn small_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

fn scales() -> ScaleConfig {
    ScaleConfig::from_log2(25, 12, 12, 10)
}

fn compiler() -> Compiler {
    Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20))
}

fn image(seed: u64, i: u64) -> Tensor {
    Tensor::random(vec![1, 6, 6], 1.0, seed.wrapping_mul(1_000_003).wrapping_add(i))
}

struct Args {
    child: bool,
    point: String,
    seed: u64,
    dir: Option<PathBuf>,
    requests: u64,
    span: u64,
    keep: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        child: false,
        point: "none".to_string(),
        seed: 11,
        dir: None,
        requests: 24,
        span: 0,
        keep: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--child" => args.child = true,
            "--keep" => args.keep = true,
            "--point" => args.point = take("--point")?,
            "--dir" => args.dir = Some(PathBuf::from(take("--dir")?)),
            "--seed" => args.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--requests" => {
                args.requests =
                    take("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--span" => args.span = take("--span")?.parse().map_err(|e| format!("--span: {e}"))?,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.point != "none" && CrashPoint::parse(&args.point).is_none() {
        return Err(format!("unknown crash point '{}'", args.point));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "chet-crash: {e}\nusage: chet-crash [--point before-fsync|after-fsync|mid-replay|none] \
                 [--seed N] [--requests N] [--dir D] [--keep]"
            );
            return ExitCode::FAILURE;
        }
    };
    if args.child {
        run_child(&args)
    } else {
        run_parent(&args)
    }
}

/// One serving round: start (replaying whatever the journal holds),
/// submit every key, print an ack line per delivered response, shut down.
fn run_child(args: &Args) -> ExitCode {
    let Some(dir) = args.dir.clone() else {
        eprintln!("chet-crash --child: --dir is required");
        return ExitCode::FAILURE;
    };
    let crash = CrashPoint::parse(&args.point)
        .map(|p| CrashPlan::from_seed(p, args.seed, args.span.max(1)));
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 256,
        store_dir: Some(dir),
        journal: JournalConfig { enabled: true, completed_cache: 1024, crash, ..JournalConfig::default() },
        ..ServeConfig::default()
    };
    let service = match InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config,
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chet-crash --child: service failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    let ack = |key: &str, digest: u64| {
        // Ack lines must hit the pipe *before* any later abort: the
        // parent treats every printed ack as a durability obligation.
        let mut out = stdout.lock();
        let _ = writeln!(out, "acked {key} {digest:016x}");
        let _ = out.flush();
    };
    let mut waiting = Vec::new(); // (key, ticket)
    let mut polling = Vec::new(); // keys in flight from a previous life
    for i in 0..args.requests {
        let key = format!("req-{i}");
        match service.submit_keyed(image(args.seed, i), &key) {
            Ok(Submission::Accepted(ticket)) => waiting.push((key, ticket)),
            Ok(Submission::Duplicate(resp)) => ack(&key, resp.digest),
            Err(ServeError::DuplicatePending { .. }) => polling.push(key),
            Err(e) => {
                eprintln!("chet-crash --child: submit {key}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for (key, ticket) in waiting {
        match ticket.wait() {
            Ok(resp) => ack(&key, chet_serve::response_digest(&resp.output, resp.degraded)),
            Err(e) => {
                eprintln!("chet-crash --child: {key} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Keys admitted by a previous life and replayed at startup: their
    // reply channels died with the old process, so the response surfaces
    // through the journal's completed cache.
    let deadline = Instant::now() + Duration::from_secs(30);
    for key in polling {
        loop {
            if let Some(resp) = service.lookup(&key) {
                ack(&key, resp.digest);
                break;
            }
            if Instant::now() >= deadline {
                eprintln!("chet-crash --child: timed out waiting for replayed {key}");
                return ExitCode::FAILURE;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    service.shutdown();
    ExitCode::SUCCESS
}

/// Spawns one child round, returning (clean exit, acked key→digest).
fn spawn_round(
    dir: &std::path::Path,
    seed: u64,
    point: &str,
    span: u64,
    requests: u64,
) -> Result<(bool, BTreeMap<String, u64>), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let out = Command::new(exe)
        .args([
            "--child",
            "--dir",
            &dir.display().to_string(),
            "--seed",
            &seed.to_string(),
            "--point",
            point,
            "--span",
            &span.to_string(),
            "--requests",
            &requests.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .output()
        .map_err(|e| format!("spawning child: {e}"))?;
    let mut acked = BTreeMap::new();
    for line in String::from_utf8_lossy(&out.stdout).lines() {
        if let Some(rest) = line.strip_prefix("acked ") {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or_default().to_string();
            let digest = parts
                .next()
                .and_then(|d| u64::from_str_radix(d, 16).ok())
                .ok_or(format!("malformed ack line: {line}"))?;
            acked.insert(key, digest);
        }
    }
    Ok((out.status.success(), acked))
}

fn run_parent(args: &Args) -> ExitCode {
    match run_scenario(args) {
        Ok(digest) => {
            println!("digest={digest:016x}");
            println!("crash scenario '{}' seed {} passed", args.point, args.seed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chet-crash: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_scenario(args: &Args) -> Result<u64, String> {
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "chet-crash-{}-{}-{}",
            args.point,
            args.seed,
            std::process::id()
        ))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let n = args.requests;
    // Round plan per scenario. Crash rounds either die at the planted
    // site or (if the plan's trigger count outruns the run) finish clean;
    // the final round must always finish clean.
    let rounds: Vec<(&str, u64)> = match args.point.as_str() {
        "none" => vec![("none", 0)],
        // Crash somewhere across the whole run — a span of 2N durable
        // flushes (N admissions + up to N completions) lets the seeded
        // kill land either before or after the first acks — then recover.
        "before-fsync" => vec![("before-fsync", 2 * n), ("none", 0)],
        "after-fsync" | "after-fsync-before-ack" => vec![("after-fsync", 2 * n), ("none", 0)],
        // Build a backlog with an early crash, crash again mid-replay of
        // that backlog, then recover for real.
        "mid-replay" => {
            vec![("after-fsync", (n / 3).max(1)), ("mid-replay", 2), ("none", 0)]
        }
        other => return Err(format!("unknown crash point '{other}'")),
    };

    // Acked digests accumulated across every round (every line a client
    // saw, in any life of the process).
    let mut acked: BTreeMap<String, u64> = BTreeMap::new();
    let total = rounds.len();
    for (i, (point, span)) in rounds.iter().enumerate() {
        let (clean, round_acks) = spawn_round(&dir, args.seed, point, *span, n)?;
        let last = i + 1 == total;
        eprintln!(
            "round {}/{total}: point={point} clean_exit={clean} acks={}",
            i + 1,
            round_acks.len()
        );
        if last && !clean {
            return Err("final clean round did not exit cleanly".to_string());
        }
        for (key, digest) in round_acks {
            if let Some(prev) = acked.get(&key) {
                if *prev != digest {
                    return Err(format!(
                        "key {key} acked with two different digests ({prev:016x} vs {digest:016x}): \
                         duplicate execution"
                    ));
                }
            }
            acked.insert(key, digest);
        }
    }

    // Audit the journal directly — not through the service — so the
    // assertions hold against what is actually on disk.
    let cfg = JournalConfig { enabled: true, completed_cache: 4096, ..JournalConfig::default() };
    let (_, report) =
        Journal::open(&dir, &cfg).map_err(|e| format!("opening journal for audit: {e}"))?;
    if report.double_completions != 0 {
        return Err(format!(
            "{} double completion(s) in the journal: duplicate execution",
            report.double_completions
        ));
    }
    if !report.pending.is_empty() {
        return Err(format!(
            "{} request(s) still pending after the clean final round",
            report.pending.len()
        ));
    }
    // Zero double executions, by key: each idempotency key completes at
    // most once across every life of the process.
    let mut completed: BTreeMap<String, u64> = BTreeMap::new();
    for resp in &report.completed {
        if completed.insert(resp.idempotency_key.clone(), resp.digest).is_some() {
            return Err(format!(
                "key {} completed more than once: duplicate execution",
                resp.idempotency_key
            ));
        }
    }
    // Zero lost acknowledged requests: every ack a client saw is durable,
    // digest-identical.
    for (key, digest) in &acked {
        match completed.get(key) {
            Some(d) if d == digest => {}
            Some(d) => {
                return Err(format!(
                    "key {key}: acked digest {digest:016x} but journal holds {d:016x}"
                ));
            }
            None => return Err(format!("key {key}: acknowledged but lost from the journal")),
        }
    }
    eprintln!(
        "audit: {} journal records, {} completed, {} acked, torn_tail={}",
        report.records,
        completed.len(),
        acked.len(),
        report.torn.is_some()
    );
    if !args.keep {
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The scenario digest: sorted completed (key, digest) pairs. Pure
    // function of the seed and request set — bit-identical across
    // CHET_THREADS and across runs.
    let mut w = Vec::new();
    for (key, digest) in &completed {
        w.extend_from_slice(key.as_bytes());
        w.extend_from_slice(&digest.to_le_bytes());
    }
    Ok(fnv1a64(&w))
}
