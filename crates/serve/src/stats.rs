//! Service observability: lock-free counters and a log₂ latency histogram.
//!
//! Counters are plain relaxed atomics — they feed dashboards, not control
//! flow, so cross-counter consistency is not required. The histogram uses
//! power-of-two microsecond buckets (1 µs … ~1 s, plus an overflow
//! bucket), which is plenty of resolution for FHE inference latencies that
//! span from sub-millisecond simulator runs to multi-second lattice runs.

use crate::breaker::BreakerSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs; the last bucket absorbs everything larger.
pub const LATENCY_BUCKETS: usize = 21;

/// Concurrent latency histogram with log₂ microsecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Records one request latency.
    ///
    /// Sub-microsecond latencies land in bucket 0 (`[1, 2)` µs) and
    /// anything at or beyond `2^20` µs lands in the overflow bucket; the
    /// running total saturates at `u64::MAX` µs instead of wrapping, so the
    /// mean degrades gracefully rather than going nonsensical.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_add wraps on overflow; a few u64::MAX-µs outliers (e.g. a
        // stuck clock) must not reset the cumulative total to near zero.
        let _ = self.total_micros.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
            Some(t.saturating_add(us))
        });
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        LatencySnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
        }
    }
}

/// Immutable histogram snapshot.
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    /// Bucket `i` counts latencies in `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total recorded latencies.
    pub count: u64,
    /// Sum of recorded latencies, µs.
    pub total_micros: u64,
}

impl LatencySnapshot {
    /// Mean latency, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros / self.count)
    }

    /// Upper bound (µs) of the bucket holding quantile `q` in `[0, 1]` —
    /// a coarse percentile estimate, exact to within one power of two.
    pub fn quantile_upper_bound_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                // The final bucket absorbs everything >= 2^(BUCKETS-1) µs,
                // so its honest upper bound is "unbounded", not 2^BUCKETS.
                if i == LATENCY_BUCKETS - 1 {
                    return u64::MAX;
                }
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }
}

/// Monotonic service counters (all relaxed atomics).
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub shed: AtomicU64,
    /// Requests completed on the primary backend.
    pub completed_ok: AtomicU64,
    /// Requests completed degraded on the fallback backend.
    pub degraded: AtomicU64,
    /// Requests that ended in a structured error.
    pub failed: AtomicU64,
    /// Requests aborted by cancellation or deadline.
    pub cancelled: AtomicU64,
    /// Primary attempts beyond each request's first (retries).
    pub retries: AtomicU64,
    /// Artifact repair recompilations that produced a new version.
    pub repairs: AtomicU64,
    /// Requests whose primary attempts were exhausted without success.
    pub retries_exhausted: AtomicU64,
    /// Worker panics caught and converted to structured errors.
    pub panics_caught: AtomicU64,
    /// Watchdog interventions (step-1 cancellations and step-2
    /// quarantines) against wedged workers.
    pub watchdog_escalations: AtomicU64,
    /// Replacement workers spawned after a quarantine.
    pub workers_respawned: AtomicU64,
    /// Store records quarantined as corrupt (at open or at read).
    pub quarantined_records: AtomicU64,
    /// Recompilations forced because the store had no usable artifact.
    pub store_recompiles: AtomicU64,
    /// Responses dropped by chaos injection (resolved as `WorkerLost`).
    pub dropped_responses: AtomicU64,
    /// Requests re-enqueued from the journal at startup (crash recovery).
    pub replayed: AtomicU64,
    /// Duplicate idempotency keys served from the completed-response
    /// cache instead of re-running ciphertext compute.
    pub deduped: AtomicU64,
    /// Pending requests marked `Failed(Shutdown)` in the journal by a
    /// draining shutdown.
    pub journal_failed_shutdown: AtomicU64,
    /// Replayed requests not yet resolved (drains to zero as recovery
    /// catches up; surfaced as a health signal while nonzero).
    pub replay_backlog: AtomicU64,
    /// Requests currently waiting in the queue.
    pub queue_depth: AtomicU64,
    /// Requests currently executing on a worker.
    pub in_flight: AtomicU64,
    /// Coalesced batches executed (dequeues that packed ≥ 2 requests
    /// into one ciphertext batch).
    pub batches_formed: AtomicU64,
    /// Requests that rode in a coalesced batch (members of the batches
    /// counted by `batches_formed`).
    pub batched_requests: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn drop_one(counter: &AtomicU64) {
        // Saturating decrement: a missed pairing must not wrap to 2^64.
        let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }
}

/// Point-in-time service statistics, as returned by
/// [`crate::InferenceService::stats`].
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected with `Overloaded` at admission.
    pub shed: u64,
    /// Requests completed on the primary backend.
    pub completed_ok: u64,
    /// Requests completed degraded on the fallback.
    pub degraded: u64,
    /// Requests that ended in a structured error.
    pub failed: u64,
    /// Requests aborted by cancellation or deadline.
    pub cancelled: u64,
    /// Primary retries across all requests.
    pub retries: u64,
    /// Artifact repair recompilations.
    pub repairs: u64,
    /// Requests whose primary attempts were exhausted without success.
    pub retries_exhausted: u64,
    /// Worker panics caught.
    pub panics_caught: u64,
    /// Watchdog interventions against wedged workers.
    pub watchdog_escalations: u64,
    /// Replacement workers spawned after a quarantine.
    pub workers_respawned: u64,
    /// Store records quarantined as corrupt.
    pub quarantined_records: u64,
    /// Recompilations forced by an unusable store record.
    pub store_recompiles: u64,
    /// Responses dropped by chaos injection.
    pub dropped_responses: u64,
    /// Requests re-enqueued from the journal at startup.
    pub replayed: u64,
    /// Duplicate idempotency keys served from the completed cache.
    pub deduped: u64,
    /// Pending requests journal-failed by a draining shutdown.
    pub journal_failed_shutdown: u64,
    /// Replayed requests not yet resolved.
    pub replay_backlog: u64,
    /// Journal records appended since open (0 when journaling is off).
    pub journal_records: u64,
    /// Journal fsync batches since open — `journal_records /
    /// journal_fsyncs` is the realized group-commit batching factor.
    pub journal_fsyncs: u64,
    /// Journal records staged but not yet durable.
    pub journal_lag: u64,
    /// Torn-tail records quarantined by the journal at open.
    pub journal_torn_records: u64,
    /// Requests waiting in the queue right now.
    pub queue_depth: u64,
    /// Requests executing right now.
    pub in_flight: u64,
    /// Coalesced batches executed (≥ 2 requests packed together).
    pub batches_formed: u64,
    /// Requests that rode in a coalesced batch.
    pub batched_requests: u64,
    /// Current compiled-artifact version (bumped by each repair).
    pub artifact_version: u64,
    /// Primary-backend circuit breaker state and history.
    pub breaker: BreakerSnapshot,
    /// End-to-end request latency distribution.
    pub latency: LatencySnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1); // [1, 2) µs
        assert_eq!(s.buckets[1], 1); // [2, 4) µs
        assert_eq!(s.buckets[9], 1); // [512, 1024) µs
        assert!(s.mean() >= Duration::from_micros(300));
        // Median falls in the [2, 4) µs bucket.
        assert_eq!(s.quantile_upper_bound_us(0.5), 4);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile_upper_bound_us(0.99), 0);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_nanos(400)); // rounds down to 0 µs
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.total_micros, 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile_upper_bound_us(0.5), 2);
    }

    #[test]
    fn max_latency_saturates_instead_of_wrapping() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(u64::MAX));
        h.record(Duration::from_micros(u64::MAX));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[LATENCY_BUCKETS - 1], 2);
        // Two u64::MAX records would wrap to u64::MAX - 1 under wrapping
        // addition; saturation pins the total (and the mean stays huge
        // rather than collapsing toward zero).
        assert_eq!(s.total_micros, u64::MAX);
        assert!(s.mean() >= Duration::from_micros(u64::MAX / 2));
        // The overflow bucket is unbounded: report that honestly.
        assert_eq!(s.quantile_upper_bound_us(0.99), u64::MAX);
    }

    #[test]
    fn quantile_of_overflow_bucket_is_unbounded() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(10_000)); // ~2^33 µs: overflow bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.quantile_upper_bound_us(0.5), u64::MAX);
    }

    #[test]
    fn saturating_decrement_does_not_wrap() {
        let c = Counters::default();
        Counters::drop_one(&c.queue_depth);
        assert_eq!(c.queue_depth.load(Ordering::Relaxed), 0);
    }
}
