//! The resilient inference service: worker pool, admission queue,
//! deadlines, retries, repair escalation and graceful degradation.
//!
//! # Request lifecycle
//!
//! [`InferenceService::submit`] places a job on a **bounded** queue — a
//! full queue sheds the request immediately with
//! [`ServeError::Overloaded`] rather than blocking the caller (FHE
//! latencies are so long that an unbounded queue just converts overload
//! into timeout storms). A worker thread picks the job up, consults the
//! per-backend [`CircuitBreaker`] and runs it:
//!
//! * **Primary route** — the request executes on the backend built by the
//!   service's factory, under the request's [`CancelToken`] (deadline) and
//!   an op-counting observer. Transient HISA failures are retried with
//!   deterministic exponential backoff; `LevelExhausted` and
//!   `PrecisionLoss` additionally escalate into the compiler's
//!   [`Compiler::compile_checked`] repair path, recompiling the shared
//!   artifact with one more margin level before the retry.
//! * **Degraded route** — when the breaker is open or primary attempts
//!   are exhausted, the request runs on the plaintext simulator
//!   ([`SimCkks`]) built from the same compiled parameters, and the
//!   response is flagged [`InferResponse::degraded`].
//!
//! Worker panics are caught ([`std::panic::catch_unwind`]), counted, and
//! treated as backend failures: the worker rebuilds its backend and the
//! service keeps running. [`InferenceService::shutdown`] drains the queue
//! and joins every worker before returning the final [`ServiceStats`].

use crate::breaker::{BreakerConfig, CircuitBreaker, Route};
use crate::chaos::{ChaosInjector, ChaosPlan};
use crate::health::{HealthReport, WorkerHealth, WorkerState};
use crate::retry::RetryPolicy;
use crate::stats::{Counters, LatencyHistogram, ServiceStats};
use crate::store::{ArtifactStore, StoreIntegrity, StoredArtifact};
use crate::watchdog::{Escalation, Watchdog, WatchdogConfig, WatchdogHooks, WorkerSlot};
use chet_ckks::sim::SimCkks;
use chet_compiler::{verify_compiled, CompiledCircuit, Compiler, SelectError};
use chet_hisa::params::SchemeKind;
use chet_hisa::serial::params_fingerprint;
use chet_hisa::{Hisa, HisaError};
use chet_runtime::cancel::{CancelReason, CancelToken};
use chet_runtime::exec::{try_infer_with_control, ExecControl, ExecError, ExecObserver, ExecReport};
use chet_runtime::kernels::ScaleConfig;
use chet_tensor::circuit::Circuit;
use chet_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Store record name for the service's compiled artifact.
const ARTIFACT_RECORD: &str = "artifact";
/// Store record name for the artifact's key-bundle metadata.
const KEY_BUNDLE_RECORD: &str = "key-bundle";

/// Service tuning. [`ServeConfig::default`] is sized for tests and small
/// deployments: 2 workers, a 32-deep queue, 3 attempts per request.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission-queue depth; a full queue sheds load.
    pub queue_capacity: usize,
    /// Deadline applied by [`InferenceService::submit`] when the caller
    /// does not bring their own token (`None` = no deadline).
    pub default_deadline: Option<Duration>,
    /// Retry/backoff policy for primary attempts.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning for the primary backend.
    pub breaker: BreakerConfig,
    /// Seed for the degraded-route simulator backend.
    pub degraded_seed: u64,
    /// Intra-request kernel/limb parallelism: threads each worker's
    /// parallel regions fan out over (`None` = leave the process-global
    /// setting alone, i.e. `CHET_THREADS` or hardware parallelism).
    /// Applied via [`chet_runtime::par::set_threads`] at service start,
    /// so it is process-global, not per-service.
    pub threads: Option<usize>,
    /// Whether exhausted/skipped primary requests fall back to the
    /// degraded simulator route. `false` turns the fallback off: requests
    /// the breaker routes away are shed with [`ServeError::Overloaded`]
    /// (they were never queued against the primary) and exhausted retries
    /// fail with [`ServeError::Failed`] — the strict mode deployments use
    /// when a plaintext-simulated answer is worse than no answer.
    pub degraded_fallback: bool,
    /// Directory for the crash-safe artifact/key store (`None` = memory
    /// only). On start the service recovers from it — quarantining
    /// corrupt records and recompiling if needed — and every repair
    /// republishes into it.
    pub store_dir: Option<PathBuf>,
    /// Deterministic key-generation seed recorded in the store's key
    /// bundle, binding regenerable key material to the artifact.
    pub key_seed: u64,
    /// Watchdog tuning for wedged-worker detection.
    pub watchdog: WatchdogConfig,
    /// Seeded serve-layer chaos injection (`None` = no chaos). Test and
    /// soak machinery — never enable in production.
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            degraded_seed: 0x5EED,
            threads: None,
            degraded_fallback: true,
            store_dir: None,
            key_seed: 1,
            watchdog: WatchdogConfig::default(),
            chaos: None,
        }
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// Request id assigned at submission.
    pub id: u64,
    /// The decrypted prediction.
    pub output: Tensor,
    /// `true` when the request ran on the degraded (simulator) route
    /// instead of the primary backend.
    pub degraded: bool,
    /// Primary attempts spent (0 when the breaker skipped the primary).
    pub attempts: usize,
    /// Version of the compiled artifact the run used.
    pub artifact_version: u64,
    /// Circuit nodes executed by the final (successful) run.
    pub ops_executed: usize,
    /// Executor degradation log for the successful run.
    pub report: ExecReport,
    /// End-to-end latency, from submission to completion.
    pub latency: Duration,
}

/// A structured request or service failure — the service never panics a
/// caller and never blocks one on overload.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed, not queued.
    Overloaded {
        /// Configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The service is draining and no longer accepts requests.
    ShuttingDown,
    /// The request was cancelled (explicitly or by deadline) before it
    /// produced a result.
    Cancelled(CancelReason),
    /// Every route failed; the last error observed is attached.
    Failed {
        /// Primary attempts spent before giving up.
        attempts: usize,
        /// The failure from the last route tried.
        error: ExecError,
    },
    /// The initial [`Compiler::compile_checked`] could not produce a
    /// servable artifact.
    Compile(SelectError),
    /// The static verifier found `Deny` diagnostics in the artifact; the
    /// service refuses to publish it.
    Lint {
        /// Number of `Deny` diagnostics reported.
        denies: usize,
        /// Rendering of the first `Deny` diagnostic.
        first: String,
    },
    /// The executing worker disappeared without replying (it panicked
    /// outside the guarded region, or the service was torn down).
    WorkerLost,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); request shed")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Cancelled(reason) => write!(f, "request {reason}"),
            ServeError::Failed { attempts, error } => {
                write!(f, "request failed after {attempts} primary attempt(s): {error}")
            }
            ServeError::Compile(e) => write!(f, "artifact compilation failed: {e}"),
            ServeError::Lint { denies, first } => {
                write!(f, "artifact rejected by static verifier ({denies} deny): {first}")
            }
            ServeError::WorkerLost => write!(f, "worker disappeared without replying"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Failed { error, .. } => Some(error),
            ServeError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

/// Handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    token: CancelToken,
    rx: mpsc::Receiver<Result<InferResponse, ServeError>>,
}

impl Ticket {
    /// The request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cancels the request cooperatively; the worker aborts at the next
    /// tensor-op boundary.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn poll(&self) -> Option<Result<InferResponse, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// The publish gate: runs the static verifier over an artifact and refuses
/// it (as [`ServeError::Lint`]) when any `Deny` diagnostic is present. The
/// service calls this before publishing an artifact — at startup and after
/// every repair recompilation — so a bad artifact can never become the
/// shared serving state, even if the compile path that produced it skipped
/// its own checks.
pub fn vet_artifact(circuit: &Circuit, compiled: &CompiledCircuit) -> Result<(), ServeError> {
    let report = verify_compiled(circuit, compiled);
    if report.has_deny() {
        let first = report
            .first_deny()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "unknown deny diagnostic".to_string());
        return Err(ServeError::Lint { denies: report.deny_count(), first });
    }
    Ok(())
}

struct Job {
    id: u64,
    image: Tensor,
    token: CancelToken,
    submitted: Instant,
    reply: mpsc::Sender<Result<InferResponse, ServeError>>,
}

/// The shared compiled artifact, re-versioned by each successful repair.
struct ArtifactState {
    version: u64,
    compiled: Arc<CompiledCircuit>,
    scales: ScaleConfig,
    extra_margin: usize,
}

struct ServiceCore {
    circuit: Circuit,
    compiler: Compiler,
    config: ServeConfig,
    artifact: RwLock<ArtifactState>,
    breaker: CircuitBreaker,
    counters: Counters,
    latency: LatencyHistogram,
    accepting: AtomicBool,
    next_id: AtomicU64,
    /// The crash-safe store, when configured; repairs republish into it.
    store: Option<ArtifactStore>,
    /// Tokens of requests admitted but not yet replied to — the handle
    /// deadline-based shutdown uses to cancel everything still queued.
    pending: Mutex<HashMap<u64, CancelToken>>,
}

impl ServiceCore {
    fn artifact_snapshot(&self) -> (u64, Arc<CompiledCircuit>) {
        let g = self.artifact.read().unwrap_or_else(|p| p.into_inner());
        (g.version, Arc::clone(&g.compiled))
    }

    /// Best-effort persistence of the current artifact + key bundle. A
    /// full disk must not take serving down, so failures are swallowed —
    /// the next open simply recompiles.
    fn persist_artifact(&self, state: &ArtifactState) {
        if let Some(store) = &self.store {
            let stored = StoredArtifact {
                version: state.version,
                compiled: (*state.compiled).clone(),
                scales: state.scales,
                extra_margin: state.extra_margin,
            };
            let _ = store.put_artifact(ARTIFACT_RECORD, &stored);
            let bundle = ArtifactStore::key_bundle_for(&state.compiled, self.config.key_seed);
            let _ = store.put_key_bundle(KEY_BUNDLE_RECORD, &bundle);
        }
    }

    /// Escalates a `LevelExhausted`/`PrecisionLoss` failure into the
    /// compiler's checked-repair path: recompile with one more spare
    /// margin level (the repair loop also re-bumps scales as needed) and
    /// publish the artifact under a new version. Concurrent escalations
    /// against the same observed version collapse into one recompile.
    fn repair(&self, observed_version: u64) {
        let mut g = self.artifact.write().unwrap_or_else(|p| p.into_inner());
        if g.version != observed_version {
            return; // someone already repaired past what this worker saw
        }
        let margin = g.extra_margin + 1;
        let compiler = self.compiler.clone().with_margin_levels(margin);
        if let Ok((compiled, report)) = compiler.compile_checked(&self.circuit, &g.scales) {
            if vet_artifact(&self.circuit, &compiled).is_ok() {
                g.scales = report.final_scales;
                g.compiled = Arc::new(compiled);
                g.extra_margin = margin;
                g.version += 1;
                Counters::bump(&self.counters.repairs);
                // Republish durably so a restart resumes from the
                // repaired artifact, not the one that needed repairing.
                self.persist_artifact(&g);
            }
        }
        // A failed recompile (or an artifact the verifier denies) keeps the
        // old artifact: stale but servable beats unservable.
    }

    fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            completed_ok: c.completed_ok.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            repairs: c.repairs.load(Ordering::Relaxed),
            retries_exhausted: c.retries_exhausted.load(Ordering::Relaxed),
            panics_caught: c.panics_caught.load(Ordering::Relaxed),
            watchdog_escalations: c.watchdog_escalations.load(Ordering::Relaxed),
            workers_respawned: c.workers_respawned.load(Ordering::Relaxed),
            quarantined_records: c.quarantined_records.load(Ordering::Relaxed),
            store_recompiles: c.store_recompiles.load(Ordering::Relaxed),
            dropped_responses: c.dropped_responses.load(Ordering::Relaxed),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            artifact_version: self.artifact_snapshot().0,
            breaker: self.breaker.snapshot(),
            latency: self.latency.snapshot(),
        }
    }
}

/// What a primary-attempt failure means for the control loop.
enum Disposition {
    /// Transient backend fault: back off and retry.
    Retry,
    /// Artifact fault: escalate into checked recompilation, then retry.
    Repair,
    /// Client/circuit fault: retrying cannot help.
    Permanent,
    /// The request's token tripped.
    Cancelled(CancelReason),
}

fn classify(e: &ExecError) -> Disposition {
    match e {
        ExecError::Cancelled { reason, .. } => Disposition::Cancelled(*reason),
        ExecError::PrecisionLoss { .. } => Disposition::Repair,
        ExecError::Hisa { source: HisaError::LevelExhausted { .. }, .. } => Disposition::Repair,
        ExecError::Hisa { .. } => Disposition::Retry,
        ExecError::Kernel { .. } | ExecError::UnsupportedCircuit { .. } => Disposition::Permanent,
    }
}

/// Counts circuit nodes executed (for [`InferResponse::ops_executed`])
/// and bumps the worker's watchdog heartbeat: progress the monitor can
/// see even while the cooperative token goes unchecked.
struct WorkerObserver<'a> {
    ops: usize,
    slot: &'a WorkerSlot,
}

impl ExecObserver for WorkerObserver<'_> {
    fn on_op(&mut self, _op_index: usize, _op: &str) {
        self.ops += 1;
        self.slot.beat();
    }
}

/// A resilient multi-threaded inference service over a compiled CHET
/// artifact. See the module docs for the request lifecycle.
pub struct InferenceService {
    core: Arc<ServiceCore>,
    sender: Option<SyncSender<Job>>,
    /// Shared with the watchdog, which pushes respawned workers' handles.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    watchdog: Option<Watchdog>,
}

/// Spawns one worker thread and its watchdog slot.
fn spawn_worker<H, F>(
    worker_id: usize,
    core: &Arc<ServiceCore>,
    rx: &Arc<Mutex<Receiver<Job>>>,
    factory: &Arc<F>,
) -> (JoinHandle<()>, Arc<WorkerSlot>)
where
    H: Hisa + 'static,
    F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
{
    let slot = WorkerSlot::new(worker_id);
    let core = Arc::clone(core);
    let rx = Arc::clone(rx);
    let factory = Arc::clone(factory);
    let slot2 = Arc::clone(&slot);
    let handle = thread::spawn(move || worker_loop(worker_id, &core, &*factory, &rx, &slot2));
    (handle, slot)
}

/// Opens the store (when configured), recovers a usable artifact from it,
/// and reports `(store, recovered artifact, store-had-damage)`.
fn recover_from_store(
    config: &ServeConfig,
    circuit: &Circuit,
    counters: &Counters,
) -> (Option<ArtifactStore>, Option<StoredArtifact>, bool) {
    let Some(dir) = &config.store_dir else {
        return (None, None, false);
    };
    let Ok((store, report)) = ArtifactStore::open(dir) else {
        // Unopenable store directory: serve memory-only rather than
        // refuse to start.
        return (None, None, false);
    };
    for _ in &report.quarantined {
        Counters::bump(&counters.quarantined_records);
    }
    let mut damaged = !report.quarantined.is_empty();
    let recovered = match store.get_artifact(ARTIFACT_RECORD) {
        Ok(Some(a)) => {
            // The key bundle must bind to the artifact's parameters; a
            // mismatched (or corrupt) pair means the stored state is torn
            // across records — recompile rather than trust half of it.
            match store.get_key_bundle(KEY_BUNDLE_RECORD) {
                Ok(Some(bundle))
                    if bundle.params_fingerprint == params_fingerprint(&a.compiled.params) =>
                {
                    // The static verifier is the last gate, exactly as at
                    // compile time: a stored artifact that fails vetting
                    // is as unusable as a corrupt one.
                    if vet_artifact(circuit, &a.compiled).is_ok() {
                        Some(a)
                    } else {
                        damaged = true;
                        None
                    }
                }
                Ok(_) => {
                    damaged = true;
                    None
                }
                Err(_) => {
                    Counters::bump(&counters.quarantined_records);
                    damaged = true;
                    None
                }
            }
        }
        Ok(None) => None,
        Err(_) => {
            // Corrupt at read time (quarantined by the store on the spot).
            Counters::bump(&counters.quarantined_records);
            damaged = true;
            None
        }
    };
    (Some(store), recovered, damaged)
}

impl InferenceService {
    /// Compiles `circuit` with a default RNS-CKKS compiler (via the
    /// checked-repair path, so the artifact starts probe-validated) and
    /// starts the worker pool. `factory` builds one primary backend per
    /// worker from the compiled artifact; it runs on the worker's own
    /// thread, so the backend type need not be `Send`.
    pub fn start<H, F>(
        circuit: Circuit,
        scales: ScaleConfig,
        config: ServeConfig,
        factory: F,
    ) -> Result<Self, ServeError>
    where
        H: Hisa + 'static,
        F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
    {
        Self::start_with_compiler(Compiler::new(SchemeKind::RnsCkks), circuit, scales, config, factory)
    }

    /// [`InferenceService::start`] with a caller-configured [`Compiler`]
    /// (security level, output precision, cost model...).
    pub fn start_with_compiler<H, F>(
        compiler: Compiler,
        circuit: Circuit,
        scales: ScaleConfig,
        config: ServeConfig,
        factory: F,
    ) -> Result<Self, ServeError>
    where
        H: Hisa + 'static,
        F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
    {
        if let Some(n) = config.threads {
            chet_runtime::par::set_threads(n);
        }
        let counters = Counters::default();
        // Crash-safe store first: a usable stored artifact skips the
        // (expensive) checked compile entirely; damaged or missing state
        // falls back to recompilation — a corrupt store delays startup,
        // it never prevents it.
        let (store, recovered, damaged) = recover_from_store(&config, &circuit, &counters);
        let recovered_some = recovered.is_some();
        let state = match recovered {
            Some(a) => ArtifactState {
                version: a.version,
                compiled: Arc::new(a.compiled),
                scales: a.scales,
                extra_margin: a.extra_margin,
            },
            None => {
                let (compiled, report) =
                    compiler.compile_checked(&circuit, &scales).map_err(ServeError::Compile)?;
                vet_artifact(&circuit, &compiled)?;
                if damaged {
                    Counters::bump(&counters.store_recompiles);
                }
                ArtifactState {
                    version: 1,
                    compiled: Arc::new(compiled),
                    scales: report.final_scales,
                    extra_margin: report.extra_levels,
                }
            }
        };
        let core = Arc::new(ServiceCore {
            circuit,
            compiler,
            artifact: RwLock::new(state),
            breaker: CircuitBreaker::new(config.breaker.clone()),
            counters,
            latency: LatencyHistogram::default(),
            accepting: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            store,
            pending: Mutex::new(HashMap::new()),
            config,
        });
        if !recovered_some {
            // Persist the freshly compiled artifact so the next start
            // recovers instead of recompiling.
            let g = core.artifact.read().unwrap_or_else(|p| p.into_inner());
            core.persist_artifact(&g);
        }
        let (tx, rx) = mpsc::sync_channel::<Job>(core.config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let factory = Arc::new(factory);
        let mut handles = Vec::new();
        let mut slots = Vec::new();
        let worker_count = core.config.workers.max(1);
        for worker_id in 0..worker_count {
            let (handle, slot) = spawn_worker(worker_id, &core, &rx, &factory);
            handles.push(handle);
            slots.push(slot);
        }
        let workers = Arc::new(Mutex::new(handles));
        let slots = Arc::new(Mutex::new(slots));
        let next_worker_id = Arc::new(AtomicUsize::new(worker_count));
        let hooks = {
            let esc_core = Arc::clone(&core);
            let spawn_core = Arc::clone(&core);
            let spawn_rx = Arc::clone(&rx);
            let spawn_factory = Arc::clone(&factory);
            WatchdogHooks {
                on_escalate: Box::new(move |ev| {
                    Counters::bump(&esc_core.counters.watchdog_escalations);
                    match ev.action {
                        // A worker wedging mid-request is a backend
                        // failure as far as routing is concerned.
                        Escalation::Cancelled => esc_core.breaker.record_failure(false),
                        Escalation::Quarantined => {
                            Counters::bump(&esc_core.counters.workers_respawned)
                        }
                        Escalation::None => {}
                    }
                }),
                respawn: Box::new(move |worker_id| {
                    spawn_worker(worker_id, &spawn_core, &spawn_rx, &spawn_factory)
                }),
            }
        };
        let watchdog = Watchdog::start(
            core.config.watchdog.clone(),
            slots,
            Arc::clone(&workers),
            next_worker_id,
            hooks,
        );
        Ok(InferenceService { core, sender: Some(tx), workers, watchdog: Some(watchdog) })
    }

    /// Submits a request under the configured default deadline. Returns
    /// [`ServeError::Overloaded`] *immediately* when the queue is full.
    pub fn submit(&self, image: Tensor) -> Result<Ticket, ServeError> {
        let token = match self.core.config.default_deadline {
            Some(budget) => CancelToken::with_deadline(budget),
            None => CancelToken::new(),
        };
        self.submit_with(image, token)
    }

    /// Submits a request under a caller-supplied [`CancelToken`] (bring
    /// your own deadline, or keep a clone to cancel explicitly).
    pub fn submit_with(&self, image: Tensor, token: CancelToken) -> Result<Ticket, ServeError> {
        if !self.core.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let Some(sender) = self.sender.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        let job = Job { id, image, token: token.clone(), submitted: Instant::now(), reply };
        // Register before sending so the deadline-shutdown sweep can never
        // miss a request that a worker is just picking up.
        self.core
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, token.clone());
        match sender.try_send(job) {
            Ok(()) => {
                Counters::bump(&self.core.counters.submitted);
                Counters::bump(&self.core.counters.queue_depth);
                Ok(Ticket { id, token, rx })
            }
            Err(e) => {
                self.core.pending.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
                match e {
                    TrySendError::Full(_) => {
                        Counters::bump(&self.core.counters.shed);
                        Err(ServeError::Overloaded { capacity: self.core.config.queue_capacity })
                    }
                    TrySendError::Disconnected(_) => Err(ServeError::ShuttingDown),
                }
            }
        }
    }

    /// Point-in-time service statistics.
    pub fn stats(&self) -> ServiceStats {
        self.core.stats()
    }

    /// Watchdog interventions observed so far (step-1 cancellations and
    /// step-2 quarantines), in order. Empty when the watchdog is off.
    pub fn watchdog_events(&self) -> Vec<crate::watchdog::WatchdogEvent> {
        self.watchdog.as_ref().map(Watchdog::events).unwrap_or_default()
    }

    /// Point-in-time service health: per-worker liveness, breaker state,
    /// store integrity and queue age. See [`HealthReport`].
    pub fn health(&self) -> HealthReport {
        let c = &self.core.counters;
        let slots = self.watchdog.as_ref().map(Watchdog::slots).unwrap_or_default();
        let mut oldest_busy: Option<Duration> = None;
        let workers = slots
            .iter()
            .map(|slot| {
                let state = if slot.is_quarantined() {
                    WorkerState::Quarantined
                } else if let Some((job_id, busy_for)) = slot.busy_view() {
                    oldest_busy = Some(oldest_busy.map_or(busy_for, |o| o.max(busy_for)));
                    WorkerState::Busy { job_id, busy_for, escalation: slot.escalation() }
                } else {
                    WorkerState::Idle
                };
                WorkerHealth { worker_id: slot.worker_id(), state }
            })
            .collect();
        HealthReport {
            accepting: self.core.accepting.load(Ordering::Acquire),
            workers,
            breaker: self.core.breaker.snapshot(),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            oldest_busy,
            store: self
                .core
                .store
                .as_ref()
                .map(ArtifactStore::integrity)
                .unwrap_or_else(StoreIntegrity::default),
            watchdog_escalations: c.watchdog_escalations.load(Ordering::Relaxed),
            workers_respawned: c.workers_respawned.load(Ordering::Relaxed),
        }
    }

    /// Stops admission, drains every queued request, joins the workers
    /// and returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain();
        self.core.stats()
    }

    /// [`InferenceService::shutdown`] with a drain deadline: requests
    /// still unresolved when `deadline` elapses have their tokens
    /// cancelled, so each resolves promptly as
    /// [`ServeError::Cancelled`] instead of running to completion. Every
    /// admitted request still gets exactly one typed resolution — drained
    /// or deadline-shed, never silently dropped.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> ServiceStats {
        self.core.accepting.store(false, Ordering::Release);
        self.sender.take();
        // Deadline sweeper: cancels every still-pending token once the
        // deadline passes. The condvar lets a fast drain release it early.
        let core = Arc::clone(&self.core);
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = Arc::clone(&done);
        let sweeper = thread::spawn(move || {
            let (lock, cv) = &*done2;
            let mut finished = lock.lock().unwrap_or_else(|p| p.into_inner());
            let wait_until = Instant::now() + deadline;
            while !*finished {
                let now = Instant::now();
                if now >= wait_until {
                    for token in core.pending.lock().unwrap_or_else(|p| p.into_inner()).values()
                    {
                        token.cancel();
                    }
                    return;
                }
                let (g, _) = cv
                    .wait_timeout(finished, wait_until - now)
                    .unwrap_or_else(|p| p.into_inner());
                finished = g;
            }
        });
        self.join_workers();
        {
            let (lock, cv) = &*done;
            *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
            cv.notify_all();
        }
        let _ = sweeper.join();
        if let Some(mut wd) = self.watchdog.take() {
            wd.stop();
        }
        self.core.stats()
    }

    fn join_workers(&mut self) {
        // The watchdog may push respawned handles while we join, so keep
        // sweeping until the registry stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut g = self.workers.lock().unwrap_or_else(|p| p.into_inner());
                g.drain(..).collect()
            };
            if handles.is_empty() {
                return;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }

    fn drain(&mut self) {
        self.core.accepting.store(false, Ordering::Release);
        // Dropping the sender lets workers finish the queue, then exit.
        self.sender.take();
        self.join_workers();
        if let Some(mut wd) = self.watchdog.take() {
            wd.stop();
        }
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop<H, F>(
    worker_id: usize,
    core: &ServiceCore,
    factory: &F,
    rx: &Mutex<Receiver<Job>>,
    slot: &WorkerSlot,
) where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    // (artifact version, backend) — rebuilt when the artifact is repaired
    // or the backend is lost to a caught panic. The chaos wrapper is
    // transparent when no plan is configured.
    let mut cached: Option<(u64, ChaosInjector<H>)> = None;
    loop {
        // A quarantined worker has been replaced; once it regains control
        // (its wedged op finally returned and the job was replied to) it
        // must not take new work.
        if slot.is_quarantined() {
            return;
        }
        let job = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok(job) = job else {
            return; // sender dropped and queue drained: shutdown
        };
        Counters::drop_one(&core.counters.queue_depth);
        Counters::bump(&core.counters.in_flight);
        slot.begin(job.id, &job.token);
        let result = handle_job(core, factory, worker_id, &mut cached, &job, slot);
        core.latency.record(job.submitted.elapsed());
        match &result {
            Ok(resp) if resp.degraded => Counters::bump(&core.counters.degraded),
            Ok(_) => Counters::bump(&core.counters.completed_ok),
            Err(ServeError::Cancelled(_)) => Counters::bump(&core.counters.cancelled),
            Err(_) => Counters::bump(&core.counters.failed),
        }
        let result = result.map(|mut resp| {
            resp.latency = job.submitted.elapsed();
            resp
        });
        let dropped = core
            .config
            .chaos
            .as_ref()
            .is_some_and(|plan| plan.drops_response(job.id));
        if dropped {
            // Chaos: the computed response never reaches the caller. The
            // reply sender is dropped, so the ticket resolves as
            // `WorkerLost` — a typed error, not a hang.
            Counters::bump(&core.counters.dropped_responses);
            drop(job.reply);
        } else {
            let _ = job.reply.send(result); // caller may have dropped the ticket
        }
        core.pending.lock().unwrap_or_else(|p| p.into_inner()).remove(&job.id);
        slot.finish();
        Counters::drop_one(&core.counters.in_flight);
    }
}

fn handle_job<H, F>(
    core: &ServiceCore,
    factory: &F,
    worker_id: usize,
    cached: &mut Option<(u64, ChaosInjector<H>)>,
    job: &Job,
    slot: &WorkerSlot,
) -> Result<InferResponse, ServeError>
where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    if let Err(reason) = job.token.check() {
        return Err(ServeError::Cancelled(reason));
    }
    let route = core.breaker.route();
    let mut attempts = 0usize;
    let mut last_error = None;
    if route != Route::Degraded {
        match run_primary(core, factory, worker_id, cached, job, route == Route::Probe, slot) {
            PrimaryOutcome::Done(result) => return result,
            PrimaryOutcome::Degrade { attempts_spent, error } => {
                attempts = attempts_spent;
                last_error = error;
            }
        }
    }
    if !core.config.degraded_fallback {
        // Strict mode: no simulator fallback. A request the breaker
        // refused to admit to the primary is shed (it lost the half-open
        // race, or arrived during cooldown); one whose attempts were
        // exhausted fails with the last primary error.
        return match last_error {
            Some(error) => Err(ServeError::Failed { attempts, error }),
            None if attempts > 0 => Err(ServeError::WorkerLost),
            None => Err(ServeError::Overloaded { capacity: core.config.queue_capacity }),
        };
    }
    run_degraded(core, job, attempts, slot)
}

/// How the primary-attempt loop ended.
enum PrimaryOutcome {
    /// The request resolved (success, cancellation or permanent failure).
    Done(Result<InferResponse, ServeError>),
    /// Primary gave up; fall through to the degraded route.
    Degrade {
        /// Attempts spent before giving up (reported in the response).
        attempts_spent: usize,
        /// Last primary error, when one was observed (`None` when the
        /// loop ran zero attempts or every attempt panicked).
        error: Option<ExecError>,
    },
}

#[allow(clippy::too_many_arguments)] // internal control loop, one caller
fn run_primary<H, F>(
    core: &ServiceCore,
    factory: &F,
    worker_id: usize,
    cached: &mut Option<(u64, ChaosInjector<H>)>,
    job: &Job,
    probe: bool,
    slot: &WorkerSlot,
) -> PrimaryOutcome
where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    let mut attempt = 1usize;
    let mut last_error: Option<ExecError> = None;
    while core.config.retry.allows(attempt) {
        let (version, compiled) = core.artifact_snapshot();
        if !matches!(cached, Some((v, _)) if *v == version) {
            *cached = Some((
                version,
                ChaosInjector::new(factory(worker_id, &compiled), core.config.chaos.clone()),
            ));
        }
        let Some((_, backend)) = cached.as_mut() else {
            return PrimaryOutcome::Done(Err(ServeError::WorkerLost));
        };
        // (Re)key the chaos stream for this request: faults are a pure
        // function of (seed, request id, op index), never of which worker
        // picked the job up or how many exist.
        backend.begin_request(job.id);
        let mut counter = WorkerObserver { ops: 0, slot };
        let mut ctrl = ExecControl { cancel: Some(&job.token), observer: Some(&mut counter) };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_infer_with_control(backend, &core.circuit, &compiled.plan, &job.image, &mut ctrl)
        }));
        let ops_executed = counter.ops;
        match outcome {
            Ok(Ok((output, report))) => {
                core.breaker.record_success(probe);
                return PrimaryOutcome::Done(Ok(InferResponse {
                    id: job.id,
                    output,
                    degraded: false,
                    attempts: attempt,
                    artifact_version: version,
                    ops_executed,
                    report,
                    latency: Duration::ZERO, // the worker loop fills this in
                }));
            }
            Ok(Err(e)) => match classify(&e) {
                Disposition::Cancelled(reason) => {
                    return PrimaryOutcome::Done(Err(ServeError::Cancelled(reason)));
                }
                Disposition::Permanent => {
                    // A malformed circuit is the client's fault, not the
                    // backend's: don't charge the breaker.
                    return PrimaryOutcome::Done(Err(ServeError::Failed {
                        attempts: attempt,
                        error: e,
                    }));
                }
                Disposition::Repair => {
                    core.breaker.record_failure(probe);
                    core.repair(version);
                    last_error = Some(e);
                }
                Disposition::Retry => {
                    core.breaker.record_failure(probe);
                    last_error = Some(e);
                }
            },
            Err(_panic) => {
                // The backend is in an unknown state: drop it; the next
                // attempt (on any request) rebuilds from the factory.
                *cached = None;
                Counters::bump(&core.counters.panics_caught);
                core.breaker.record_failure(probe);
            }
        }
        // A failed probe never gets a second chance: the breaker reopened.
        if probe {
            return PrimaryOutcome::Degrade { attempts_spent: attempt, error: last_error };
        }
        attempt += 1;
        if !core.config.retry.allows(attempt) {
            break;
        }
        Counters::bump(&core.counters.retries);
        let mut pause = core.config.retry.backoff(job.id, attempt.saturating_sub(1) as u32);
        if let Some(remaining) = job.token.remaining() {
            pause = pause.min(remaining);
        }
        if !pause.is_zero() {
            thread::sleep(pause);
        }
        if let Err(reason) = job.token.check() {
            return PrimaryOutcome::Done(Err(ServeError::Cancelled(reason)));
        }
    }
    // Retries exhausted. If the failure was permanent in nature we'd have
    // returned above; pass the last error along for strict mode, where
    // there is no degraded route to produce the definitive result.
    Counters::bump(&core.counters.retries_exhausted);
    PrimaryOutcome::Degrade {
        attempts_spent: attempt.min(core.config.retry.max_attempts.max(1)),
        error: last_error,
    }
}

fn run_degraded(
    core: &ServiceCore,
    job: &Job,
    attempts: usize,
    slot: &WorkerSlot,
) -> Result<InferResponse, ServeError> {
    if let Err(reason) = job.token.check() {
        return Err(ServeError::Cancelled(reason));
    }
    let (version, compiled) = core.artifact_snapshot();
    let mut sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, core.config.degraded_seed)
        .without_noise();
    let mut counter = WorkerObserver { ops: 0, slot };
    let mut ctrl = ExecControl { cancel: Some(&job.token), observer: Some(&mut counter) };
    match try_infer_with_control(&mut sim, &core.circuit, &compiled.plan, &job.image, &mut ctrl) {
        Ok((output, report)) => Ok(InferResponse {
            id: job.id,
            output,
            degraded: true,
            attempts,
            artifact_version: version,
            ops_executed: counter.ops,
            report,
            latency: Duration::ZERO, // the worker loop fills this in
        }),
        Err(ExecError::Cancelled { reason, .. }) => Err(ServeError::Cancelled(reason)),
        Err(e) => Err(ServeError::Failed { attempts, error: e }),
    }
}
