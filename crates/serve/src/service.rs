//! The resilient inference service: worker pool, admission queue,
//! deadlines, retries, repair escalation and graceful degradation.
//!
//! # Request lifecycle
//!
//! [`InferenceService::submit`] places a job on a **bounded** queue — a
//! full queue sheds the request immediately with
//! [`ServeError::Overloaded`] rather than blocking the caller (FHE
//! latencies are so long that an unbounded queue just converts overload
//! into timeout storms). A worker thread picks the job up, consults the
//! per-backend [`CircuitBreaker`] and runs it:
//!
//! * **Primary route** — the request executes on the backend built by the
//!   service's factory, under the request's [`CancelToken`] (deadline) and
//!   an op-counting observer. Transient HISA failures are retried with
//!   deterministic exponential backoff; `LevelExhausted` and
//!   `PrecisionLoss` additionally escalate into the compiler's
//!   [`Compiler::compile_checked`] repair path, recompiling the shared
//!   artifact with one more margin level before the retry.
//! * **Degraded route** — when the breaker is open or primary attempts
//!   are exhausted, the request runs on the plaintext simulator
//!   ([`SimCkks`]) built from the same compiled parameters, and the
//!   response is flagged [`InferResponse::degraded`].
//!
//! Worker panics are caught ([`std::panic::catch_unwind`]), counted, and
//! treated as backend failures: the worker rebuilds its backend and the
//! service keeps running. [`InferenceService::shutdown`] drains the queue
//! and joins every worker before returning the final [`ServiceStats`].

use crate::breaker::{BreakerConfig, CircuitBreaker, Route};
use crate::chaos::{ChaosInjector, ChaosPlan, CrashPoint};
use crate::health::{HealthReport, JournalHealth, WorkerHealth, WorkerState};
use crate::journal::{
    response_digest, CompletedResponse, FailCode, Journal, JournalConfig, JournalRecord,
};
use crate::queue::{CoalescingQueue, PushError};
use crate::retry::RetryPolicy;
use crate::stats::{Counters, LatencyHistogram, ServiceStats};
use crate::store::{ArtifactStore, LockError, StoreIntegrity, StoreLock, StoredArtifact};
use crate::watchdog::{Escalation, Watchdog, WatchdogConfig, WatchdogHooks, WorkerSlot};
use chet_ckks::sim::SimCkks;
use chet_compiler::ir::{cost as ir_cost, extract_ir, ExtractMode};
use chet_compiler::{verify_compiled, CompiledCircuit, Compiler, SelectError};
use chet_hisa::cost::CostModel;
use chet_hisa::params::SchemeKind;
use chet_hisa::serial::params_fingerprint;
use chet_hisa::{Hisa, HisaError};
use chet_runtime::cancel::{CancelReason, CancelToken};
use chet_runtime::exec::{
    batch_capacity, try_infer_batch_with_control, try_infer_with_control, ExecControl, ExecError,
    ExecObserver, ExecReport,
};
use chet_runtime::kernels::ScaleConfig;
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::ops::ShapeError;
use chet_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Store record name for the service's compiled artifact.
const ARTIFACT_RECORD: &str = "artifact";
/// Store record name for the artifact's key-bundle metadata.
const KEY_BUNDLE_RECORD: &str = "key-bundle";

/// Service tuning. [`ServeConfig::default`] is sized for tests and small
/// deployments: 2 workers, a 32-deep queue, 3 attempts per request.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission-queue depth; a full queue sheds load.
    pub queue_capacity: usize,
    /// Deadline applied by [`InferenceService::submit`] when the caller
    /// does not bring their own token (`None` = no deadline).
    pub default_deadline: Option<Duration>,
    /// Retry/backoff policy for primary attempts.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning for the primary backend.
    pub breaker: BreakerConfig,
    /// Seed for the degraded-route simulator backend.
    pub degraded_seed: u64,
    /// Intra-request kernel/limb parallelism: threads each worker's
    /// parallel regions fan out over (`None` = leave the process-global
    /// setting alone, i.e. `CHET_THREADS` or hardware parallelism).
    /// Applied via [`chet_runtime::par::set_threads`] at service start,
    /// so it is process-global, not per-service.
    pub threads: Option<usize>,
    /// Whether exhausted/skipped primary requests fall back to the
    /// degraded simulator route. `false` turns the fallback off: requests
    /// the breaker routes away are shed with [`ServeError::Overloaded`]
    /// (they were never queued against the primary) and exhausted retries
    /// fail with [`ServeError::Failed`] — the strict mode deployments use
    /// when a plaintext-simulated answer is worse than no answer.
    pub degraded_fallback: bool,
    /// Directory for the crash-safe artifact/key store (`None` = memory
    /// only). On start the service recovers from it — quarantining
    /// corrupt records and recompiling if needed — and every repair
    /// republishes into it.
    pub store_dir: Option<PathBuf>,
    /// Deterministic key-generation seed recorded in the store's key
    /// bundle, binding regenerable key material to the artifact.
    pub key_seed: u64,
    /// Watchdog tuning for wedged-worker detection.
    pub watchdog: WatchdogConfig,
    /// Seeded serve-layer chaos injection (`None` = no chaos). Test and
    /// soak machinery — never enable in production.
    pub chaos: Option<ChaosPlan>,
    /// Durable request journal ([`crate::journal`]). Requires `store_dir`
    /// when enabled: the journal lives next to the artifact store, under
    /// the same advisory lock.
    pub journal: JournalConfig,
    /// Publish-gate latency budget in microseconds (`None` = no budget).
    /// When set, the gate prices one inference of the artifact with the
    /// calibrated static cost model and refuses to publish
    /// ([`ServeError::CostBudget`]) artifacts predicted to exceed it — the
    /// deny knob that keeps a pathological recompile from silently turning
    /// a 100 ms service into a 10 s one.
    pub cost_budget_us: Option<f64>,
    /// Cost model the budget gate prices with (`None` = the scheme's
    /// default constants). Deployments load calibrated constants from
    /// `BENCH_rns_ops.json` fits here.
    pub cost_model: Option<CostModel>,
    /// Maximum requests coalesced into one encrypted batch (slot-axis
    /// packing). `1` (the default) disables coalescing entirely — every
    /// request executes exactly as it did before batching existed. Values
    /// above the circuit's slot-axis capacity are clamped to it.
    pub max_batch: usize,
    /// How long a dequeuing worker lingers for stragglers when its batch
    /// is still short of `max_batch`. `ZERO` (the default) batches only
    /// what is already queued — latency is never traded away silently;
    /// deployments chasing throughput set tens of milliseconds here.
    pub max_linger: Duration,
    /// Decrypted outputs are snapped to multiples of this quantum before
    /// they are journaled, digested or returned (`None` = raw outputs).
    /// Approximate-arithmetic backends (real RNS-CKKS) produce outputs
    /// that differ in the noise bits between a solo and a batched run of
    /// the same request; a quantum a few bits above the noise floor makes
    /// the response — and therefore the idempotency digest — byte-stable
    /// across both paths.
    pub output_quantum: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            degraded_seed: 0x5EED,
            threads: None,
            degraded_fallback: true,
            store_dir: None,
            key_seed: 1,
            watchdog: WatchdogConfig::default(),
            chaos: None,
            journal: JournalConfig::default(),
            cost_budget_us: None,
            cost_model: None,
            max_batch: 1,
            max_linger: Duration::ZERO,
            output_quantum: None,
        }
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// Request id assigned at submission.
    pub id: u64,
    /// The decrypted prediction.
    pub output: Tensor,
    /// `true` when the request ran on the degraded (simulator) route
    /// instead of the primary backend.
    pub degraded: bool,
    /// Primary attempts spent (0 when the breaker skipped the primary).
    pub attempts: usize,
    /// Version of the compiled artifact the run used.
    pub artifact_version: u64,
    /// Circuit nodes executed by the final (successful) run.
    pub ops_executed: usize,
    /// Executor degradation log for the successful run.
    pub report: ExecReport,
    /// End-to-end latency, from submission to completion.
    pub latency: Duration,
}

/// A structured request or service failure — the service never panics a
/// caller and never blocks one on overload.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed, not queued.
    Overloaded {
        /// Configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The service is draining and no longer accepts requests.
    ShuttingDown,
    /// The request was cancelled (explicitly or by deadline) before it
    /// produced a result.
    Cancelled(CancelReason),
    /// Every route failed; the last error observed is attached.
    Failed {
        /// Primary attempts spent before giving up.
        attempts: usize,
        /// The failure from the last route tried.
        error: ExecError,
    },
    /// The initial [`Compiler::compile_checked`] could not produce a
    /// servable artifact.
    Compile(SelectError),
    /// The static verifier found `Deny` diagnostics in the artifact; the
    /// service refuses to publish it.
    Lint {
        /// Number of `Deny` diagnostics reported.
        denies: usize,
        /// Rendering of the first `Deny` diagnostic.
        first: String,
    },
    /// The executing worker disappeared without replying (it panicked
    /// outside the guarded region, or the service was torn down).
    WorkerLost,
    /// Another live process holds the store/journal advisory lock. Two
    /// writers interleaving one journal would corrupt the durable state,
    /// so the second opener fails at startup instead.
    StoreLocked {
        /// PID of the live lock holder.
        holder_pid: u32,
    },
    /// A request with this idempotency key is already admitted and still
    /// unresolved — resubmitting now would double-execute. Wait on the
    /// original ticket (request id attached), or retry after it resolves.
    DuplicatePending {
        /// Request id of the in-flight original.
        request_id: u64,
    },
    /// The request journal could not make an admission durable (disk
    /// full, I/O error). The request was NOT accepted: with journaling
    /// enabled, an acknowledgement the journal cannot back is a lie.
    JournalUnavailable {
        /// The underlying journal error.
        detail: String,
    },
    /// The publish gate's static cost model predicts the artifact exceeds
    /// the configured latency budget; the service refuses to publish it.
    CostBudget {
        /// Predicted per-inference latency, microseconds.
        predicted_us: f64,
        /// The configured budget, microseconds.
        budget_us: f64,
    },
    /// The request is malformed (e.g. its input shape does not match the
    /// served circuit) and was refused at admission. Non-retryable: the
    /// same request will fail the same way every time, so it never reaches
    /// a worker, the retry loop or the circuit breaker.
    InvalidRequest {
        /// The structured shape/validation failure.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); request shed")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Cancelled(reason) => write!(f, "request {reason}"),
            ServeError::Failed { attempts, error } => {
                write!(f, "request failed after {attempts} primary attempt(s): {error}")
            }
            ServeError::Compile(e) => write!(f, "artifact compilation failed: {e}"),
            ServeError::Lint { denies, first } => {
                write!(f, "artifact rejected by static verifier ({denies} deny): {first}")
            }
            ServeError::WorkerLost => write!(f, "worker disappeared without replying"),
            ServeError::StoreLocked { holder_pid } => {
                write!(f, "store/journal directory locked by live process {holder_pid}")
            }
            ServeError::DuplicatePending { request_id } => {
                write!(f, "idempotency key already in flight as request {request_id}")
            }
            ServeError::JournalUnavailable { detail } => {
                write!(f, "request journal unavailable: {detail}")
            }
            ServeError::CostBudget { predicted_us, budget_us } => {
                write!(
                    f,
                    "artifact rejected by cost budget: predicted {predicted_us:.0} us \
                     per inference exceeds the {budget_us:.0} us budget"
                )
            }
            ServeError::InvalidRequest { detail } => {
                write!(f, "invalid request (non-retryable): {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Failed { error, .. } => Some(error),
            ServeError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

/// Handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    token: CancelToken,
    rx: mpsc::Receiver<Result<InferResponse, ServeError>>,
}

impl Ticket {
    /// The request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cancels the request cooperatively; the worker aborts at the next
    /// tensor-op boundary.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn poll(&self) -> Option<Result<InferResponse, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// The publish gate: runs the static verifier over an artifact and refuses
/// it (as [`ServeError::Lint`]) when any `Deny` diagnostic is present. The
/// service calls this before publishing an artifact — at startup and after
/// every repair recompilation — so a bad artifact can never become the
/// shared serving state, even if the compile path that produced it skipped
/// its own checks.
pub fn vet_artifact(circuit: &Circuit, compiled: &CompiledCircuit) -> Result<(), ServeError> {
    let report = verify_compiled(circuit, compiled);
    if report.has_deny() {
        let first = report
            .first_deny()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "unknown deny diagnostic".to_string());
        return Err(ServeError::Lint { denies: report.deny_count(), first });
    }
    Ok(())
}

/// [`vet_artifact`] plus the cost-budget deny knob: when `budget_us` is
/// set, extracts the artifact's HISA IR and prices one inference with the
/// static cost model; a prediction over budget refuses publication as
/// [`ServeError::CostBudget`].
pub fn vet_artifact_with_budget(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    budget_us: Option<f64>,
    model: Option<&CostModel>,
) -> Result<(), ServeError> {
    vet_artifact(circuit, compiled)?;
    let Some(budget_us) = budget_us else { return Ok(()) };
    // The verifier above proved the artifact executable, so extraction
    // (which runs the same executor) cannot realistically fail; if it ever
    // does, an unpriceable artifact should not be refused on cost grounds.
    let Ok(ir) = extract_ir(circuit, compiled, ExtractMode::Metadata) else {
        return Ok(());
    };
    let model = match model {
        Some(m) => m.clone(),
        None => CostModel::for_scheme(compiled.params.kind()),
    };
    let predicted_us = ir_cost::estimate(&ir, &model).total_us;
    if predicted_us > budget_us {
        return Err(ServeError::CostBudget { predicted_us, budget_us });
    }
    Ok(())
}

/// Outcome of a keyed submission ([`InferenceService::submit_keyed`]).
#[derive(Debug)]
pub enum Submission {
    /// The request was admitted (and, with journaling on, its admission
    /// is already durable). Wait on the ticket as usual.
    Accepted(Ticket),
    /// This idempotency key already completed — here is the original
    /// response, served from the journal's completed cache without
    /// touching ciphertext compute.
    Duplicate(CompletedResponse),
}

struct Job {
    id: u64,
    image: Tensor,
    token: CancelToken,
    submitted: Instant,
    reply: mpsc::Sender<Result<InferResponse, ServeError>>,
    /// Client idempotency key (empty = unkeyed, no dedup).
    key: String,
    /// `true` when this job was re-enqueued from the journal at startup.
    replayed: bool,
}

/// The shared compiled artifact, re-versioned by each successful repair.
struct ArtifactState {
    version: u64,
    compiled: Arc<CompiledCircuit>,
    scales: ScaleConfig,
    extra_margin: usize,
}

struct ServiceCore {
    circuit: Circuit,
    compiler: Compiler,
    config: ServeConfig,
    artifact: RwLock<ArtifactState>,
    breaker: CircuitBreaker,
    counters: Counters,
    latency: LatencyHistogram,
    accepting: AtomicBool,
    next_id: AtomicU64,
    /// The crash-safe store, when configured; repairs republish into it.
    store: Option<ArtifactStore>,
    /// The durable request journal, when enabled.
    journal: Option<Arc<Journal>>,
    /// Advisory single-opener lock on the store directory; held for the
    /// service's lifetime, released (or stolen from our corpse) on exit.
    _store_lock: Option<StoreLock>,
    /// Tokens of requests admitted but not yet replied to — the handle
    /// deadline-based shutdown uses to cancel everything still queued.
    pending: Mutex<HashMap<u64, CancelToken>>,
    /// Idempotency keys admitted but not yet resolved (key → request id):
    /// the double-execution gate for concurrent duplicate submissions.
    pending_keys: Mutex<HashMap<String, u64>>,
    /// Set by the watchdog's final rung: the respawn budget is exhausted
    /// and a supervisor should recycle this process through
    /// [`InferenceService::restart_from_journal`].
    restart_requested: AtomicBool,
}

impl ServiceCore {
    fn artifact_snapshot(&self) -> (u64, Arc<CompiledCircuit>) {
        let g = self.artifact.read().unwrap_or_else(|p| p.into_inner());
        (g.version, Arc::clone(&g.compiled))
    }

    /// Best-effort persistence of the current artifact + key bundle. A
    /// full disk must not take serving down, so failures are swallowed —
    /// the next open simply recompiles.
    fn persist_artifact(&self, state: &ArtifactState) {
        if let Some(store) = &self.store {
            let stored = StoredArtifact {
                version: state.version,
                compiled: (*state.compiled).clone(),
                scales: state.scales,
                extra_margin: state.extra_margin,
            };
            let _ = store.put_artifact(ARTIFACT_RECORD, &stored);
            let bundle = ArtifactStore::key_bundle_for(&state.compiled, self.config.key_seed);
            let _ = store.put_key_bundle(KEY_BUNDLE_RECORD, &bundle);
        }
    }

    /// Escalates a `LevelExhausted`/`PrecisionLoss` failure into the
    /// compiler's checked-repair path: recompile with one more spare
    /// margin level (the repair loop also re-bumps scales as needed) and
    /// publish the artifact under a new version. Concurrent escalations
    /// against the same observed version collapse into one recompile.
    fn repair(&self, observed_version: u64) {
        let mut g = self.artifact.write().unwrap_or_else(|p| p.into_inner());
        if g.version != observed_version {
            return; // someone already repaired past what this worker saw
        }
        let margin = g.extra_margin + 1;
        let compiler = self.compiler.clone().with_margin_levels(margin);
        if let Ok((compiled, report)) = compiler.compile_checked(&self.circuit, &g.scales) {
            if vet_artifact_with_budget(
                &self.circuit,
                &compiled,
                self.config.cost_budget_us,
                self.config.cost_model.as_ref(),
            )
            .is_ok()
            {
                g.scales = report.final_scales;
                g.compiled = Arc::new(compiled);
                g.extra_margin = margin;
                g.version += 1;
                Counters::bump(&self.counters.repairs);
                // Republish durably so a restart resumes from the
                // repaired artifact, not the one that needed repairing.
                self.persist_artifact(&g);
            }
        }
        // A failed recompile (or an artifact the verifier denies) keeps the
        // old artifact: stale but servable beats unservable.
    }

    fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            completed_ok: c.completed_ok.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            repairs: c.repairs.load(Ordering::Relaxed),
            retries_exhausted: c.retries_exhausted.load(Ordering::Relaxed),
            panics_caught: c.panics_caught.load(Ordering::Relaxed),
            watchdog_escalations: c.watchdog_escalations.load(Ordering::Relaxed),
            workers_respawned: c.workers_respawned.load(Ordering::Relaxed),
            quarantined_records: c.quarantined_records.load(Ordering::Relaxed),
            store_recompiles: c.store_recompiles.load(Ordering::Relaxed),
            dropped_responses: c.dropped_responses.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
            deduped: c.deduped.load(Ordering::Relaxed),
            journal_failed_shutdown: c.journal_failed_shutdown.load(Ordering::Relaxed),
            replay_backlog: c.replay_backlog.load(Ordering::Relaxed),
            journal_records: self.journal.as_ref().map_or(0, |j| j.records_appended()),
            journal_fsyncs: self.journal.as_ref().map_or(0, |j| j.fsyncs()),
            journal_lag: self.journal.as_ref().map_or(0, |j| j.lag()),
            journal_torn_records: self.journal.as_ref().map_or(0, |j| j.torn_records()),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            batches_formed: c.batches_formed.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            artifact_version: self.artifact_snapshot().0,
            breaker: self.breaker.snapshot(),
            latency: self.latency.snapshot(),
        }
    }

    /// Journals one record, durably. Journal damage must not take serving
    /// down mid-request (admission is where unavailability is enforced),
    /// so worker-path failures are counted into the sticky journal error
    /// and otherwise swallowed.
    fn journal_durable(&self, rec: &JournalRecord) {
        if let Some(j) = &self.journal {
            let _ = j.append_durable(rec);
        }
    }

    /// The effective coalescing target right now: the configured
    /// `max_batch` clamped to the *current* artifact's slot-axis batch
    /// capacity (a repair can grow the plan's margins, and with them the
    /// member width the circuit needs per request).
    fn batch_target(&self) -> usize {
        if self.config.max_batch <= 1 {
            return 1;
        }
        let (_, compiled) = self.artifact_snapshot();
        let cap = batch_capacity(&self.circuit, &compiled.plan, compiled.params.slots());
        self.config.max_batch.min(cap).max(1)
    }

    /// Snaps every element of a decrypted output to the configured
    /// quantum (no-op when `output_quantum` is unset). Runs before the
    /// response is journaled, digested or replied, so solo and batched
    /// runs of the same request produce byte-identical responses even on
    /// approximate backends.
    fn quantize_output(&self, output: &mut Tensor) {
        let Some(q) = self.config.output_quantum else { return };
        if !q.is_finite() || q <= 0.0 {
            return;
        }
        for v in output.data_mut() {
            *v = (*v / q).round() * q;
        }
    }
}

/// Admission-time shape validation: the served circuit's `Input` op fixes
/// the only acceptable request shape, and a mismatch is the client's fault
/// — a structured, non-retryable refusal, not a worker panic.
fn validate_input_shape(circuit: &Circuit, image: &Tensor) -> Result<(), ShapeError> {
    let expected = circuit.ops().iter().find_map(|op| match op {
        Op::Input { shape } => Some(shape.as_slice()),
        _ => None,
    });
    match expected {
        Some(shape) if image.shape() != shape => Err(ShapeError {
            op: "submit",
            reason: format!(
                "input shape {:?} does not match the served circuit's input {shape:?}",
                image.shape()
            ),
        }),
        _ => Ok(()),
    }
}

/// What a primary-attempt failure means for the control loop.
enum Disposition {
    /// Transient backend fault: back off and retry.
    Retry,
    /// Artifact fault: escalate into checked recompilation, then retry.
    Repair,
    /// Client/circuit fault: retrying cannot help.
    Permanent,
    /// The request's token tripped.
    Cancelled(CancelReason),
}

/// Maps a request's terminal [`ServeError`] to its journal close-out code.
fn fail_code(e: &ServeError) -> FailCode {
    match e {
        ServeError::Cancelled(_) => FailCode::Cancelled,
        ServeError::ShuttingDown => FailCode::Shutdown,
        ServeError::WorkerLost => FailCode::WorkerLost,
        ServeError::Overloaded { .. } => FailCode::Overloaded,
        ServeError::Failed { .. }
        | ServeError::Compile(_)
        | ServeError::Lint { .. }
        | ServeError::StoreLocked { .. }
        | ServeError::DuplicatePending { .. }
        | ServeError::JournalUnavailable { .. }
        | ServeError::CostBudget { .. }
        | ServeError::InvalidRequest { .. } => FailCode::Exec,
    }
}

fn classify(e: &ExecError) -> Disposition {
    match e {
        ExecError::Cancelled { reason, .. } => Disposition::Cancelled(*reason),
        ExecError::PrecisionLoss { .. } => Disposition::Repair,
        ExecError::Hisa { source: HisaError::LevelExhausted { .. }, .. } => Disposition::Repair,
        ExecError::Hisa { .. } => Disposition::Retry,
        ExecError::Kernel { .. } | ExecError::UnsupportedCircuit { .. } => Disposition::Permanent,
    }
}

/// Counts circuit nodes executed (for [`InferResponse::ops_executed`])
/// and bumps the worker's watchdog heartbeat: progress the monitor can
/// see even while the cooperative token goes unchecked.
struct WorkerObserver<'a> {
    ops: usize,
    slot: &'a WorkerSlot,
}

impl ExecObserver for WorkerObserver<'_> {
    fn on_op(&mut self, _op_index: usize, _op: &str) {
        self.ops += 1;
        self.slot.beat();
    }
}

/// A resilient multi-threaded inference service over a compiled CHET
/// artifact. See the module docs for the request lifecycle.
pub struct InferenceService {
    core: Arc<ServiceCore>,
    queue: Arc<CoalescingQueue<Job>>,
    /// Shared with the watchdog, which pushes respawned workers' handles.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    watchdog: Option<Watchdog>,
}

/// Spawns one worker thread and its watchdog slot.
fn spawn_worker<H, F>(
    worker_id: usize,
    core: &Arc<ServiceCore>,
    queue: &Arc<CoalescingQueue<Job>>,
    factory: &Arc<F>,
) -> (JoinHandle<()>, Arc<WorkerSlot>)
where
    H: Hisa + 'static,
    F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
{
    let slot = WorkerSlot::new(worker_id);
    let core = Arc::clone(core);
    let queue = Arc::clone(queue);
    let factory = Arc::clone(factory);
    let slot2 = Arc::clone(&slot);
    let handle = thread::spawn(move || worker_loop(worker_id, &core, &*factory, &queue, &slot2));
    (handle, slot)
}

/// Opens the store (when configured), recovers a usable artifact from it,
/// and reports `(store, recovered artifact, store-had-damage)`.
fn recover_from_store(
    config: &ServeConfig,
    circuit: &Circuit,
    counters: &Counters,
) -> (Option<ArtifactStore>, Option<StoredArtifact>, bool) {
    let Some(dir) = &config.store_dir else {
        return (None, None, false);
    };
    let Ok((store, report)) = ArtifactStore::open(dir) else {
        // Unopenable store directory: serve memory-only rather than
        // refuse to start.
        return (None, None, false);
    };
    for _ in &report.quarantined {
        Counters::bump(&counters.quarantined_records);
    }
    let mut damaged = !report.quarantined.is_empty();
    let recovered = match store.get_artifact(ARTIFACT_RECORD) {
        Ok(Some(a)) => {
            // The key bundle must bind to the artifact's parameters; a
            // mismatched (or corrupt) pair means the stored state is torn
            // across records — recompile rather than trust half of it.
            match store.get_key_bundle(KEY_BUNDLE_RECORD) {
                Ok(Some(bundle))
                    if bundle.params_fingerprint == params_fingerprint(&a.compiled.params) =>
                {
                    // The static verifier is the last gate, exactly as at
                    // compile time: a stored artifact that fails vetting
                    // is as unusable as a corrupt one.
                    if vet_artifact_with_budget(
                        circuit,
                        &a.compiled,
                        config.cost_budget_us,
                        config.cost_model.as_ref(),
                    )
                    .is_ok()
                    {
                        Some(a)
                    } else {
                        damaged = true;
                        None
                    }
                }
                Ok(_) => {
                    damaged = true;
                    None
                }
                Err(_) => {
                    Counters::bump(&counters.quarantined_records);
                    damaged = true;
                    None
                }
            }
        }
        Ok(None) => None,
        Err(_) => {
            // Corrupt at read time (quarantined by the store on the spot).
            Counters::bump(&counters.quarantined_records);
            damaged = true;
            None
        }
    };
    (Some(store), recovered, damaged)
}

impl InferenceService {
    /// Compiles `circuit` with a default RNS-CKKS compiler (via the
    /// checked-repair path, so the artifact starts probe-validated) and
    /// starts the worker pool. `factory` builds one primary backend per
    /// worker from the compiled artifact; it runs on the worker's own
    /// thread, so the backend type need not be `Send`.
    pub fn start<H, F>(
        circuit: Circuit,
        scales: ScaleConfig,
        config: ServeConfig,
        factory: F,
    ) -> Result<Self, ServeError>
    where
        H: Hisa + 'static,
        F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
    {
        Self::start_with_compiler(Compiler::new(SchemeKind::RnsCkks), circuit, scales, config, factory)
    }

    /// [`InferenceService::start`] with a caller-configured [`Compiler`]
    /// (security level, output precision, cost model...).
    pub fn start_with_compiler<H, F>(
        compiler: Compiler,
        circuit: Circuit,
        scales: ScaleConfig,
        config: ServeConfig,
        factory: F,
    ) -> Result<Self, ServeError>
    where
        H: Hisa + 'static,
        F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
    {
        if let Some(n) = config.threads {
            chet_runtime::par::set_threads(n);
        }
        if config.journal.enabled && config.store_dir.is_none() {
            return Err(ServeError::JournalUnavailable {
                detail: "journaling requires a store_dir".to_string(),
            });
        }
        // Advisory lock before anything touches the directory: a second
        // live opener must fail *here*, not interleave journal appends.
        let store_lock = match &config.store_dir {
            Some(dir) => match StoreLock::acquire(dir) {
                Ok(lock) => Some(lock),
                Err(LockError::Held { holder_pid }) => {
                    return Err(ServeError::StoreLocked { holder_pid });
                }
                // An unlockable directory (permissions, weird FS) degrades
                // like an unopenable store: serve without the lock rather
                // than refuse to start — unless journaling is on, where
                // unprotected appends are not acceptable.
                Err(LockError::Io(e)) if config.journal.enabled => {
                    return Err(ServeError::JournalUnavailable { detail: e.to_string() });
                }
                Err(LockError::Io(_)) => None,
            },
            None => None,
        };
        let counters = Counters::default();
        // Crash-safe store first: a usable stored artifact skips the
        // (expensive) checked compile entirely; damaged or missing state
        // falls back to recompilation — a corrupt store delays startup,
        // it never prevents it.
        let (store, recovered, damaged) = recover_from_store(&config, &circuit, &counters);
        // Open the journal and rebuild the request state machine before
        // any worker exists: recovery decides what replays.
        let (journal, replay) = if config.journal.enabled {
            let dir = config.store_dir.clone().unwrap_or_default();
            match Journal::open(&dir, &config.journal) {
                Ok((j, report)) => (Some(Arc::new(j)), Some(report)),
                Err(e) => {
                    return Err(ServeError::JournalUnavailable { detail: e.to_string() });
                }
            }
        } else {
            (None, None)
        };
        let recovered_some = recovered.is_some();
        let state = match recovered {
            Some(a) => ArtifactState {
                version: a.version,
                compiled: Arc::new(a.compiled),
                scales: a.scales,
                extra_margin: a.extra_margin,
            },
            None => {
                let (compiled, report) =
                    compiler.compile_checked(&circuit, &scales).map_err(ServeError::Compile)?;
                vet_artifact_with_budget(
                    &circuit,
                    &compiled,
                    config.cost_budget_us,
                    config.cost_model.as_ref(),
                )?;
                if damaged {
                    Counters::bump(&counters.store_recompiles);
                }
                ArtifactState {
                    version: 1,
                    compiled: Arc::new(compiled),
                    scales: report.final_scales,
                    extra_margin: report.extra_levels,
                }
            }
        };
        // Request ids resume above everything the journal has seen, so a
        // replayed id is never reissued to a new request.
        let next_id = replay.as_ref().map_or(1, |r| r.max_request_id + 1);
        let core = Arc::new(ServiceCore {
            circuit,
            compiler,
            artifact: RwLock::new(state),
            breaker: CircuitBreaker::new(config.breaker.clone()),
            counters,
            latency: LatencyHistogram::default(),
            accepting: AtomicBool::new(true),
            next_id: AtomicU64::new(next_id),
            store,
            journal,
            _store_lock: store_lock,
            pending: Mutex::new(HashMap::new()),
            pending_keys: Mutex::new(HashMap::new()),
            restart_requested: AtomicBool::new(false),
            config,
        });
        if !recovered_some {
            // Persist the freshly compiled artifact so the next start
            // recovers instead of recompiling.
            let g = core.artifact.read().unwrap_or_else(|p| p.into_inner());
            core.persist_artifact(&g);
        }
        let queue = Arc::new(CoalescingQueue::<Job>::new(core.config.queue_capacity.max(1)));
        let factory = Arc::new(factory);
        let mut handles = Vec::new();
        let mut slots = Vec::new();
        let worker_count = core.config.workers.max(1);
        for worker_id in 0..worker_count {
            let (handle, slot) = spawn_worker(worker_id, &core, &queue, &factory);
            handles.push(handle);
            slots.push(slot);
        }
        let workers = Arc::new(Mutex::new(handles));
        let slots = Arc::new(Mutex::new(slots));
        let next_worker_id = Arc::new(AtomicUsize::new(worker_count));
        let hooks = {
            let esc_core = Arc::clone(&core);
            let spawn_core = Arc::clone(&core);
            let spawn_queue = Arc::clone(&queue);
            let spawn_factory = Arc::clone(&factory);
            WatchdogHooks {
                on_escalate: Box::new(move |ev| {
                    Counters::bump(&esc_core.counters.watchdog_escalations);
                    match ev.action {
                        // A worker wedging mid-request is a backend
                        // failure as far as routing is concerned.
                        Escalation::Cancelled => esc_core.breaker.record_failure(false),
                        Escalation::Quarantined => {
                            Counters::bump(&esc_core.counters.workers_respawned)
                        }
                        // Final rung: pool capacity cannot be repaired
                        // in-process any more. Raise the supervised-
                        // restart flag; the journal makes recycling the
                        // process safe (unresolved requests replay).
                        Escalation::RestartRequested => {
                            esc_core.restart_requested.store(true, Ordering::Release);
                        }
                        Escalation::None => {}
                    }
                }),
                respawn: Box::new(move |worker_id| {
                    spawn_worker(worker_id, &spawn_core, &spawn_queue, &spawn_factory)
                }),
            }
        };
        let watchdog = Watchdog::start(
            core.config.watchdog.clone(),
            slots,
            Arc::clone(&workers),
            next_worker_id,
            hooks,
        );
        // Re-enqueue every admitted-but-unresolved request from the
        // journal, in admission order, through the normal worker pool.
        // The blocking send is deliberate: the replay backlog may exceed
        // the queue capacity, and shedding a request whose admission was
        // already acknowledged would break the durability contract.
        if let Some(report) = replay {
            for pending in report.pending {
                let token = match core.config.default_deadline {
                    Some(budget) => CancelToken::with_deadline(budget),
                    None => CancelToken::new(),
                };
                // The reply receiver is dropped immediately: the original
                // client connection died with the old process. The result
                // still lands in the journal (and the completed cache), so
                // the client's duplicate retry finds it by key.
                let (reply, _rx) = mpsc::channel();
                core.pending
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(pending.request_id, token.clone());
                if !pending.idempotency_key.is_empty() {
                    core.pending_keys
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(pending.idempotency_key.clone(), pending.request_id);
                }
                Counters::bump(&core.counters.submitted);
                Counters::bump(&core.counters.replayed);
                Counters::bump(&core.counters.replay_backlog);
                Counters::bump(&core.counters.queue_depth);
                let job = Job {
                    id: pending.request_id,
                    image: pending.image,
                    token,
                    submitted: Instant::now(),
                    reply,
                    key: pending.idempotency_key,
                    replayed: true,
                };
                if queue.push_blocking(job).is_err() {
                    break; // queue closed (shutdown raced startup)
                }
                if let Some(crash) = &core.config.journal.crash {
                    // Crash-harness kill site: die with part of the
                    // backlog re-enqueued. Replay mutates nothing, so the
                    // next open recovers the identical pending set.
                    if crash.fires(CrashPoint::MidReplay) {
                        std::process::abort();
                    }
                }
            }
        }
        Ok(InferenceService { core, queue, workers, watchdog: Some(watchdog) })
    }

    /// Supervised-restart entry point: identical to
    /// [`InferenceService::start_with_compiler`], named for the recovery
    /// path. A supervisor that sees [`InferenceService::needs_restart`]
    /// (or a crash) drops/loses the old service and calls this; the new
    /// instance steals the dead process's advisory lock, replays every
    /// unresolved request from the journal in admission order, and serves
    /// completed idempotency keys from the journal's response cache.
    pub fn restart_from_journal<H, F>(
        compiler: Compiler,
        circuit: Circuit,
        scales: ScaleConfig,
        config: ServeConfig,
        factory: F,
    ) -> Result<Self, ServeError>
    where
        H: Hisa + 'static,
        F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
    {
        Self::start_with_compiler(compiler, circuit, scales, config, factory)
    }

    /// Submits a request under the configured default deadline. Returns
    /// [`ServeError::Overloaded`] *immediately* when the queue is full.
    pub fn submit(&self, image: Tensor) -> Result<Ticket, ServeError> {
        let token = match self.core.config.default_deadline {
            Some(budget) => CancelToken::with_deadline(budget),
            None => CancelToken::new(),
        };
        self.submit_with(image, token)
    }

    /// Submits a request under a caller-supplied [`CancelToken`] (bring
    /// your own deadline, or keep a clone to cancel explicitly).
    pub fn submit_with(&self, image: Tensor, token: CancelToken) -> Result<Ticket, ServeError> {
        self.submit_inner(image, token, String::new())
    }

    /// Submits a request under a client-supplied **idempotency key**,
    /// with exactly-once acknowledgement semantics when journaling is on:
    ///
    /// * If this key already **completed** — in this process's lifetime
    ///   or any journaled predecessor's — the original response comes
    ///   back as [`Submission::Duplicate`] without re-running ciphertext
    ///   compute, digest-identical to the first acknowledgement.
    /// * If this key is already admitted and **in flight**, the duplicate
    ///   is refused with [`ServeError::DuplicatePending`] (admitting it
    ///   would double-execute).
    /// * Otherwise the request is admitted; its `Admitted` journal record
    ///   is fsynced *before* this method returns, so an accepted
    ///   submission survives any crash after the ack.
    pub fn submit_keyed(&self, image: Tensor, key: &str) -> Result<Submission, ServeError> {
        if let Some(j) = &self.core.journal {
            if let Some(resp) = j.lookup_completed(key) {
                Counters::bump(&self.core.counters.deduped);
                return Ok(Submission::Duplicate(resp));
            }
        }
        let token = match self.core.config.default_deadline {
            Some(budget) => CancelToken::with_deadline(budget),
            None => CancelToken::new(),
        };
        self.submit_inner(image, token, key.to_string()).map(Submission::Accepted)
    }

    /// Looks up a completed response by idempotency key without
    /// submitting anything — how a reconnecting client polls for the
    /// outcome of a request whose original connection died.
    pub fn lookup(&self, key: &str) -> Option<CompletedResponse> {
        self.core.journal.as_ref().and_then(|j| j.lookup_completed(key))
    }

    /// Whether the watchdog has exhausted its respawn budget and asked
    /// for a supervised restart ([`InferenceService::restart_from_journal`]).
    pub fn needs_restart(&self) -> bool {
        self.core.restart_requested.load(Ordering::Acquire)
    }

    fn submit_inner(
        &self,
        image: Tensor,
        token: CancelToken,
        key: String,
    ) -> Result<Ticket, ServeError> {
        if !self.core.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // Structured shape validation *before* admission: a request that
        // can only ever fail is refused here as the client's error — it
        // never occupies queue depth, never charges the breaker, and never
        // panics a worker.
        if let Err(e) = validate_input_shape(&self.core.circuit, &image) {
            return Err(ServeError::InvalidRequest { detail: e.to_string() });
        }
        // Claim the idempotency key before journaling: two concurrent
        // submissions of the same key race here, and exactly one wins.
        if !key.is_empty() {
            let mut keys = self.core.pending_keys.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(&request_id) = keys.get(&key) {
                return Err(ServeError::DuplicatePending { request_id });
            }
            // Reserve with a placeholder id; replaced just below once the
            // real id is assigned (the map is only read for existence and
            // for the error's diagnostic id).
            keys.insert(key.clone(), 0);
        }
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        if !key.is_empty() {
            self.core
                .pending_keys
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(key.clone(), id);
        }
        // Durable admission before the ack: once this returns Ok, the
        // request survives any crash.
        if let Some(j) = &self.core.journal {
            let rec = JournalRecord::Admitted {
                request_id: id,
                idempotency_key: key.clone(),
                image: image.clone(),
            };
            if let Err(e) = j.append_durable(&rec) {
                if !key.is_empty() {
                    self.core.pending_keys.lock().unwrap_or_else(|p| p.into_inner()).remove(&key);
                }
                return Err(ServeError::JournalUnavailable { detail: e.to_string() });
            }
        }
        let (reply, rx) = mpsc::channel();
        let job = Job {
            id,
            image,
            token: token.clone(),
            submitted: Instant::now(),
            reply,
            key: key.clone(),
            replayed: false,
        };
        // Register before sending so the deadline-shutdown sweep can never
        // miss a request that a worker is just picking up.
        self.core
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, token.clone());
        match self.queue.try_push(job) {
            Ok(()) => {
                Counters::bump(&self.core.counters.submitted);
                Counters::bump(&self.core.counters.queue_depth);
                Ok(Ticket { id, token, rx })
            }
            Err(e) => {
                self.core.pending.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
                if !key.is_empty() {
                    self.core.pending_keys.lock().unwrap_or_else(|p| p.into_inner()).remove(&key);
                }
                match e {
                    PushError::Full(_) => {
                        // The admission is already durable; close it out
                        // durably too, or replay would resurrect a request
                        // the client saw shed.
                        self.core.journal_durable(&JournalRecord::Failed {
                            request_id: id,
                            code: FailCode::Overloaded,
                        });
                        Counters::bump(&self.core.counters.shed);
                        Err(ServeError::Overloaded { capacity: self.core.config.queue_capacity })
                    }
                    PushError::Closed(_) => {
                        self.core.journal_durable(&JournalRecord::Failed {
                            request_id: id,
                            code: FailCode::Shutdown,
                        });
                        Err(ServeError::ShuttingDown)
                    }
                }
            }
        }
    }

    /// Point-in-time service statistics.
    pub fn stats(&self) -> ServiceStats {
        self.core.stats()
    }

    /// Watchdog interventions observed so far (step-1 cancellations and
    /// step-2 quarantines), in order. Empty when the watchdog is off.
    pub fn watchdog_events(&self) -> Vec<crate::watchdog::WatchdogEvent> {
        self.watchdog.as_ref().map(Watchdog::events).unwrap_or_default()
    }

    /// Point-in-time service health: per-worker liveness, breaker state,
    /// store integrity and queue age. See [`HealthReport`].
    pub fn health(&self) -> HealthReport {
        let c = &self.core.counters;
        let slots = self.watchdog.as_ref().map(Watchdog::slots).unwrap_or_default();
        let mut oldest_busy: Option<Duration> = None;
        let workers = slots
            .iter()
            .map(|slot| {
                let state = if slot.is_quarantined() {
                    WorkerState::Quarantined
                } else if let Some((job_id, busy_for)) = slot.busy_view() {
                    oldest_busy = Some(oldest_busy.map_or(busy_for, |o| o.max(busy_for)));
                    WorkerState::Busy { job_id, busy_for, escalation: slot.escalation() }
                } else {
                    WorkerState::Idle
                };
                WorkerHealth { worker_id: slot.worker_id(), state }
            })
            .collect();
        HealthReport {
            accepting: self.core.accepting.load(Ordering::Acquire),
            workers,
            breaker: self.core.breaker.snapshot(),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            oldest_busy,
            store: self
                .core
                .store
                .as_ref()
                .map(ArtifactStore::integrity)
                .unwrap_or_else(StoreIntegrity::default),
            watchdog_escalations: c.watchdog_escalations.load(Ordering::Relaxed),
            workers_respawned: c.workers_respawned.load(Ordering::Relaxed),
            journal: JournalHealth {
                enabled: self.core.journal.is_some(),
                lag_records: self.core.journal.as_ref().map_or(0, |j| j.lag()),
                replay_backlog: c.replay_backlog.load(Ordering::Relaxed),
                torn_records: self.core.journal.as_ref().map_or(0, |j| j.torn_records()),
            },
            restart_requested: self.core.restart_requested.load(Ordering::Acquire),
        }
    }

    /// Stops admission, drains every queued request, joins the workers
    /// and returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain();
        self.core.stats()
    }

    /// [`InferenceService::shutdown`] with a drain deadline: requests
    /// still unresolved when `deadline` elapses have their tokens
    /// cancelled, so each resolves promptly as
    /// [`ServeError::Cancelled`] instead of running to completion. Every
    /// admitted request still gets exactly one typed resolution — drained
    /// or deadline-shed, never silently dropped.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> ServiceStats {
        self.core.accepting.store(false, Ordering::Release);
        self.queue.close();
        // Deadline sweeper: cancels every still-pending token once the
        // deadline passes. The condvar lets a fast drain release it early.
        let core = Arc::clone(&self.core);
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = Arc::clone(&done);
        let sweeper = thread::spawn(move || {
            let (lock, cv) = &*done2;
            let mut finished = lock.lock().unwrap_or_else(|p| p.into_inner());
            let wait_until = Instant::now() + deadline;
            while !*finished {
                let now = Instant::now();
                if now >= wait_until {
                    for token in core.pending.lock().unwrap_or_else(|p| p.into_inner()).values()
                    {
                        token.cancel();
                    }
                    return;
                }
                let (g, _) = cv
                    .wait_timeout(finished, wait_until - now)
                    .unwrap_or_else(|p| p.into_inner());
                finished = g;
            }
        });
        self.join_workers();
        {
            let (lock, cv) = &*done;
            *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
            cv.notify_all();
        }
        let _ = sweeper.join();
        if let Some(mut wd) = self.watchdog.take() {
            wd.stop();
        }
        self.journal_shutdown_sweep();
        self.core.stats()
    }

    /// Durably closes out any request still pending after the workers
    /// drained (a quarantined worker that never replied, or queue entries
    /// orphaned when every worker exited), then flushes and closes the
    /// journal. Without the `Failed(Shutdown)` records, replay would
    /// resurrect — and re-run — work the client already saw rejected.
    fn journal_shutdown_sweep(&self) {
        let Some(journal) = &self.core.journal else {
            return;
        };
        let leftover: Vec<u64> = {
            let g = self.core.pending.lock().unwrap_or_else(|p| p.into_inner());
            let mut ids: Vec<u64> = g.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        for id in leftover {
            // On a closed journal (Drop after an explicit shutdown) the
            // append refuses; don't count records that were not written.
            if journal
                .append(&JournalRecord::Failed { request_id: id, code: FailCode::Shutdown })
                .is_ok()
            {
                Counters::bump(&self.core.counters.journal_failed_shutdown);
            }
        }
        let _ = journal.close(); // close() flushes staged records first
    }

    fn join_workers(&mut self) {
        // The watchdog may push respawned handles while we join, so keep
        // sweeping until the registry stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut g = self.workers.lock().unwrap_or_else(|p| p.into_inner());
                g.drain(..).collect()
            };
            if handles.is_empty() {
                return;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }

    fn drain(&mut self) {
        self.core.accepting.store(false, Ordering::Release);
        // Closing the queue lets workers finish the backlog, then exit.
        self.queue.close();
        self.join_workers();
        if let Some(mut wd) = self.watchdog.take() {
            wd.stop();
        }
        self.journal_shutdown_sweep();
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop<H, F>(
    worker_id: usize,
    core: &ServiceCore,
    factory: &F,
    queue: &CoalescingQueue<Job>,
    slot: &WorkerSlot,
) where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    // (artifact version, backend) — rebuilt when the artifact is repaired
    // or the backend is lost to a caught panic. The chaos wrapper is
    // transparent when no plan is configured.
    let mut cached: Option<(u64, ChaosInjector<H>)> = None;
    loop {
        // A quarantined worker has been replaced; once it regains control
        // (its wedged op finally returned and the job was replied to) it
        // must not take new work.
        if slot.is_quarantined() {
            return;
        }
        let target = core.batch_target();
        let linger = if target > 1 { core.config.max_linger } else { Duration::ZERO };
        let Some(mut jobs) =
            queue.pop_batch(target, linger, |a, b| a.image.shape() == b.image.shape())
        else {
            return; // queue closed and drained: shutdown
        };
        for _ in &jobs {
            Counters::drop_one(&core.counters.queue_depth);
        }
        Counters::add(&core.counters.in_flight, jobs.len() as u64);
        // `Started` is diagnostic (replay keys off Admitted/Completed), so
        // it rides the next group commit instead of forcing its own fsync.
        if let Some(j) = &core.journal {
            for job in &jobs {
                let _ = j.append(&JournalRecord::Started { request_id: job.id });
            }
        }
        if jobs.len() == 1 {
            if let Some(job) = jobs.pop() {
                slot.begin(job.id, &job.token);
                let result = handle_job(core, factory, worker_id, &mut cached, &job, slot);
                finish_job(core, &job, result);
                slot.finish();
                Counters::drop_one(&core.counters.in_flight);
            }
        } else {
            Counters::bump(&core.counters.batches_formed);
            Counters::add(&core.counters.batched_requests, jobs.len() as u64);
            let results = handle_batch(core, factory, worker_id, &mut cached, &jobs, slot);
            for (job, result) in jobs.iter().zip(results) {
                finish_job(core, job, result);
                Counters::drop_one(&core.counters.in_flight);
            }
            slot.finish();
        }
    }
}

/// Everything that happens to one request after its result is decided:
/// output quantization, latency/outcome accounting, durable journal
/// close-out, the (chaos-droppable) reply, and pending-state cleanup.
/// Shared verbatim between the solo path and each coalesced-batch member,
/// so batching cannot drift from the solo path's semantics.
fn finish_job(core: &ServiceCore, job: &Job, result: Result<InferResponse, ServeError>) {
    core.latency.record(job.submitted.elapsed());
    match &result {
        Ok(resp) if resp.degraded => Counters::bump(&core.counters.degraded),
        Ok(_) => Counters::bump(&core.counters.completed_ok),
        Err(ServeError::Cancelled(_)) => Counters::bump(&core.counters.cancelled),
        Err(_) => Counters::bump(&core.counters.failed),
    }
    let result = result.map(|mut resp| {
        core.quantize_output(&mut resp.output);
        resp.latency = job.submitted.elapsed();
        resp
    });
    // Durable resolution BEFORE the reply: a response the client saw
    // is always recoverable from the journal, so replay never
    // re-executes an acknowledged request (and a duplicate key gets
    // the digest-identical answer).
    match &result {
        Ok(resp) => {
            let digest = response_digest(&resp.output, resp.degraded);
            core.journal_durable(&JournalRecord::Completed {
                request_id: job.id,
                degraded: resp.degraded,
                digest,
                output: resp.output.clone(),
            });
            if let Some(j) = &core.journal {
                j.note_completed(CompletedResponse {
                    request_id: job.id,
                    idempotency_key: job.key.clone(),
                    output: resp.output.clone(),
                    degraded: resp.degraded,
                    digest,
                });
            }
        }
        Err(e) => {
            core.journal_durable(&JournalRecord::Failed {
                request_id: job.id,
                code: fail_code(e),
            });
        }
    }
    let dropped = core
        .config
        .chaos
        .as_ref()
        .is_some_and(|plan| plan.drops_response(job.id));
    if dropped {
        // Chaos: the computed response never reaches the caller. The
        // reply sender is dropped, so the ticket resolves as
        // `WorkerLost` — a typed error, not a hang. (The journal keeps
        // the truth: the request *did* execute, so a keyed retry is
        // served the computed response instead of re-executing.)
        Counters::bump(&core.counters.dropped_responses);
    } else {
        let _ = job.reply.send(result); // caller may have dropped the ticket
    }
    core.pending.lock().unwrap_or_else(|p| p.into_inner()).remove(&job.id);
    if !job.key.is_empty() {
        // Completed keys moved to the journal's completed cache above;
        // failed keys become submittable again.
        core.pending_keys.lock().unwrap_or_else(|p| p.into_inner()).remove(&job.key);
    }
    if job.replayed {
        Counters::drop_one(&core.counters.replay_backlog);
    }
}

fn handle_job<H, F>(
    core: &ServiceCore,
    factory: &F,
    worker_id: usize,
    cached: &mut Option<(u64, ChaosInjector<H>)>,
    job: &Job,
    slot: &WorkerSlot,
) -> Result<InferResponse, ServeError>
where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    if let Err(reason) = job.token.check() {
        return Err(ServeError::Cancelled(reason));
    }
    let route = core.breaker.route();
    let mut attempts = 0usize;
    let mut last_error = None;
    if route != Route::Degraded {
        match run_primary(core, factory, worker_id, cached, job, route == Route::Probe, slot) {
            PrimaryOutcome::Done(result) => return result,
            PrimaryOutcome::Degrade { attempts_spent, error } => {
                attempts = attempts_spent;
                last_error = error;
            }
        }
    }
    if !core.config.degraded_fallback {
        // Strict mode: no simulator fallback. A request the breaker
        // refused to admit to the primary is shed (it lost the half-open
        // race, or arrived during cooldown); one whose attempts were
        // exhausted fails with the last primary error.
        return match last_error {
            Some(error) => Err(ServeError::Failed { attempts, error }),
            None if attempts > 0 => Err(ServeError::WorkerLost),
            None => Err(ServeError::Overloaded { capacity: core.config.queue_capacity }),
        };
    }
    run_degraded(core, job, attempts, slot)
}

/// How the primary-attempt loop ended.
enum PrimaryOutcome {
    /// The request resolved (success, cancellation or permanent failure).
    Done(Result<InferResponse, ServeError>),
    /// Primary gave up; fall through to the degraded route.
    Degrade {
        /// Attempts spent before giving up (reported in the response).
        attempts_spent: usize,
        /// Last primary error, when one was observed (`None` when the
        /// loop ran zero attempts or every attempt panicked).
        error: Option<ExecError>,
    },
}

#[allow(clippy::too_many_arguments)] // internal control loop, one caller
fn run_primary<H, F>(
    core: &ServiceCore,
    factory: &F,
    worker_id: usize,
    cached: &mut Option<(u64, ChaosInjector<H>)>,
    job: &Job,
    probe: bool,
    slot: &WorkerSlot,
) -> PrimaryOutcome
where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    let mut attempt = 1usize;
    let mut last_error: Option<ExecError> = None;
    while core.config.retry.allows(attempt) {
        let (version, compiled) = core.artifact_snapshot();
        if !matches!(cached, Some((v, _)) if *v == version) {
            *cached = Some((
                version,
                ChaosInjector::new(factory(worker_id, &compiled), core.config.chaos.clone()),
            ));
        }
        let Some((_, backend)) = cached.as_mut() else {
            return PrimaryOutcome::Done(Err(ServeError::WorkerLost));
        };
        // (Re)key the chaos stream for this request: faults are a pure
        // function of (seed, request id, op index), never of which worker
        // picked the job up or how many exist.
        backend.begin_request(job.id);
        let mut counter = WorkerObserver { ops: 0, slot };
        let mut ctrl = ExecControl { cancel: Some(&job.token), observer: Some(&mut counter) };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_infer_with_control(backend, &core.circuit, &compiled.plan, &job.image, &mut ctrl)
        }));
        let ops_executed = counter.ops;
        match outcome {
            Ok(Ok((output, report))) => {
                core.breaker.record_success(probe);
                return PrimaryOutcome::Done(Ok(InferResponse {
                    id: job.id,
                    output,
                    degraded: false,
                    attempts: attempt,
                    artifact_version: version,
                    ops_executed,
                    report,
                    latency: Duration::ZERO, // the worker loop fills this in
                }));
            }
            Ok(Err(e)) => match classify(&e) {
                Disposition::Cancelled(reason) => {
                    return PrimaryOutcome::Done(Err(ServeError::Cancelled(reason)));
                }
                Disposition::Permanent => {
                    // A malformed circuit is the client's fault, not the
                    // backend's: don't charge the breaker.
                    return PrimaryOutcome::Done(Err(ServeError::Failed {
                        attempts: attempt,
                        error: e,
                    }));
                }
                Disposition::Repair => {
                    core.breaker.record_failure(probe);
                    core.repair(version);
                    last_error = Some(e);
                }
                Disposition::Retry => {
                    core.breaker.record_failure(probe);
                    last_error = Some(e);
                }
            },
            Err(_panic) => {
                // The backend is in an unknown state: drop it; the next
                // attempt (on any request) rebuilds from the factory.
                *cached = None;
                Counters::bump(&core.counters.panics_caught);
                core.breaker.record_failure(probe);
            }
        }
        // A failed probe never gets a second chance: the breaker reopened.
        if probe {
            return PrimaryOutcome::Degrade { attempts_spent: attempt, error: last_error };
        }
        attempt += 1;
        if !core.config.retry.allows(attempt) {
            break;
        }
        Counters::bump(&core.counters.retries);
        let mut pause = core.config.retry.backoff(job.id, attempt.saturating_sub(1) as u32);
        if let Some(remaining) = job.token.remaining() {
            pause = pause.min(remaining);
        }
        if !pause.is_zero() {
            thread::sleep(pause);
        }
        if let Err(reason) = job.token.check() {
            return PrimaryOutcome::Done(Err(ServeError::Cancelled(reason)));
        }
    }
    // Retries exhausted. If the failure was permanent in nature we'd have
    // returned above; pass the last error along for strict mode, where
    // there is no degraded route to produce the definitive result.
    Counters::bump(&core.counters.retries_exhausted);
    PrimaryOutcome::Degrade {
        attempts_spent: attempt.min(core.config.retry.max_attempts.max(1)),
        error: last_error,
    }
}

fn run_degraded(
    core: &ServiceCore,
    job: &Job,
    attempts: usize,
    slot: &WorkerSlot,
) -> Result<InferResponse, ServeError> {
    if let Err(reason) = job.token.check() {
        return Err(ServeError::Cancelled(reason));
    }
    let (version, compiled) = core.artifact_snapshot();
    let mut sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, core.config.degraded_seed)
        .without_noise();
    let mut counter = WorkerObserver { ops: 0, slot };
    let mut ctrl = ExecControl { cancel: Some(&job.token), observer: Some(&mut counter) };
    match try_infer_with_control(&mut sim, &core.circuit, &compiled.plan, &job.image, &mut ctrl) {
        Ok((output, report)) => Ok(InferResponse {
            id: job.id,
            output,
            degraded: true,
            attempts,
            artifact_version: version,
            ops_executed: counter.ops,
            report,
            latency: Duration::ZERO, // the worker loop fills this in
        }),
        Err(ExecError::Cancelled { reason, .. }) => Err(ServeError::Cancelled(reason)),
        Err(e) => Err(ServeError::Failed { attempts, error: e }),
    }
}

/// The batched analogue of [`WorkerObserver`]: counts ops, beats the
/// watchdog — and enforces the cohort rule. The executor watches the
/// *batch* token, which this observer trips only once **every** member
/// has cancelled: one member's deadline or explicit cancel never aborts
/// the ciphertext work its cohort is still waiting on.
struct BatchObserver<'a> {
    ops: usize,
    slot: &'a WorkerSlot,
    members: Vec<CancelToken>,
    batch: CancelToken,
}

impl ExecObserver for BatchObserver<'_> {
    fn on_op(&mut self, _op_index: usize, _op: &str) {
        self.ops += 1;
        self.slot.beat();
        if !self.members.is_empty() && self.members.iter().all(CancelToken::is_cancelled) {
            self.batch.cancel();
        }
    }
}

/// Resolves a coalesced batch. Members run together through the batched
/// primary path; anything that path cannot resolve (breaker open,
/// permanent error, capacity shrunk by a repair, retries exhausted, a
/// watchdog-cancelled batch) falls back to the solo path one member at a
/// time — which re-applies breaker routing, retries and the degraded
/// route exactly as an unbatched request would see them.
fn handle_batch<H, F>(
    core: &ServiceCore,
    factory: &F,
    worker_id: usize,
    cached: &mut Option<(u64, ChaosInjector<H>)>,
    jobs: &[Job],
    slot: &WorkerSlot,
) -> Vec<Result<InferResponse, ServeError>>
where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    let mut results: Vec<Option<Result<InferResponse, ServeError>>> =
        (0..jobs.len()).map(|_| None).collect();
    // Members already cancelled (deadline expired while queued or during
    // the linger window) resolve immediately; the cohort is unaffected.
    let mut live: Vec<usize> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match job.token.check() {
            Err(reason) => {
                if let Some(r) = results.get_mut(i) {
                    *r = Some(Err(ServeError::Cancelled(reason)));
                }
            }
            Ok(()) => live.push(i),
        }
    }
    // The executor watches the batch token, not any single member's (see
    // [`BatchObserver`]); the watchdog cancels it too if the batch wedges.
    let batch_token = CancelToken::new();
    if let Some(&head) = live.first() {
        slot.begin(jobs[head].id, &batch_token);
    }
    if live.len() >= 2 {
        let route = core.breaker.route();
        if route != Route::Degraded {
            let (resolved, fallback) = run_primary_batch(
                core,
                factory,
                worker_id,
                cached,
                jobs,
                &live,
                &batch_token,
                route == Route::Probe,
                slot,
            );
            for (i, r) in resolved {
                if let Some(slot_r) = results.get_mut(i) {
                    *slot_r = Some(r);
                }
            }
            live = fallback;
        }
        // Breaker open: every member takes the solo path below, which
        // routes each to the degraded simulator individually.
    }
    for &i in &live {
        if let Some(job) = jobs.get(i) {
            slot.begin(job.id, &job.token);
            if let Some(r) = results.get_mut(i) {
                *r = Some(handle_job(core, factory, worker_id, cached, job, slot));
            }
        }
    }
    results.into_iter().map(|r| r.unwrap_or(Err(ServeError::WorkerLost))).collect()
}

/// Per-member resolutions by batch index, plus the members the solo path
/// must finish.
type BatchResolution = (Vec<(usize, Result<InferResponse, ServeError>)>, Vec<usize>);

/// The batched analogue of [`run_primary`]: retries/repairs the whole
/// cohort as a unit. Returns `(resolved, fallback)` — per-member
/// resolutions, plus the members the solo path must finish.
#[allow(clippy::too_many_arguments)] // internal control loop, one caller
fn run_primary_batch<H, F>(
    core: &ServiceCore,
    factory: &F,
    worker_id: usize,
    cached: &mut Option<(u64, ChaosInjector<H>)>,
    jobs: &[Job],
    live: &[usize],
    batch_token: &CancelToken,
    probe: bool,
    slot: &WorkerSlot,
) -> BatchResolution
where
    H: Hisa,
    F: Fn(usize, &CompiledCircuit) -> H,
{
    let Some(&head_idx) = live.first() else {
        return (Vec::new(), Vec::new());
    };
    let head_id = jobs[head_idx].id;
    let mut attempt = 1usize;
    while core.config.retry.allows(attempt) {
        let (version, compiled) = core.artifact_snapshot();
        if !matches!(cached, Some((v, _)) if *v == version) {
            *cached = Some((
                version,
                ChaosInjector::new(factory(worker_id, &compiled), core.config.chaos.clone()),
            ));
        }
        let Some((_, backend)) = cached.as_mut() else {
            let resolved = live.iter().map(|&i| (i, Err(ServeError::WorkerLost))).collect();
            return (resolved, Vec::new());
        };
        // A repair may have grown the member width past what this batch
        // fits into; re-run the members solo rather than fail them.
        let batch_n = live.len().next_power_of_two();
        let cap = batch_capacity(&core.circuit, &compiled.plan, compiled.params.slots());
        if batch_n > cap {
            return (Vec::new(), live.to_vec());
        }
        backend.begin_request(head_id);
        let images: Vec<&Tensor> = live.iter().map(|&i| &jobs[i].image).collect();
        let mut observer = BatchObserver {
            ops: 0,
            slot,
            members: live.iter().map(|&i| jobs[i].token.clone()).collect(),
            batch: batch_token.clone(),
        };
        let mut ctrl = ExecControl { cancel: Some(batch_token), observer: Some(&mut observer) };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_infer_batch_with_control(
                backend,
                &core.circuit,
                &compiled.plan,
                &images,
                batch_n,
                &mut ctrl,
            )
        }));
        let ops_executed = observer.ops;
        match outcome {
            Ok(Ok((outputs, report))) => {
                core.breaker.record_success(probe);
                let mut resolved = Vec::with_capacity(live.len());
                for (k, &i) in live.iter().enumerate() {
                    // A member whose own token tripped mid-batch resolves
                    // `Cancelled` even though the cohort's result exists:
                    // the caller gave up, and must see the same outcome it
                    // would have seen unbatched.
                    let r = match jobs[i].token.check() {
                        Err(reason) => Err(ServeError::Cancelled(reason)),
                        Ok(()) => Ok(InferResponse {
                            id: jobs[i].id,
                            output: outputs[k].clone(),
                            degraded: false,
                            attempts: attempt,
                            artifact_version: version,
                            ops_executed,
                            report,
                            latency: Duration::ZERO, // finish_job fills this in
                        }),
                    };
                    resolved.push((i, r));
                }
                return (resolved, Vec::new());
            }
            Ok(Err(e)) => match classify(&e) {
                Disposition::Cancelled(_) => {
                    // The batch token tripped: every member cancelled, or
                    // the watchdog cancelled a wedged batch. Members whose
                    // own tokens tripped are cancelled; survivors (if any)
                    // re-run solo.
                    let mut resolved = Vec::new();
                    let mut fallback = Vec::new();
                    for &i in live {
                        match jobs[i].token.check() {
                            Err(reason) => resolved.push((i, Err(ServeError::Cancelled(reason)))),
                            Ok(()) => fallback.push(i),
                        }
                    }
                    return (resolved, fallback);
                }
                Disposition::Permanent => {
                    // Let each member resolve on its own terms: the solo
                    // path reports the precise per-request error.
                    return (Vec::new(), live.to_vec());
                }
                Disposition::Repair => {
                    core.breaker.record_failure(probe);
                    core.repair(version);
                }
                Disposition::Retry => {
                    core.breaker.record_failure(probe);
                }
            },
            Err(_panic) => {
                // The backend is in an unknown state: drop it; the next
                // attempt (on any request) rebuilds from the factory.
                *cached = None;
                Counters::bump(&core.counters.panics_caught);
                core.breaker.record_failure(probe);
            }
        }
        // A failed probe never gets a second chance: the breaker reopened.
        if probe {
            return (Vec::new(), live.to_vec());
        }
        attempt += 1;
        if !core.config.retry.allows(attempt) {
            break;
        }
        Counters::bump(&core.counters.retries);
        let mut pause = core.config.retry.backoff(head_id, attempt.saturating_sub(1) as u32);
        if let Some(soonest) = live.iter().filter_map(|&i| jobs[i].token.remaining()).min() {
            pause = pause.min(soonest);
        }
        if !pause.is_zero() {
            thread::sleep(pause);
        }
        if live.iter().all(|&i| jobs[i].token.check().is_err()) {
            let resolved = live
                .iter()
                .map(|&i| {
                    let reason =
                        jobs[i].token.check().err().unwrap_or(CancelReason::Cancelled);
                    (i, Err(ServeError::Cancelled(reason)))
                })
                .collect();
            return (resolved, Vec::new());
        }
    }
    // Retries exhausted: the solo path decides each member's fate (strict
    // mode failure or the degraded route).
    Counters::bump(&core.counters.retries_exhausted);
    (Vec::new(), live.to_vec())
}
