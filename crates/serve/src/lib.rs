//! # chet-serve
//!
//! A resilient, multi-threaded inference service over the CHET compiler
//! and runtime — the serving layer a compiled FHE model would actually
//! run behind. The paper's pipeline compiles one circuit and runs it
//! once; this crate turns that artifact into a long-lived service that
//! survives the failures a production deployment sees:
//!
//! * **Bounded admission** — a fixed-depth queue that sheds overload with
//!   a structured [`ServeError::Overloaded`] instead of blocking callers.
//! * **Deadlines & cancellation** — every request carries a
//!   [`CancelToken`](chet_runtime::cancel::CancelToken); the executor
//!   checks it between tensor ops, so an abandoned request stops burning
//!   ciphertext compute within one op.
//! * **Retries with deterministic backoff** — transient HISA faults are
//!   retried under a seeded exponential-backoff-with-jitter schedule
//!   ([`RetryPolicy`]); `LevelExhausted`/`PrecisionLoss` escalate into
//!   the compiler's checked-repair recompilation first.
//! * **Circuit breaking & graceful degradation** — consecutive backend
//!   failures trip a three-state [`CircuitBreaker`]; while it is open,
//!   requests run on the plaintext simulator and come back flagged
//!   [`InferResponse::degraded`] rather than failing outright.
//! * **Observability** — [`ServiceStats`] snapshots queue depth,
//!   in-flight count, retry/repair/shed counters, breaker transitions and
//!   a log₂ latency histogram.
//!
//! Everything is plain `std`: OS threads, `mpsc` channels and atomics —
//! no async runtime. See `examples/serve_demo.rs` for a tour.

// Same failure-model gate as the runtime and compiler (enforced by
// `ci.sh` via clippy): non-test serving code must not unwrap/expect —
// a serving layer that can panic on a malformed request is not a serving
// layer. Tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod chaos;
pub mod health;
pub mod journal;
pub mod queue;
pub mod retry;
pub mod service;
pub mod stats;
pub mod store;
pub mod watchdog;

pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState, BreakerTransition, CircuitBreaker};
pub use chaos::{ChaosInjector, ChaosPlan, CrashPlan, CrashPoint};
pub use health::{HealthReport, HealthVerdict, JournalHealth, WorkerHealth, WorkerState};
pub use journal::{
    response_digest, CompletedResponse, FailCode, Journal, JournalConfig, JournalError,
    JournalRecord, PendingRequest, ReplayReport, TornTail, JOURNAL_FILE, TORN_FILE,
};
pub use queue::{CoalescingQueue, PushError};
pub use retry::RetryPolicy;
pub use service::{
    vet_artifact, vet_artifact_with_budget, InferResponse, InferenceService, ServeConfig,
    ServeError, Submission, Ticket,
};
pub use stats::{LatencyHistogram, LatencySnapshot, ServiceStats};
pub use store::{
    ArtifactStore, KeyBundleRecord, LockError, RecordFault, RecoveryReport, StoreError,
    StoreIntegrity, StoreLock, StoredArtifact,
};
pub use watchdog::{Escalation, WatchdogConfig, WatchdogEvent, WorkerSlot};
