//! Bounded admission queue with coalescing dequeue.
//!
//! The service's original `mpsc::sync_channel` gave bounded admission and
//! load shedding, but a channel can only hand a worker one job at a time —
//! cross-request batch packing needs the dequeue side to *gather*: pop the
//! head, then collect every queued job that can ride in the same ciphertext
//! batch, optionally lingering a bounded window for stragglers.
//!
//! [`CoalescingQueue`] is that structure: a `Mutex<VecDeque>` + `Condvar`
//! bounded queue whose [`CoalescingQueue::pop_batch`] implements the
//! batching window. Head-of-line order is preserved — the oldest job
//! anchors every batch, and jobs it cannot coalesce with stay queued in
//! arrival order for the next dequeue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item comes back to the caller.
    Full(T),
    /// The queue is closed (service draining); the item comes back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue with batch-gathering dequeue. See the module docs.
pub struct CoalescingQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> CoalescingQueue<T> {
    /// An open queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        CoalescingQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking push: refuses when full (load shedding) or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocking push: waits for space instead of shedding — the journal
    /// replay path uses this, where an already-acknowledged admission must
    /// not be dropped just because the backlog exceeds the queue depth.
    /// Returns the item when the queue closes before space opens.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if g.closed {
                return Err(item);
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                self.cv.notify_all();
                return Ok(());
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: pushes start refusing, and [`pop_batch`] returns
    /// `None` once the remaining items drain. Idempotent.
    ///
    /// [`pop_batch`]: CoalescingQueue::pop_batch
    pub fn close(&self) {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        self.cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks for the next batch: pops the head job, gathers up to
    /// `target - 1` further queued jobs `compatible` with it, and — when
    /// the batch is still short — lingers up to `linger` for more arrivals.
    /// Incompatible jobs keep their queue position. Returns `None` when
    /// the queue is closed and drained (worker shutdown).
    pub fn pop_batch<F>(&self, target: usize, linger: Duration, compatible: F) -> Option<Vec<T>>
    where
        F: Fn(&T, &T) -> bool,
    {
        let target = target.max(1);
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(head) = g.items.pop_front() {
                let mut batch = vec![head];
                let deadline = Instant::now() + linger;
                loop {
                    // Gather pass: pull every compatible job, preserving
                    // the relative order of what stays behind.
                    let mut i = 0;
                    while batch.len() < target && i < g.items.len() {
                        if compatible(&batch[0], &g.items[i]) {
                            if let Some(job) = g.items.remove(i) {
                                batch.push(job);
                            }
                        } else {
                            i += 1;
                        }
                    }
                    if batch.len() >= target || g.closed {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (ng, _) = self
                        .cv
                        .wait_timeout(g, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    g = ng;
                }
                // Space freed: wake any blocked pushers (and other workers).
                self.cv.notify_all();
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_preserves_fifo() {
        let q = CoalescingQueue::new(8);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(1, Duration::ZERO, |_, _| true).unwrap();
        assert_eq!(batch, vec![0]);
        let batch = q.pop_batch(1, Duration::ZERO, |_, _| true).unwrap();
        assert_eq!(batch, vec![1]);
    }

    #[test]
    fn full_queue_sheds() {
        let q = CoalescingQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
    }

    #[test]
    fn closed_queue_refuses_and_drains() {
        let q = CoalescingQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
        assert_eq!(q.pop_batch(4, Duration::ZERO, |_, _| true), Some(vec![7]));
        assert_eq!(q.pop_batch(4, Duration::ZERO, |_, _| true), None);
    }

    #[test]
    fn gather_skips_incompatible_and_keeps_their_order() {
        let q = CoalescingQueue::new(8);
        for v in [10, 11, 20, 12, 21] {
            q.try_push(v).unwrap();
        }
        // Same decade = compatible.
        let batch = q.pop_batch(4, Duration::ZERO, |a, b| a / 10 == b / 10).unwrap();
        assert_eq!(batch, vec![10, 11, 12]);
        let batch = q.pop_batch(4, Duration::ZERO, |a, b| a / 10 == b / 10).unwrap();
        assert_eq!(batch, vec![20, 21]);
    }

    #[test]
    fn linger_window_admits_stragglers() {
        let q = Arc::new(CoalescingQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            q2.try_push(2).unwrap();
        });
        let batch = q.pop_batch(2, Duration::from_secs(5), |_, _| true).unwrap();
        pusher.join().unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn zero_linger_returns_immediately_with_partial_batch() {
        let q = CoalescingQueue::new(8);
        q.try_push(1).unwrap();
        let t0 = Instant::now();
        let batch = q.pop_batch(8, Duration::ZERO, |_, _| true).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn close_releases_lingering_worker() {
        let q = Arc::new(CoalescingQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let closer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            q2.close();
        });
        // Would linger 30 s without the close-triggered early return.
        let batch = q.pop_batch(4, Duration::from_secs(30), |_, _| true).unwrap();
        closer.join().unwrap();
        assert_eq!(batch, vec![1]);
        assert_eq!(q.pop_batch(4, Duration::from_secs(30), |_, _| true), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(CoalescingQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = thread::spawn(move || q2.push_blocking(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_batch(1, Duration::ZERO, |_, _| true), Some(vec![1]));
        assert!(pusher.join().unwrap().is_ok());
        assert_eq!(q.pop_batch(1, Duration::ZERO, |_, _| true), Some(vec![2]));
    }

    #[test]
    fn blocking_push_returns_item_on_close() {
        let q = Arc::new(CoalescingQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = thread::spawn(move || q2.push_blocking(2));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(2));
    }
}
