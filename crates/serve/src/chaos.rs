//! Seeded chaos injection at the *service* boundary.
//!
//! `chet_runtime::fault` injects HISA-level failures (missing rotation
//! keys, exhausted levels) into a single backend. This module extends that
//! idea to the failure classes only a serving tier sees:
//!
//! * **slow workers** — an op stalls briefly; latency grows but the
//!   cooperative `CancelToken` checks still fire between ops.
//! * **hung workers** — an op stalls *ignoring* cancellation, modelling a
//!   wedged FFI call or a scheduler pathology; only the watchdog can see
//!   it ([`crate::watchdog`]).
//! * **bit-flipped ciphertexts** — a corrupted ciphertext decodes to
//!   garbage; modelled as NaN-poisoning the decode, which the executor's
//!   output check converts to `ExecError::PrecisionLoss` — detected,
//!   never served.
//! * **bit-flipped / dropped rotation keys** — a corrupted key bundle is
//!   unusable, surfacing as `HisaError::MissingRotationKey` on the
//!   fallible path.
//! * **dropped responses** — the worker computes an answer but the reply
//!   channel dies; the caller's [`Ticket`](crate::Ticket) resolves as
//!   `ServeError::WorkerLost`, never hangs.
//! * **store truncation mid-write** — simulated by the [`truncate_file`] /
//!   [`flip_byte`] helpers against the store directory; the store's
//!   checksums quarantine the damage on the next open.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(plan seed, request id, per-
//! request op index)` — splitmix64 in counter mode, exactly like the
//! fault injector. Worker identity and thread count never enter a draw,
//! so a chaos soak replays bit-identically across `CHET_THREADS`
//! settings: same seed, same faults, at the same ops of the same
//! requests. The worker calls [`ChaosInjector::begin_request`] before
//! each attempt to (re)key the stream.

use chet_hisa::{Hisa, HisaError};
use chet_runtime::fault::splitmix64;
use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::io::{self, Read as IoRead, Seek, SeekFrom, Write as IoWrite};
use std::path::Path;
use std::time::Duration;

/// Salt folded into [`ChaosPlan::drops_response`] draws so the drop
/// decision is independent of the op-level stream for the same request.
const DROP_RESPONSE_SALT: u64 = 0xD80B_1E55_0CEA_4ED5;

/// Which serve-layer fault classes fire, and how often. All rates are
/// per-eligible-op probabilities in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed; with the same seed and request ids, the schedule replays
    /// bit-identically regardless of worker count.
    pub seed: u64,
    /// Rate of short op stalls ([`ChaosPlan::slow_pause`]).
    pub slow_workers: f64,
    /// Rate of bounded *uncancellable* op stalls
    /// ([`ChaosPlan::hang_pause`]): the sleep ignores the request token,
    /// modelling a wedged backend only the watchdog can detect.
    pub hung_workers: f64,
    /// Rate of ciphertext bit flips, surfaced as NaN-poisoned decodes
    /// (caught by the executor's output check as `PrecisionLoss`).
    pub bitflip_ciphertexts: f64,
    /// Rate of corrupted/dropped rotation keys, surfaced as
    /// [`HisaError::MissingRotationKey`] on the fallible path.
    pub drop_rotation_keys: f64,
    /// Per-request rate of dropped responses (the worker computes, the
    /// reply channel dies; the ticket resolves `WorkerLost`).
    pub drop_responses: f64,
    /// Length of a slow-worker stall.
    pub slow_pause: Duration,
    /// Length of a hung-worker stall. Deliberately bounded: the fault
    /// models a *temporarily* wedged op so soaks terminate; the watchdog
    /// must still flag it, because a real wedge has no such bound.
    pub hang_pause: Duration,
}

impl ChaosPlan {
    /// No chaos; set individual rates to switch classes on.
    pub fn disabled(seed: u64) -> Self {
        ChaosPlan {
            seed,
            slow_workers: 0.0,
            hung_workers: 0.0,
            bitflip_ciphertexts: 0.0,
            drop_rotation_keys: 0.0,
            drop_responses: 0.0,
            slow_pause: Duration::from_micros(200),
            hang_pause: Duration::from_millis(120),
        }
    }

    /// Every serve-layer fault class at the given rate — the soak-test
    /// plan.
    pub fn all(seed: u64, rate: f64) -> Self {
        ChaosPlan {
            slow_workers: rate,
            hung_workers: rate,
            bitflip_ciphertexts: rate,
            drop_rotation_keys: rate,
            drop_responses: rate,
            ..ChaosPlan::disabled(seed)
        }
    }

    /// Whether the plan can fire anything at all.
    pub fn is_enabled(&self) -> bool {
        self.slow_workers > 0.0
            || self.hung_workers > 0.0
            || self.bitflip_ciphertexts > 0.0
            || self.drop_rotation_keys > 0.0
            || self.drop_responses > 0.0
    }

    /// Whether this request's computed response gets dropped on the floor.
    /// Pure function of `(seed, request_id)` — the worker that happens to
    /// run the request is irrelevant.
    pub fn drops_response(&self, request_id: u64) -> bool {
        if self.drop_responses <= 0.0 {
            return false;
        }
        let z = splitmix64(self.seed ^ splitmix64(request_id) ^ DROP_RESPONSE_SALT);
        to_unit(z) < self.drop_responses
    }
}

fn to_unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Hisa`] wrapper that injects the [`ChaosPlan`]'s op-level faults.
///
/// Like [`FaultInjector`](chet_runtime::fault::FaultInjector), error
/// faults fire only on the `try_*` path (plus decode poisoning) — the
/// panicking methods and timing faults pass through so analysis
/// interpretations stay untouched. Every `try_*` override forwards to the
/// inner backend's `try_*`, so wrapping a `FaultInjector` preserves *its*
/// injections too: the soak composes HISA-level and serve-level chaos.
pub struct ChaosInjector<H: Hisa> {
    inner: H,
    plan: Option<ChaosPlan>,
    /// Per-request stream origin, rekeyed by [`ChaosInjector::begin_request`].
    stream: u64,
    /// Ops rolled within the current request.
    ops: u64,
    injected: Vec<String>,
}

impl<H: Hisa> ChaosInjector<H> {
    /// Wraps a backend. `None` (or a plan with all rates zero) makes the
    /// wrapper a transparent passthrough.
    pub fn new(inner: H, plan: Option<ChaosPlan>) -> Self {
        let plan = plan.filter(ChaosPlan::is_enabled);
        ChaosInjector { inner, plan, stream: 0, ops: 0, injected: Vec::new() }
    }

    /// (Re)keys the fault stream for a request: all subsequent decisions
    /// are a pure function of `(seed, request_id, op index)`. Call before
    /// every attempt — a retry of the same request replays the same
    /// schedule, which is exactly what reproducibility demands.
    pub fn begin_request(&mut self, request_id: u64) {
        if let Some(p) = &self.plan {
            self.stream = splitmix64(p.seed ^ splitmix64(request_id));
        }
        self.ops = 0;
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Log of injected faults, in op order.
    pub fn injected(&self) -> &[String] {
        &self.injected
    }

    /// Rolls one decision against `rate`, always advancing the op counter
    /// when chaos is enabled (so disabling one class does not reshuffle
    /// the others' schedules).
    fn roll(&mut self, rate: f64) -> bool {
        if self.plan.is_none() {
            return false;
        }
        let z = splitmix64(self.stream.wrapping_add(self.ops));
        self.ops += 1;
        rate > 0.0 && to_unit(z) < rate
    }

    /// Timing faults shared by every op: a short cancellable-between-ops
    /// stall, or a bounded stall that ignores cancellation entirely.
    fn stall(&mut self) {
        let Some(p) = self.plan.clone() else { return };
        if self.roll(p.slow_workers) {
            self.injected.push("slow op".into());
            std::thread::sleep(p.slow_pause);
        }
        if self.roll(p.hung_workers) {
            self.injected.push("hung op (uncancellable stall)".into());
            // Deliberately does NOT consult any CancelToken: that is the
            // fault being modelled. The watchdog path must catch this.
            std::thread::sleep(p.hang_pause);
        }
    }

    fn roll_rotation_fault(&mut self, step: usize) -> Option<HisaError> {
        let rate = self.plan.as_ref().map_or(0.0, |p| p.drop_rotation_keys);
        if self.roll(rate) {
            self.injected.push(format!("corrupted rotation key for step {step}"));
            return Some(HisaError::MissingRotationKey { step, available: Vec::new() });
        }
        None
    }
}

impl<H: Hisa> Hisa for ChaosInjector<H> {
    type Ct = H::Ct;
    type Pt = H::Pt;

    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> H::Pt {
        self.inner.encode(values, scale)
    }

    fn decode(&mut self, p: &H::Pt) -> Vec<f64> {
        let mut v = self.inner.decode(p);
        let rate = self.plan.as_ref().map_or(0.0, |pl| pl.bitflip_ciphertexts);
        if self.roll(rate) && !v.is_empty() {
            // A flipped ciphertext bit scrambles the whole decryption;
            // poison every slot so the corruption cannot hide in unused
            // layout slots. The executor's finite-output check turns this
            // into ExecError::PrecisionLoss — detected, never served.
            for x in v.iter_mut() {
                *x = f64::NAN;
            }
            self.injected.push("bit-flipped ciphertext (poisoned decode)".into());
        }
        v
    }

    fn encrypt(&mut self, p: &H::Pt) -> H::Ct {
        self.inner.encrypt(p)
    }

    fn decrypt(&mut self, c: &H::Ct) -> H::Pt {
        self.inner.decrypt(c)
    }

    fn copy(&mut self, c: &H::Ct) -> H::Ct {
        self.inner.copy(c)
    }

    fn rot_left(&mut self, c: &H::Ct, x: usize) -> H::Ct {
        self.inner.rot_left(c, x)
    }

    fn rot_right(&mut self, c: &H::Ct, x: usize) -> H::Ct {
        self.inner.rot_right(c, x)
    }

    fn add(&mut self, a: &H::Ct, b: &H::Ct) -> H::Ct {
        self.inner.add(a, b)
    }

    fn add_plain(&mut self, a: &H::Ct, p: &H::Pt) -> H::Ct {
        self.inner.add_plain(a, p)
    }

    fn add_scalar(&mut self, a: &H::Ct, x: f64) -> H::Ct {
        self.inner.add_scalar(a, x)
    }

    fn sub(&mut self, a: &H::Ct, b: &H::Ct) -> H::Ct {
        self.inner.sub(a, b)
    }

    fn sub_plain(&mut self, a: &H::Ct, p: &H::Pt) -> H::Ct {
        self.inner.sub_plain(a, p)
    }

    fn sub_scalar(&mut self, a: &H::Ct, x: f64) -> H::Ct {
        self.inner.sub_scalar(a, x)
    }

    fn mul(&mut self, a: &H::Ct, b: &H::Ct) -> H::Ct {
        self.inner.mul(a, b)
    }

    fn mul_plain(&mut self, a: &H::Ct, p: &H::Pt) -> H::Ct {
        self.inner.mul_plain(a, p)
    }

    fn mul_scalar(&mut self, a: &H::Ct, x: f64, scale: f64) -> H::Ct {
        self.inner.mul_scalar(a, x, scale)
    }

    fn rescale(&mut self, c: &H::Ct, divisor: f64) -> H::Ct {
        self.inner.rescale(c, divisor)
    }

    fn max_rescale(&mut self, c: &H::Ct, ub: f64) -> f64 {
        self.inner.max_rescale(c, ub)
    }

    fn scale_of(&self, c: &H::Ct) -> f64 {
        self.inner.scale_of(c)
    }

    fn try_encode(&mut self, values: &[f64], scale: f64) -> Result<H::Pt, HisaError> {
        self.stall();
        self.inner.try_encode(values, scale)
    }

    fn try_rot_left(&mut self, c: &H::Ct, x: usize) -> Result<H::Ct, HisaError> {
        self.stall();
        if let Some(e) = self.roll_rotation_fault(x) {
            return Err(e);
        }
        self.inner.try_rot_left(c, x)
    }

    fn try_rot_right(&mut self, c: &H::Ct, x: usize) -> Result<H::Ct, HisaError> {
        self.stall();
        if let Some(e) = self.roll_rotation_fault(x) {
            return Err(e);
        }
        self.inner.try_rot_right(c, x)
    }

    fn try_add(&mut self, a: &H::Ct, b: &H::Ct) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_add(a, b)
    }

    fn try_add_plain(&mut self, a: &H::Ct, p: &H::Pt) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_add_plain(a, p)
    }

    fn try_add_scalar(&mut self, a: &H::Ct, x: f64) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_add_scalar(a, x)
    }

    fn try_sub(&mut self, a: &H::Ct, b: &H::Ct) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_sub(a, b)
    }

    fn try_sub_plain(&mut self, a: &H::Ct, p: &H::Pt) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_sub_plain(a, p)
    }

    fn try_sub_scalar(&mut self, a: &H::Ct, x: f64) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_sub_scalar(a, x)
    }

    fn try_mul(&mut self, a: &H::Ct, b: &H::Ct) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_mul(a, b)
    }

    fn try_mul_plain(&mut self, a: &H::Ct, p: &H::Pt) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_mul_plain(a, p)
    }

    fn try_mul_scalar(&mut self, a: &H::Ct, x: f64, scale: f64) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_mul_scalar(a, x, scale)
    }

    fn try_rescale(&mut self, c: &H::Ct, divisor: f64) -> Result<H::Ct, HisaError> {
        self.stall();
        self.inner.try_rescale(c, divisor)
    }

    fn available_rotations(&self) -> Option<BTreeSet<usize>> {
        self.inner.available_rotations()
    }
}

/// A named process-kill site inside the durability path. The journal (and
/// the service's replay loop) call [`CrashPlan::fires`] at each point; the
/// crash harness uses the names to build its kill-and-restart matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Inside a journal flush cycle, after the framed bytes were handed to
    /// the OS but **before** `fsync`. The harness models this as a *torn*
    /// write: half the batch reaches the disk, then the process dies —
    /// recovery must quarantine the torn tail, and nothing in the batch
    /// was ever acknowledged.
    BeforeFsync,
    /// Immediately **after** `fsync` returned, before the append's caller
    /// (the admission or completion path) can acknowledge anyone. The
    /// records are durable but no client saw a response — replay must run
    /// them (admissions) or serve them from the completed cache
    /// (completions) without re-executing acknowledged work.
    AfterFsyncBeforeAck,
    /// During recovery itself, between two re-enqueued pending requests.
    /// Replay mutates nothing in the journal, so a crash here must leave
    /// the *next* recovery able to replay the same pending set.
    MidReplay,
}

impl CrashPoint {
    /// Parses the CLI spelling used by the crash harness and `ci.sh`.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        match s {
            "before-fsync" => Some(CrashPoint::BeforeFsync),
            "after-fsync" | "after-fsync-before-ack" => Some(CrashPoint::AfterFsyncBeforeAck),
            "mid-replay" => Some(CrashPoint::MidReplay),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeFsync => "before-fsync",
            CrashPoint::AfterFsyncBeforeAck => "after-fsync",
            CrashPoint::MidReplay => "mid-replay",
        }
    }
}

/// Salt for [`CrashPlan::from_seed`] hit-index draws.
const CRASH_PLAN_SALT: u64 = 0xC4A5_40D1_E5EE_D00D;

/// A seeded plan to kill the process at the `after`-th hit of one named
/// [`CrashPoint`]. Test/harness machinery — never enable in production.
///
/// The hit counter is shared across clones (the service clones its config
/// into workers), so the plan fires exactly once per process regardless of
/// which thread reaches the site.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Which durability site to die at.
    pub point: CrashPoint,
    /// Die on the `after`-th hit of that site (1-based; 0 never fires).
    pub after: u64,
    hits: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl CrashPlan {
    /// A plan that fires on the `after`-th hit of `point`.
    pub fn at(point: CrashPoint, after: u64) -> Self {
        CrashPlan { point, after, hits: std::sync::Arc::default() }
    }

    /// Derives the hit index deterministically from a seed: somewhere in
    /// `[1, span]`, so different seeds kill the process at different
    /// depths of the same crash point.
    pub fn from_seed(point: CrashPoint, seed: u64, span: u64) -> Self {
        let after = 1 + splitmix64(seed ^ CRASH_PLAN_SALT) % span.max(1);
        CrashPlan::at(point, after)
    }

    /// Counts one arrival at `point`; returns `true` when this is the
    /// arrival the plan kills. The *caller* performs the abort (so it can
    /// stage torn state first); returning `true` more than once is
    /// impossible because the first true is followed by process death.
    pub fn fires(&self, point: CrashPoint) -> bool {
        if point != self.point || self.after == 0 {
            return false;
        }
        let n = self.hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        n == self.after
    }
}

/// Truncates a file to `keep` bytes — the "crash mid-write" chaos fault
/// for store records. Used by the recovery tests and `ci.sh`'s corruption
/// round-trip.
pub fn truncate_file(path: &Path, keep: u64) -> io::Result<()> {
    OpenOptions::new().write(true).open(path)?.set_len(keep)
}

/// XORs one byte of a file with `mask` — the "silent media corruption"
/// chaos fault for store records.
pub fn flip_byte(path: &Path, offset: u64, mask: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= mask;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_ckks::sim::SimCkks;
    use chet_hisa::{EncryptionParams, RotationKeyPolicy};

    const S: f64 = (1u64 << 30) as f64;

    fn sim() -> SimCkks {
        let params = EncryptionParams::rns_ckks(8192, 40, 4);
        SimCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 1).without_noise()
    }

    /// Drives a fixed op trace and returns (error pattern, injection log).
    fn trace(plan: ChaosPlan, request_id: u64) -> (Vec<bool>, Vec<String>) {
        let mut c = ChaosInjector::new(sim(), Some(plan));
        c.begin_request(request_id);
        let pt = c.encode(&[1.0, 2.0], S);
        let ct = c.encrypt(&pt);
        let mut errs = Vec::new();
        for step in [1usize, 2, 4, 8, 16, 32] {
            errs.push(c.try_rot_left(&ct, step).is_err());
            errs.push(c.try_add(&ct, &ct).is_err());
            let _ = c.decode(&pt);
        }
        (errs, c.injected().to_vec())
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_request_id() {
        let plan = ChaosPlan {
            slow_pause: Duration::ZERO,
            hang_pause: Duration::ZERO,
            ..ChaosPlan::all(42, 0.3)
        };
        assert_eq!(trace(plan.clone(), 7), trace(plan.clone(), 7));
        assert_ne!(trace(plan.clone(), 7), trace(plan.clone(), 8));
        assert_ne!(
            trace(plan.clone(), 7),
            trace(ChaosPlan { seed: 43, ..plan }, 7)
        );
    }

    #[test]
    fn begin_request_replays_the_same_schedule_on_retry() {
        let plan = ChaosPlan {
            slow_pause: Duration::ZERO,
            hang_pause: Duration::ZERO,
            ..ChaosPlan::all(9, 0.5)
        };
        let mut c = ChaosInjector::new(sim(), Some(plan));
        let pt = c.encode(&[1.0], S);
        let ct = c.encrypt(&pt);
        let attempt = |c: &mut ChaosInjector<SimCkks>| {
            c.begin_request(3);
            (0..8).map(|_| c.try_rot_left(&ct, 1).is_err()).collect::<Vec<_>>()
        };
        let first = attempt(&mut c);
        let second = attempt(&mut c);
        assert_eq!(first, second);
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let mut c = ChaosInjector::new(sim(), Some(ChaosPlan::disabled(1)));
        c.begin_request(1);
        let pt = c.try_encode(&[1.0, 2.0], S).unwrap();
        let ct = c.encrypt(&pt);
        assert!(c.try_rot_left(&ct, 1).is_ok());
        assert!(c.try_add(&ct, &ct).is_ok());
        assert!(!c.decode(&pt).iter().any(|x| x.is_nan()));
        assert!(c.injected().is_empty());
    }

    #[test]
    fn bitflip_poisons_decode_and_rotation_faults_are_typed() {
        let plan = ChaosPlan {
            bitflip_ciphertexts: 1.0,
            drop_rotation_keys: 1.0,
            ..ChaosPlan::disabled(5)
        };
        let mut c = ChaosInjector::new(sim(), Some(plan));
        c.begin_request(11);
        let pt = c.encode(&[1.0, 2.0, 3.0], S);
        let ct = c.encrypt(&pt);
        assert!(c.decode(&pt).iter().all(|x| x.is_nan()));
        assert!(matches!(
            c.try_rot_left(&ct, 2),
            Err(HisaError::MissingRotationKey { step: 2, .. })
        ));
        assert_eq!(c.injected().len(), 2);
    }

    #[test]
    fn chaos_composes_with_the_hisa_fault_injector() {
        use chet_runtime::fault::{FaultInjector, FaultPlan};
        // Inner injector always drops rotation keys; outer chaos is
        // quiet. The chaos wrapper must forward try_* so the inner fault
        // still fires.
        let inner = FaultInjector::new(
            sim(),
            FaultPlan::none(1.0).with_dropped_rotation_keys(),
            3,
        );
        let mut c = ChaosInjector::new(inner, Some(ChaosPlan::disabled(0)));
        c.begin_request(1);
        let pt = c.encode(&[1.0], S);
        let ct = c.encrypt(&pt);
        assert!(matches!(
            c.try_rot_left(&ct, 1),
            Err(HisaError::MissingRotationKey { .. })
        ));
    }

    #[test]
    fn drop_response_decision_is_per_request_and_deterministic() {
        let plan = ChaosPlan { drop_responses: 0.5, ..ChaosPlan::disabled(77) };
        let a: Vec<bool> = (0..64).map(|id| plan.drops_response(id)).collect();
        let b: Vec<bool> = (0..64).map(|id| plan.drops_response(id)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&d| d) && a.iter().any(|&d| !d), "rate 0.5 should mix");
        assert!(!ChaosPlan::disabled(77).drops_response(1));
    }

    #[test]
    fn file_corruption_helpers_do_what_they_say() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("chet-chaos-helper-{}", std::process::id()));
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2]);
        flip_byte(&path, 1, 0xFF).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 0xFD]);
        let _ = std::fs::remove_file(&path);
    }
}
