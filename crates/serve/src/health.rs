//! Service health reporting: liveness per worker, breaker state, store
//! integrity and queue age in one structured snapshot.
//!
//! [`HealthReport`] is what an operator (or an orchestrator's readiness
//! probe) reads to answer "is this replica serving, limping, or wedged?"
//! It is assembled from state the service already maintains — the
//! watchdog's [`WorkerSlot`](crate::watchdog::WorkerSlot) registry, the
//! breaker snapshot, the store's integrity counters — so producing one is
//! cheap enough to poll.

use crate::breaker::BreakerSnapshot;
use crate::store::StoreIntegrity;
use crate::watchdog::Escalation;
use std::time::Duration;

/// Liveness classification for one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerState {
    /// Waiting for work.
    Idle,
    /// Executing a request.
    Busy {
        /// The request id being executed.
        job_id: u64,
        /// How long it has been running.
        busy_for: Duration,
        /// Watchdog escalation position for this job.
        escalation: Escalation,
    },
    /// Quarantined by the watchdog; a replacement has been spawned.
    Quarantined,
}

/// One worker's health row.
#[derive(Debug, Clone)]
pub struct WorkerHealth {
    /// Pool index (respawned workers get fresh indices).
    pub worker_id: usize,
    /// Current liveness state.
    pub state: WorkerState,
}

/// Overall verdict, derived from the report's parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Accepting and every live worker is responsive.
    Healthy,
    /// Serving, but something needs attention: breaker not closed,
    /// escalated/quarantined workers, or quarantined store records.
    Degraded,
    /// Not accepting requests (draining or drained).
    Draining,
}

/// Journal durability signals, folded into the overall verdict.
#[derive(Debug, Clone, Default)]
pub struct JournalHealth {
    /// Whether request journaling is enabled on this service.
    pub enabled: bool,
    /// Records staged but not yet fsynced. Under group commit this hovers
    /// near zero; sustained growth means the disk cannot keep up with
    /// admissions and acknowledged durability is at risk.
    pub lag_records: u64,
    /// Replayed-at-startup requests still unresolved. A replica reporting
    /// a nonzero backlog is serving, but its answers to recovered clients
    /// are still in flight — route new traffic elsewhere if possible.
    pub replay_backlog: u64,
    /// Torn-tail records quarantined at open. Nonzero is evidence of a
    /// crash mid-write: recovery handled it, but an operator should know.
    pub torn_records: u64,
}

/// Journal lag (staged-not-durable records) above which the verdict
/// degrades. Transient lag is normal under group commit; a backlog past
/// this bound means fsync is falling behind admission.
pub const MAX_HEALTHY_JOURNAL_LAG: u64 = 64;

/// Point-in-time service health, from [`crate::InferenceService::health`].
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Whether the service still accepts submissions.
    pub accepting: bool,
    /// Per-worker liveness.
    pub workers: Vec<WorkerHealth>,
    /// Primary-backend breaker state and history.
    pub breaker: BreakerSnapshot,
    /// Requests waiting in the admission queue.
    pub queue_depth: u64,
    /// Requests executing right now.
    pub in_flight: u64,
    /// Age of the oldest currently-executing request — the "queue age"
    /// signal: when this grows past typical service time, the pool is
    /// wedging or the queue is backing up.
    pub oldest_busy: Option<Duration>,
    /// Artifact/key store integrity (zeros when no store is configured).
    pub store: StoreIntegrity,
    /// Watchdog interventions so far (step 1 + step 2).
    pub watchdog_escalations: u64,
    /// Workers the watchdog has replaced.
    pub workers_respawned: u64,
    /// Request-journal durability signals (defaults when journaling is
    /// disabled).
    pub journal: JournalHealth,
    /// The watchdog exhausted its respawn budget and requested a
    /// supervised restart from the journal. The replica keeps serving
    /// with whatever workers remain, but the supervisor should recycle it.
    pub restart_requested: bool,
}

impl HealthReport {
    /// Collapses the report into a single verdict.
    pub fn verdict(&self) -> HealthVerdict {
        if !self.accepting {
            return HealthVerdict::Draining;
        }
        let breaker_closed =
            self.breaker.state == crate::breaker::BreakerState::Closed;
        let workers_clean = self.workers.iter().all(|w| match &w.state {
            WorkerState::Quarantined => false,
            WorkerState::Busy { escalation, .. } => *escalation == Escalation::None,
            WorkerState::Idle => true,
        });
        let journal_clean = !self.journal.enabled
            || (self.journal.lag_records <= MAX_HEALTHY_JOURNAL_LAG
                && self.journal.replay_backlog == 0
                && self.journal.torn_records == 0);
        if breaker_closed
            && workers_clean
            && self.store.quarantined_records == 0
            && journal_clean
            && !self.restart_requested
        {
            HealthVerdict::Healthy
        } else {
            HealthVerdict::Degraded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;

    fn base() -> HealthReport {
        HealthReport {
            accepting: true,
            workers: vec![WorkerHealth { worker_id: 0, state: WorkerState::Idle }],
            breaker: BreakerSnapshot {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                transitions: Vec::new(),
            },
            queue_depth: 0,
            in_flight: 0,
            oldest_busy: None,
            store: StoreIntegrity::default(),
            watchdog_escalations: 0,
            workers_respawned: 0,
            journal: JournalHealth::default(),
            restart_requested: false,
        }
    }

    #[test]
    fn verdict_reflects_the_parts() {
        assert_eq!(base().verdict(), HealthVerdict::Healthy);

        let mut r = base();
        r.accepting = false;
        assert_eq!(r.verdict(), HealthVerdict::Draining);

        let mut r = base();
        r.breaker.state = BreakerState::Open;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.workers[0].state = WorkerState::Quarantined;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.store.quarantined_records = 1;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.workers[0].state = WorkerState::Busy {
            job_id: 9,
            busy_for: Duration::from_millis(5),
            escalation: Escalation::None,
        };
        assert_eq!(r.verdict(), HealthVerdict::Healthy);
    }

    #[test]
    fn journal_signals_degrade_the_verdict() {
        // Disabled journal: its counters are ignored.
        let mut r = base();
        r.journal = JournalHealth {
            enabled: false,
            lag_records: 1_000,
            replay_backlog: 5,
            torn_records: 1,
        };
        assert_eq!(r.verdict(), HealthVerdict::Healthy);

        // Enabled and clean: healthy, even with bounded transient lag.
        let mut r = base();
        r.journal =
            JournalHealth { enabled: true, lag_records: MAX_HEALTHY_JOURNAL_LAG, ..Default::default() };
        assert_eq!(r.verdict(), HealthVerdict::Healthy);

        let mut r = base();
        r.journal = JournalHealth {
            enabled: true,
            lag_records: MAX_HEALTHY_JOURNAL_LAG + 1,
            ..Default::default()
        };
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.journal = JournalHealth { enabled: true, replay_backlog: 1, ..Default::default() };
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.journal = JournalHealth { enabled: true, torn_records: 1, ..Default::default() };
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.restart_requested = true;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);
    }
}
