//! Service health reporting: liveness per worker, breaker state, store
//! integrity and queue age in one structured snapshot.
//!
//! [`HealthReport`] is what an operator (or an orchestrator's readiness
//! probe) reads to answer "is this replica serving, limping, or wedged?"
//! It is assembled from state the service already maintains — the
//! watchdog's [`WorkerSlot`](crate::watchdog::WorkerSlot) registry, the
//! breaker snapshot, the store's integrity counters — so producing one is
//! cheap enough to poll.

use crate::breaker::BreakerSnapshot;
use crate::store::StoreIntegrity;
use crate::watchdog::Escalation;
use std::time::Duration;

/// Liveness classification for one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerState {
    /// Waiting for work.
    Idle,
    /// Executing a request.
    Busy {
        /// The request id being executed.
        job_id: u64,
        /// How long it has been running.
        busy_for: Duration,
        /// Watchdog escalation position for this job.
        escalation: Escalation,
    },
    /// Quarantined by the watchdog; a replacement has been spawned.
    Quarantined,
}

/// One worker's health row.
#[derive(Debug, Clone)]
pub struct WorkerHealth {
    /// Pool index (respawned workers get fresh indices).
    pub worker_id: usize,
    /// Current liveness state.
    pub state: WorkerState,
}

/// Overall verdict, derived from the report's parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Accepting and every live worker is responsive.
    Healthy,
    /// Serving, but something needs attention: breaker not closed,
    /// escalated/quarantined workers, or quarantined store records.
    Degraded,
    /// Not accepting requests (draining or drained).
    Draining,
}

/// Point-in-time service health, from [`crate::InferenceService::health`].
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Whether the service still accepts submissions.
    pub accepting: bool,
    /// Per-worker liveness.
    pub workers: Vec<WorkerHealth>,
    /// Primary-backend breaker state and history.
    pub breaker: BreakerSnapshot,
    /// Requests waiting in the admission queue.
    pub queue_depth: u64,
    /// Requests executing right now.
    pub in_flight: u64,
    /// Age of the oldest currently-executing request — the "queue age"
    /// signal: when this grows past typical service time, the pool is
    /// wedging or the queue is backing up.
    pub oldest_busy: Option<Duration>,
    /// Artifact/key store integrity (zeros when no store is configured).
    pub store: StoreIntegrity,
    /// Watchdog interventions so far (step 1 + step 2).
    pub watchdog_escalations: u64,
    /// Workers the watchdog has replaced.
    pub workers_respawned: u64,
}

impl HealthReport {
    /// Collapses the report into a single verdict.
    pub fn verdict(&self) -> HealthVerdict {
        if !self.accepting {
            return HealthVerdict::Draining;
        }
        let breaker_closed =
            self.breaker.state == crate::breaker::BreakerState::Closed;
        let workers_clean = self.workers.iter().all(|w| match &w.state {
            WorkerState::Quarantined => false,
            WorkerState::Busy { escalation, .. } => *escalation == Escalation::None,
            WorkerState::Idle => true,
        });
        if breaker_closed && workers_clean && self.store.quarantined_records == 0 {
            HealthVerdict::Healthy
        } else {
            HealthVerdict::Degraded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;

    fn base() -> HealthReport {
        HealthReport {
            accepting: true,
            workers: vec![WorkerHealth { worker_id: 0, state: WorkerState::Idle }],
            breaker: BreakerSnapshot {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                transitions: Vec::new(),
            },
            queue_depth: 0,
            in_flight: 0,
            oldest_busy: None,
            store: StoreIntegrity::default(),
            watchdog_escalations: 0,
            workers_respawned: 0,
        }
    }

    #[test]
    fn verdict_reflects_the_parts() {
        assert_eq!(base().verdict(), HealthVerdict::Healthy);

        let mut r = base();
        r.accepting = false;
        assert_eq!(r.verdict(), HealthVerdict::Draining);

        let mut r = base();
        r.breaker.state = BreakerState::Open;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.workers[0].state = WorkerState::Quarantined;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.store.quarantined_records = 1;
        assert_eq!(r.verdict(), HealthVerdict::Degraded);

        let mut r = base();
        r.workers[0].state = WorkerState::Busy {
            job_id: 9,
            busy_for: Duration::from_millis(5),
            escalation: Escalation::None,
        };
        assert_eq!(r.verdict(), HealthVerdict::Healthy);
    }
}
