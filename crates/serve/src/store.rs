//! Crash-safe on-disk store for compiled artifacts and key metadata.
//!
//! The serving tier's durable state is tiny but precious: the compiled
//! artifact (plan + parameters + rotation-key policy) and the key-bundle
//! metadata that lets a restarted service regenerate exactly the key
//! material its artifact expects. This store persists both with the
//! failure model a crash-prone host demands:
//!
//! * **Versioned record format** — every record starts with an 8-byte
//!   magic + format version; unknown versions are refused, not guessed at.
//! * **Per-record checksums** — an FNV-1a 64 checksum over the full record
//!   body. A truncated write, a bit flip, or a partially overwritten file
//!   surfaces as [`RecordFault`], never as a silently wrong artifact.
//! * **Atomic writes** — records are written to a temp file in the same
//!   directory, flushed and fsynced, then renamed over the target.
//!   A crash mid-write leaves either the old record or a `*.tmp` orphan
//!   (swept on open), never a half-written record under the real name.
//! * **Recovery-on-open** — [`ArtifactStore::open`] scans every record,
//!   *quarantines* corrupt ones (renames them to `<name>.quarantined` so
//!   forensics survive) and reports what it did in [`RecoveryReport`].
//!   The service layer falls back to `compile_checked` recompilation for
//!   anything quarantined — a corrupt store delays startup, it does not
//!   prevent it.
//!
//! Key material itself (the secret key!) is deliberately **not** stored:
//! backends in this repo regenerate keys deterministically from a seed.
//! What must survive a restart is the *binding* — which seed, which
//! rotation steps, for which parameters — and that is what
//! [`KeyBundleRecord`] holds, fingerprint-bound to its artifact's
//! parameters so a mismatched pair is detected at load time.

use chet_compiler::artifact::{decode_compiled, decode_scales, encode_compiled, encode_scales};
use chet_compiler::CompiledCircuit;
use chet_hisa::serial::{fnv1a64, params_fingerprint, CodecError, Reader, Writer};
use std::collections::BTreeSet;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Record-file magic: identifies a chet-serve store record, any version.
const MAGIC: &[u8; 8] = b"CHETSTOR";

/// Store format version; bump on layout changes.
pub const STORE_FORMAT_VERSION: u8 = 1;

/// Extension of live records.
const RECORD_EXT: &str = "rec";

/// Extension quarantined records are renamed to.
const QUARANTINE_EXT: &str = "quarantined";

/// What kind of payload a record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A compiled artifact ([`StoredArtifact`]).
    Artifact,
    /// Key-bundle metadata ([`KeyBundleRecord`]).
    KeyBundle,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Artifact => 1,
            RecordKind::KeyBundle => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::Artifact),
            2 => Some(RecordKind::KeyBundle),
            _ => None,
        }
    }
}

/// Why a record failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordFault {
    /// The file is shorter than the fixed header, or shorter than the
    /// length its own header claims — the signature of a torn write.
    Truncated {
        /// Bytes actually present.
        len: usize,
    },
    /// The leading magic bytes are wrong: not a store record at all.
    BadMagic,
    /// A record from a future (or corrupted) format version.
    UnknownVersion {
        /// The version byte found.
        version: u8,
    },
    /// The stored checksum does not match the record body.
    ChecksumMismatch {
        /// Checksum stored in the record.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// The checksum held but the payload would not decode — e.g. an
    /// undefined enum tag. (Second line of defence.)
    Undecodable(CodecError),
    /// The record kind tag is undefined.
    UnknownKind {
        /// The tag found.
        tag: u8,
    },
}

impl fmt::Display for RecordFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordFault::Truncated { len } => write!(f, "record truncated ({len} bytes)"),
            RecordFault::BadMagic => write!(f, "bad record magic"),
            RecordFault::UnknownVersion { version } => {
                write!(f, "unknown store format version {version}")
            }
            RecordFault::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            RecordFault::Undecodable(e) => write!(f, "payload undecodable: {e}"),
            RecordFault::UnknownKind { tag } => write!(f, "unknown record kind tag {tag}"),
        }
    }
}

/// A store-level failure.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error (directory missing, permissions, disk full…).
    Io(io::Error),
    /// A record failed verification at read time.
    Corrupt {
        /// The record's file name.
        name: String,
        /// What was wrong with it.
        fault: RecordFault,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { name, fault } => write!(f, "record '{name}' corrupt: {fault}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One quarantined record, as reported by [`ArtifactStore::open`].
#[derive(Debug, Clone)]
pub struct QuarantinedRecord {
    /// Record name (file stem).
    pub name: String,
    /// Why it was quarantined.
    pub fault: RecordFault,
    /// Where the corpse was moved for forensics.
    pub quarantined_to: PathBuf,
}

/// What [`ArtifactStore::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Records that verified cleanly.
    pub intact: Vec<String>,
    /// Records that failed verification and were quarantined.
    pub quarantined: Vec<QuarantinedRecord>,
    /// Orphaned temp files from interrupted writes, swept away.
    pub swept_temp_files: usize,
}

/// Point-in-time integrity summary, surfaced through the service's
/// [`HealthReport`](crate::health::HealthReport).
#[derive(Debug, Clone, Default)]
pub struct StoreIntegrity {
    /// Records currently intact on disk.
    pub intact_records: usize,
    /// Records quarantined since open (open-time + runtime detections).
    pub quarantined_records: usize,
}

/// A persisted artifact: the compiled circuit plus the serve-layer state
/// needed to resume exactly where the previous process left off.
#[derive(Debug, Clone)]
pub struct StoredArtifact {
    /// Artifact version (the service's repair counter).
    pub version: u64,
    /// The compiled circuit.
    pub compiled: CompiledCircuit,
    /// The working scales the artifact was compiled with.
    pub scales: chet_runtime::kernels::ScaleConfig,
    /// Extra margin levels accumulated by repair recompilations.
    pub extra_margin: usize,
}

/// Key-bundle metadata: enough to regenerate the key material an artifact
/// expects, bound to the artifact's parameters by fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBundleRecord {
    /// Fingerprint of the [`EncryptionParams`](chet_hisa::EncryptionParams)
    /// this bundle belongs to.
    pub params_fingerprint: u64,
    /// The deterministic key-generation seed.
    pub seed: u64,
    /// Rotation steps the bundle must cover.
    pub rotation_steps: BTreeSet<usize>,
}

fn encode_artifact_payload(a: &StoredArtifact) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(a.version);
    w.put_bytes(&encode_scales(&a.scales));
    w.put_usize(a.extra_margin);
    w.put_bytes(&encode_compiled(&a.compiled));
    w.into_bytes()
}

fn decode_artifact_payload(bytes: &[u8]) -> Result<StoredArtifact, CodecError> {
    let mut r = Reader::new(bytes);
    let version = r.get_u64("StoredArtifact.version")?;
    let scales = decode_scales(r.get_bytes("StoredArtifact.scales")?)?;
    let extra_margin = r.get_usize("StoredArtifact.extra_margin")?;
    let compiled = decode_compiled(r.get_bytes("StoredArtifact.compiled")?)?;
    r.finish()?;
    Ok(StoredArtifact { version, compiled, scales, extra_margin })
}

fn encode_key_bundle_payload(k: &KeyBundleRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(k.params_fingerprint);
    w.put_u64(k.seed);
    w.put_u32(k.rotation_steps.len() as u32);
    for &s in &k.rotation_steps {
        w.put_usize(s);
    }
    w.into_bytes()
}

fn decode_key_bundle_payload(bytes: &[u8]) -> Result<KeyBundleRecord, CodecError> {
    let mut r = Reader::new(bytes);
    let params_fingerprint = r.get_u64("KeyBundleRecord.params_fingerprint")?;
    let seed = r.get_u64("KeyBundleRecord.seed")?;
    let at = r.position();
    let len = r.get_u32("KeyBundleRecord.rotation_steps")? as usize;
    if len.saturating_mul(8) > r.remaining() {
        return Err(CodecError::BadLength { at, what: "KeyBundleRecord.rotation_steps", len });
    }
    let mut rotation_steps = BTreeSet::new();
    for _ in 0..len {
        rotation_steps.insert(r.get_usize("KeyBundleRecord.rotation_steps")?);
    }
    r.finish()?;
    Ok(KeyBundleRecord { params_fingerprint, seed, rotation_steps })
}

/// Frames a payload into the on-disk record format:
///
/// ```text
/// magic[8] | version u8 | kind u8 | payload_len u32 | payload | fnv1a64 u64
/// ```
///
/// The checksum covers everything before it (magic through payload), so
/// header corruption is caught too.
fn frame_record(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + 2 + 4 + payload.len() + 8);
    body.extend_from_slice(MAGIC);
    body.push(STORE_FORMAT_VERSION);
    body.push(kind.tag());
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    let sum = fnv1a64(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// Verifies framing + checksum, returning kind and payload bytes.
fn unframe_record(bytes: &[u8]) -> Result<(RecordKind, &[u8]), RecordFault> {
    const HEADER: usize = 8 + 1 + 1 + 4;
    if bytes.len() < HEADER + 8 {
        return Err(RecordFault::Truncated { len: bytes.len() });
    }
    if &bytes[..8] != MAGIC {
        return Err(RecordFault::BadMagic);
    }
    let version = bytes[8];
    if version != STORE_FORMAT_VERSION {
        return Err(RecordFault::UnknownVersion { version });
    }
    let payload_len =
        u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]) as usize;
    let expected = HEADER + payload_len + 8;
    if bytes.len() != expected {
        return Err(RecordFault::Truncated { len: bytes.len() });
    }
    let body = &bytes[..HEADER + payload_len];
    let stored = u64::from_le_bytes(
        bytes[HEADER + payload_len..]
            .try_into()
            .map_err(|_| RecordFault::Truncated { len: bytes.len() })?,
    );
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(RecordFault::ChecksumMismatch { stored, computed });
    }
    let kind = RecordKind::from_tag(bytes[9]).ok_or(RecordFault::UnknownKind { tag: bytes[9] })?;
    Ok((kind, &bytes[HEADER..HEADER + payload_len]))
}

/// The crash-safe store. See the module docs for the format and recovery
/// guarantees. All methods take `&self`; concurrent writers of the *same*
/// record name serialize through the atomic rename (last writer wins, and
/// readers always see one complete record or the other — never a blend).
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    integrity: std::sync::Mutex<StoreIntegrity>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store at `dir`, runs recovery, and
    /// reports what it found. Corrupt records are quarantined — renamed to
    /// `<name>.quarantined` — so a later `get` of that name misses cleanly
    /// and the caller recompiles.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(Self, RecoveryReport), StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut report = RecoveryReport::default();
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort(); // deterministic recovery order
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // Orphan from an interrupted write: the rename never
                // happened, so the real record (if any) is still intact.
                fs::remove_file(&path)?;
                report.swept_temp_files += 1;
                continue;
            }
            let Some(stem) = name.strip_suffix(&format!(".{RECORD_EXT}")) else {
                continue;
            };
            let bytes = fs::read(&path)?;
            match unframe_record(&bytes).and_then(|(kind, payload)| {
                decode_payload_checked(kind, payload).map(|_| ())
            }) {
                Ok(()) => report.intact.push(stem.to_string()),
                Err(fault) => {
                    let target = path.with_extension(QUARANTINE_EXT);
                    fs::rename(&path, &target)?;
                    report.quarantined.push(QuarantinedRecord {
                        name: stem.to_string(),
                        fault,
                        quarantined_to: target,
                    });
                }
            }
        }
        let integrity = StoreIntegrity {
            intact_records: report.intact.len(),
            quarantined_records: report.quarantined.len(),
        };
        Ok((ArtifactStore { dir, integrity: std::sync::Mutex::new(integrity) }, report))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current integrity counters.
    pub fn integrity(&self) -> StoreIntegrity {
        self.integrity.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn record_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{RECORD_EXT}"))
    }

    /// Atomically writes a framed record: temp file in the same directory,
    /// flush + fsync, rename over the target.
    fn write_record(&self, name: &str, kind: RecordKind, payload: &[u8]) -> Result<(), StoreError> {
        let framed = frame_record(kind, payload);
        let target = self.record_path(name);
        let tmp = self.dir.join(format!("{name}.{RECORD_EXT}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            f.flush()?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, &target) {
            Ok(()) => {}
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(StoreError::Io(e));
            }
        }
        let mut g = self.integrity.lock().unwrap_or_else(|p| p.into_inner());
        g.intact_records += 1; // over-counts rewrites; refreshed on next open
        Ok(())
    }

    /// Reads and verifies a record. `Ok(None)` = no such record (including
    /// one quarantined earlier); a record that fails verification *now* is
    /// quarantined on the spot and reported as [`StoreError::Corrupt`].
    fn read_record(&self, name: &str, want: RecordKind) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.record_path(name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        match unframe_record(&bytes) {
            Ok((kind, payload)) if kind == want => Ok(Some(payload.to_vec())),
            Ok((kind, _)) => {
                self.quarantine(&path, name)?;
                Err(StoreError::Corrupt {
                    name: name.to_string(),
                    fault: RecordFault::UnknownKind { tag: kind.tag() },
                })
            }
            Err(fault) => {
                self.quarantine(&path, name)?;
                Err(StoreError::Corrupt { name: name.to_string(), fault })
            }
        }
    }

    fn quarantine(&self, path: &Path, _name: &str) -> Result<(), StoreError> {
        let target = path.with_extension(QUARANTINE_EXT);
        fs::rename(path, &target)?;
        let mut g = self.integrity.lock().unwrap_or_else(|p| p.into_inner());
        g.quarantined_records += 1;
        g.intact_records = g.intact_records.saturating_sub(1);
        Ok(())
    }

    /// Persists an artifact under `name`.
    pub fn put_artifact(&self, name: &str, artifact: &StoredArtifact) -> Result<(), StoreError> {
        self.write_record(name, RecordKind::Artifact, &encode_artifact_payload(artifact))
    }

    /// Loads and verifies an artifact. `Ok(None)` = absent or previously
    /// quarantined; corrupt-right-now records are quarantined and reported.
    pub fn get_artifact(&self, name: &str) -> Result<Option<StoredArtifact>, StoreError> {
        let Some(payload) = self.read_record(name, RecordKind::Artifact)? else {
            return Ok(None);
        };
        match decode_artifact_payload(&payload) {
            Ok(a) => Ok(Some(a)),
            Err(e) => {
                // Checksum passed but decode failed: quarantine anyway.
                let path = self.record_path(name);
                if path.exists() {
                    self.quarantine(&path, name)?;
                }
                Err(StoreError::Corrupt {
                    name: name.to_string(),
                    fault: RecordFault::Undecodable(e),
                })
            }
        }
    }

    /// Persists key-bundle metadata under `name`.
    pub fn put_key_bundle(&self, name: &str, bundle: &KeyBundleRecord) -> Result<(), StoreError> {
        self.write_record(name, RecordKind::KeyBundle, &encode_key_bundle_payload(bundle))
    }

    /// Loads and verifies key-bundle metadata.
    pub fn get_key_bundle(&self, name: &str) -> Result<Option<KeyBundleRecord>, StoreError> {
        let Some(payload) = self.read_record(name, RecordKind::KeyBundle)? else {
            return Ok(None);
        };
        match decode_key_bundle_payload(&payload) {
            Ok(k) => Ok(Some(k)),
            Err(e) => {
                let path = self.record_path(name);
                if path.exists() {
                    self.quarantine(&path, name)?;
                }
                Err(StoreError::Corrupt {
                    name: name.to_string(),
                    fault: RecordFault::Undecodable(e),
                })
            }
        }
    }

    /// Builds the key-bundle record matching a compiled artifact.
    pub fn key_bundle_for(compiled: &CompiledCircuit, seed: u64) -> KeyBundleRecord {
        KeyBundleRecord {
            params_fingerprint: params_fingerprint(&compiled.params),
            seed,
            rotation_steps: compiled.outcome.rotations.clone(),
        }
    }
}

/// Advisory lock file name inside a store directory.
pub const LOCK_FILE: &str = "store.lock";

/// Why [`StoreLock::acquire`] could not take the lock.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// The holder's PID, as recorded in the lock file.
        holder_pid: u32,
    },
    /// Filesystem error while probing or creating the lock file.
    Io(io::Error),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { holder_pid } => {
                write!(f, "store directory locked by live process {holder_pid}")
            }
            LockError::Io(e) => write!(f, "store lock I/O error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Monotonic per-process token distinguishing successive locks taken by
/// the same PID (a supervised in-process restart must not let the *old*
/// service's `Drop` delete the *new* service's lock file).
static LOCK_TOKEN: AtomicU64 = AtomicU64::new(1);

/// An advisory single-opener lock on a store directory.
///
/// Two processes concurrently appending to the same `journal.wal` (or
/// racing artifact rewrites) would interleave records and corrupt the
/// durable state the journal exists to protect — so the *second* opener
/// must fail loudly at startup, not scribble quietly. The lock is a
/// `store.lock` file created with `create_new` (atomic on every platform
/// this repo targets) holding `pid:token`.
///
/// Crash recovery matters more than strictness here: a process killed by
/// the crash harness leaves its lock file behind, and the restarted
/// process *must* get through. On Linux the holder's liveness is checked
/// via `/proc/<pid>`; a dead holder's lock is stolen. A live holder (or
/// an unverifiable one on non-Linux hosts) yields [`LockError::Held`].
///
/// Dropping the lock releases it — but only if the file still carries
/// this lock's own token, so a stale `Drop` never releases a successor.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
    token: String,
}

impl StoreLock {
    /// Takes the advisory lock on `dir`, stealing it from a dead holder.
    pub fn acquire(dir: &Path) -> Result<StoreLock, LockError> {
        fs::create_dir_all(dir).map_err(LockError::Io)?;
        let path = dir.join(LOCK_FILE);
        let token = format!(
            "{}:{}",
            std::process::id(),
            LOCK_TOKEN.fetch_add(1, Ordering::Relaxed)
        );
        // Bounded steal attempts: each loop either creates the file, sees
        // a live holder, or removes a stale file and retries.
        for _ in 0..16 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    f.write_all(token.as_bytes()).map_err(LockError::Io)?;
                    f.sync_all().map_err(LockError::Io)?;
                    return Ok(StoreLock { path, token });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let contents = fs::read_to_string(&path).unwrap_or_default();
                    let holder_pid =
                        contents.split(':').next().and_then(|s| s.trim().parse::<u32>().ok());
                    match holder_pid {
                        Some(pid) if pid != std::process::id() && pid_alive(pid) => {
                            return Err(LockError::Held { holder_pid: pid });
                        }
                        Some(pid) if pid == std::process::id() && contents != token => {
                            // Another *live* lock in this very process —
                            // e.g. two services pointed at one store_dir.
                            return Err(LockError::Held { holder_pid: pid });
                        }
                        _ => {
                            // Dead holder or unreadable file: stale, steal.
                            match fs::remove_file(&path) {
                                Ok(()) => {}
                                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                                Err(e) => return Err(LockError::Io(e)),
                            }
                        }
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Io(io::Error::new(
            io::ErrorKind::WouldBlock,
            "store lock contended: steal retries exhausted",
        )))
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only if the file is still ours: a successor that stole
        // the lock (same-PID restart) must keep its file.
        if fs::read_to_string(&self.path).map(|c| c == self.token).unwrap_or(false) {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Best-effort liveness probe for a PID.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        // No portable probe without libc: assume alive (strict, safe).
        true
    }
}

fn decode_payload_checked(kind: RecordKind, payload: &[u8]) -> Result<(), RecordFault> {
    match kind {
        RecordKind::Artifact => {
            decode_artifact_payload(payload).map(|_| ()).map_err(RecordFault::Undecodable)
        }
        RecordKind::KeyBundle => {
            decode_key_bundle_payload(payload).map(|_| ()).map_err(RecordFault::Undecodable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_hisa::params::SchemeKind;
    use chet_runtime::kernels::ScaleConfig;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;
    use chet_tensor::Tensor;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("chet-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn artifact() -> StoredArtifact {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 6, 6]);
        let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
        let c = b.conv2d(x, w, None, 1, Padding::Valid);
        let g = b.global_avg_pool(c);
        let circuit = b.build(g);
        let scales = ScaleConfig::from_log2(25, 12, 12, 10);
        let (compiled, report) = chet_compiler::Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(2f64.powi(20))
            .compile_checked(&circuit, &scales)
            .expect("compiles");
        StoredArtifact {
            version: 3,
            compiled,
            scales: report.final_scales,
            extra_margin: report.extra_levels,
        }
    }

    #[test]
    fn artifact_and_key_bundle_roundtrip() {
        let dir = tmpdir("roundtrip");
        let (store, rec) = ArtifactStore::open(&dir).unwrap();
        assert!(rec.intact.is_empty() && rec.quarantined.is_empty());
        let a = artifact();
        store.put_artifact("lenet", &a).unwrap();
        let bundle = ArtifactStore::key_bundle_for(&a.compiled, 0x5EED);
        store.put_key_bundle("lenet-keys", &bundle).unwrap();

        let back = store.get_artifact("lenet").unwrap().expect("present");
        assert_eq!(back.version, 3);
        assert_eq!(back.compiled.params, a.compiled.params);
        assert_eq!(back.extra_margin, a.extra_margin);
        assert_eq!(store.get_key_bundle("lenet-keys").unwrap(), Some(bundle));
        assert!(store.get_artifact("absent").unwrap().is_none());

        // Reopen: both records verify.
        drop(store);
        let (_store, rec) = ArtifactStore::open(&dir).unwrap();
        assert_eq!(rec.intact.len(), 2);
        assert!(rec.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_is_quarantined_on_open() {
        let dir = tmpdir("truncate");
        let (store, _) = ArtifactStore::open(&dir).unwrap();
        store.put_artifact("a", &artifact()).unwrap();
        let path = store.record_path("a");
        let full = fs::read(&path).unwrap();
        drop(store);

        // A sample of truncation points, including 0 and just-off-the-end.
        for cut in [0usize, 1, 7, 8, 9, 13, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            let (store, rec) = ArtifactStore::open(&dir).unwrap();
            assert_eq!(rec.quarantined.len(), 1, "cut at {cut} must quarantine");
            assert!(store.get_artifact("a").unwrap().is_none(), "cut at {cut}");
            assert_eq!(store.integrity().quarantined_records, 1);
            drop(store);
            // Restore for the next iteration.
            let _ = fs::remove_file(path.with_extension(QUARANTINE_EXT));
            fs::write(&path, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_anywhere_is_detected_at_read_time() {
        let dir = tmpdir("bitflip");
        let (store, _) = ArtifactStore::open(&dir).unwrap();
        store.put_artifact("a", &artifact()).unwrap();
        let path = store.record_path("a");
        let full = fs::read(&path).unwrap();
        for i in (0..full.len()).step_by(17) {
            let mut bad = full.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            match store.get_artifact("a") {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at {i}: expected Corrupt, got {other:?}"),
            }
            // get_artifact quarantined it; restore for the next flip.
            let _ = fs::remove_file(path.with_extension(QUARANTINE_EXT));
            fs::write(&path, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_temp_files_are_swept_not_trusted() {
        let dir = tmpdir("orphan");
        let (store, _) = ArtifactStore::open(&dir).unwrap();
        store.put_artifact("a", &artifact()).unwrap();
        // Simulate a crash mid-write: a temp file with garbage.
        fs::write(dir.join("a.rec.tmp"), b"partial garbage").unwrap();
        drop(store);
        let (store, rec) = ArtifactStore::open(&dir).unwrap();
        assert_eq!(rec.swept_temp_files, 1);
        assert_eq!(rec.intact, vec!["a".to_string()]);
        assert!(store.get_artifact("a").unwrap().is_some());
        assert!(!dir.join("a.rec.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_bundle_binds_to_params_fingerprint() {
        let a = artifact();
        let bundle = ArtifactStore::key_bundle_for(&a.compiled, 7);
        assert_eq!(bundle.params_fingerprint, params_fingerprint(&a.compiled.params));
        assert_eq!(bundle.rotation_steps, a.compiled.outcome.rotations);
    }

    #[test]
    fn store_lock_excludes_second_opener_and_steals_stale() {
        let dir = tmpdir("lock");
        fs::create_dir_all(&dir).unwrap();
        let lock = StoreLock::acquire(&dir).unwrap();
        // Second acquisition in the same (live) process is refused.
        match StoreLock::acquire(&dir) {
            Err(LockError::Held { holder_pid }) => {
                assert_eq!(holder_pid, std::process::id());
            }
            other => panic!("expected Held, got {other:?}"),
        }
        drop(lock);
        // Released: can be re-acquired.
        let lock = StoreLock::acquire(&dir).unwrap();
        drop(lock);
        // A dead holder's lock is stolen (PID 0 never names a live
        // process a user can own).
        fs::write(dir.join(LOCK_FILE), "0:1").unwrap();
        let lock = StoreLock::acquire(&dir).unwrap();
        drop(lock);
        // An unreadable lock file is treated as stale too.
        fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_drop_does_not_release_a_successor_lock() {
        let dir = tmpdir("lock-succ");
        fs::create_dir_all(&dir).unwrap();
        let first = StoreLock::acquire(&dir).unwrap();
        // Simulate the crash-harness path: the file survives but the
        // holder is "dead" — forge a dead PID so a successor steals it.
        fs::write(dir.join(LOCK_FILE), "0:9").unwrap();
        let second = StoreLock::acquire(&dir).unwrap();
        // The first lock's Drop must not delete the second's file.
        drop(first);
        assert!(dir.join(LOCK_FILE).exists());
        drop(second);
        assert!(!dir.join(LOCK_FILE).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_kind_under_expected_name_is_corrupt() {
        let dir = tmpdir("kind");
        let (store, _) = ArtifactStore::open(&dir).unwrap();
        store
            .put_key_bundle(
                "a",
                &KeyBundleRecord {
                    params_fingerprint: 1,
                    seed: 2,
                    rotation_steps: BTreeSet::new(),
                },
            )
            .unwrap();
        assert!(matches!(store.get_artifact("a"), Err(StoreError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
