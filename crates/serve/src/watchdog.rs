//! Worker watchdog: detects requests stuck past their deadline even when
//! the cooperative [`CancelToken`] checks never fire.
//!
//! The executor checks its token *between* tensor ops, so a single op that
//! wedges — a hung FFI call, a pathological allocation, the chaos
//! harness's uncancellable stall — is invisible to cooperative
//! cancellation. The watchdog is the non-cooperative backstop: each worker
//! publishes what it is doing into a shared [`WorkerSlot`] (job id, start
//! time, deadline, a heartbeat bumped per executed op), and a monitor
//! thread walks the slots on a fixed tick, escalating stuck workers up a
//! ladder:
//!
//! 1. **Cancel** — the job ran past its deadline plus [`WatchdogConfig::grace`],
//!    or its heartbeat has not moved for [`WatchdogConfig::stall_timeout`]:
//!    trip the request token (in case the worker *can* still observe it),
//!    count an escalation, and charge the breaker — a wedging backend is a
//!    failing backend.
//! 2. **Quarantine + respawn** — the worker is *still* on the same job
//!    [`WatchdogConfig::quarantine_after`] later: mark its slot
//!    quarantined and spawn a replacement worker so pool capacity
//!    recovers. The stuck thread is never killed (Rust has no safe thread
//!    kill); when its op finally returns it sends its reply — so the
//!    caller still gets a typed resolution, never silence — sees the
//!    quarantine flag, and exits.
//!
//! Escalation state is per-job: a worker that comes back healthy resets
//! its ladder. Respawns are capped ([`WatchdogConfig::max_respawns`]) so a
//! fault that wedges every worker cannot fork-bomb the host.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chet_runtime::cancel::CancelToken;

/// Watchdog tuning. Defaults are generous — FHE ops are slow, and a false
/// escalation cancels a legitimate request — but bounded.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Master switch; `false` runs no monitor thread.
    pub enabled: bool,
    /// Monitor wake-up period.
    pub tick: Duration,
    /// Slack past a request's deadline before step 1 fires. (Cooperative
    /// cancellation normally resolves the request well within this.)
    pub grace: Duration,
    /// A busy worker whose heartbeat (ops executed) has not moved for this
    /// long is considered wedged even without a deadline.
    pub stall_timeout: Duration,
    /// Time after step 1 before the worker is quarantined and replaced.
    pub quarantine_after: Duration,
    /// Lifetime cap on respawned workers.
    pub max_respawns: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            tick: Duration::from_millis(10),
            grace: Duration::from_millis(50),
            stall_timeout: Duration::from_secs(10),
            quarantine_after: Duration::from_millis(200),
            max_respawns: 16,
        }
    }
}

/// Escalation ladder position for the current job (resets per job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escalation {
    /// Nothing wrong observed.
    None,
    /// Step 1 fired: token cancelled, breaker charged.
    Cancelled,
    /// Step 2 fired: worker quarantined, replacement spawned.
    Quarantined,
    /// Final rung: a worker stayed wedged *after* the respawn budget was
    /// exhausted. The watchdog cannot recover pool capacity any more, so
    /// instead of giving up silently it quarantines the worker and raises
    /// a supervised-restart request — the service flags
    /// [`restart_requested`](crate::health::HealthReport::restart_requested)
    /// and a supervisor recycles the process through
    /// [`InferenceService::restart_from_journal`](crate::InferenceService::restart_from_journal),
    /// which replays every unresolved request from the durable journal.
    RestartRequested,
}

/// What one worker published about its current job.
#[derive(Debug, Clone)]
struct BusyJob {
    job_id: u64,
    since: Instant,
    deadline: Option<Instant>,
    token: CancelToken,
}

/// Shared per-worker state: the worker writes, the watchdog (and health
/// reporting) reads. The busy record sits behind a tiny mutex — it changes
/// twice per request — while the heartbeat is a lone atomic the executor
/// observer bumps per op.
#[derive(Debug)]
pub struct WorkerSlot {
    worker_id: usize,
    busy: Mutex<Option<BusyJob>>,
    heartbeat: AtomicU64,
    quarantined: AtomicBool,
    /// Escalation ladder for the *current* job, encoded 0/1/2/3.
    escalation: AtomicU64,
}

impl WorkerSlot {
    pub(crate) fn new(worker_id: usize) -> Arc<Self> {
        Arc::new(WorkerSlot {
            worker_id,
            busy: Mutex::new(None),
            heartbeat: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            escalation: AtomicU64::new(0),
        })
    }

    /// The worker's pool index (respawned workers get fresh indices).
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Worker-side: publish the job this worker just picked up.
    pub(crate) fn begin(&self, job_id: u64, token: &CancelToken) {
        let mut g = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        *g = Some(BusyJob {
            job_id,
            since: Instant::now(),
            deadline: token.deadline(),
            token: token.clone(),
        });
        self.escalation.store(0, Ordering::Release);
    }

    /// Worker-side: the job resolved (reply sent); the slot goes idle and
    /// the escalation ladder resets.
    pub(crate) fn finish(&self) {
        let mut g = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        *g = None;
        self.escalation.store(0, Ordering::Release);
    }

    /// Executor-observer side: one op executed.
    pub(crate) fn beat(&self) {
        self.heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the watchdog has quarantined this worker. The worker polls
    /// this between jobs and exits when set.
    pub(crate) fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Current escalation position.
    pub fn escalation(&self) -> Escalation {
        match self.escalation.load(Ordering::Acquire) {
            0 => Escalation::None,
            1 => Escalation::Cancelled,
            2 => Escalation::Quarantined,
            _ => Escalation::RestartRequested,
        }
    }

    /// Health-reporting view: `(job id, busy-for)` when busy.
    pub(crate) fn busy_view(&self) -> Option<(u64, Duration)> {
        let g = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        g.as_ref().map(|b| (b.job_id, b.since.elapsed()))
    }
}

/// One watchdog intervention, kept for stats/assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogEvent {
    /// Which worker.
    pub worker_id: usize,
    /// Which job it was stuck on.
    pub job_id: u64,
    /// What the watchdog did.
    pub action: Escalation,
    /// Why ("deadline exceeded", "heartbeat stalled").
    pub reason: &'static str,
}

/// Callbacks the watchdog drives — wired to the service's breaker,
/// counters and worker-spawner without this module depending on them.
pub(crate) struct WatchdogHooks {
    /// Step-1 side effects (count the escalation, charge the breaker).
    pub on_escalate: Box<dyn Fn(&WatchdogEvent) + Send>,
    /// Spawn a replacement worker with the given fresh id, returning its
    /// handle and slot for registration.
    pub respawn: Box<dyn Fn(usize) -> (JoinHandle<()>, Arc<WorkerSlot>) + Send>,
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// The monitor. Owns the slot registry; the service registers initial
/// workers and the watchdog registers its own respawns.
pub(crate) struct Watchdog {
    slots: Arc<Mutex<Vec<Arc<WorkerSlot>>>>,
    shared: Arc<Shared>,
    monitor: Option<JoinHandle<()>>,
    events: Arc<Mutex<Vec<WatchdogEvent>>>,
}

/// Per-slot tracking local to the monitor thread.
#[derive(Clone, Copy)]
struct Track {
    job_id: u64,
    last_beat: u64,
    beat_seen_at: Instant,
    cancelled_at: Option<Instant>,
}

impl Watchdog {
    /// Starts the monitor (a no-op shell when `config.enabled` is false).
    pub(crate) fn start(
        config: WatchdogConfig,
        slots: Arc<Mutex<Vec<Arc<WorkerSlot>>>>,
        workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
        next_worker_id: Arc<AtomicUsize>,
        hooks: WatchdogHooks,
    ) -> Self {
        let shared = Arc::new(Shared { stop: Mutex::new(false), wake: Condvar::new() });
        let events = Arc::new(Mutex::new(Vec::new()));
        let respawned = Arc::new(AtomicUsize::new(0));
        let monitor = if config.enabled {
            let cfg = config.clone();
            let slots2 = Arc::clone(&slots);
            let shared2 = Arc::clone(&shared);
            let events2 = Arc::clone(&events);
            let respawned2 = Arc::clone(&respawned);
            Some(std::thread::spawn(move || {
                monitor_loop(&cfg, &slots2, &workers, &next_worker_id, &hooks, &shared2, &events2, &respawned2);
            }))
        } else {
            None
        };
        Watchdog { slots, shared, monitor, events }
    }

    /// Interventions so far.
    pub(crate) fn events(&self) -> Vec<WatchdogEvent> {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The slot registry (for health reporting).
    pub(crate) fn slots(&self) -> Vec<Arc<WorkerSlot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Stops and joins the monitor thread.
    pub(crate) fn stop(&mut self) {
        {
            let mut g = self.shared.stop.lock().unwrap_or_else(|p| p.into_inner());
            *g = true;
        }
        self.shared.wake.notify_all();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)] // internal plumbing, called once
fn monitor_loop(
    cfg: &WatchdogConfig,
    slots: &Mutex<Vec<Arc<WorkerSlot>>>,
    workers: &Mutex<Vec<JoinHandle<()>>>,
    next_worker_id: &AtomicUsize,
    hooks: &WatchdogHooks,
    shared: &Shared,
    events: &Mutex<Vec<WatchdogEvent>>,
    respawned: &AtomicUsize,
) {
    use std::collections::HashMap;
    let mut tracks: HashMap<usize, Track> = HashMap::new();
    loop {
        {
            let g = shared.stop.lock().unwrap_or_else(|p| p.into_inner());
            if *g {
                return;
            }
            let (g, _) = shared
                .wake
                .wait_timeout(g, cfg.tick)
                .unwrap_or_else(|p| p.into_inner());
            if *g {
                return;
            }
        }
        let snapshot = slots.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let now = Instant::now();
        for (idx, slot) in snapshot.iter().enumerate() {
            if slot.is_quarantined() {
                continue;
            }
            let busy = {
                let g = slot.busy.lock().unwrap_or_else(|p| p.into_inner());
                g.clone()
            };
            let Some(job) = busy else {
                tracks.remove(&idx);
                continue;
            };
            let beat = slot.heartbeat.load(Ordering::Relaxed);
            let track = tracks.entry(idx).or_insert(Track {
                job_id: job.job_id,
                last_beat: beat,
                beat_seen_at: now,
                cancelled_at: None,
            });
            if track.job_id != job.job_id {
                // New job since last tick: restart tracking.
                *track = Track { job_id: job.job_id, last_beat: beat, beat_seen_at: now, cancelled_at: None };
            } else if beat != track.last_beat {
                track.last_beat = beat;
                track.beat_seen_at = now;
            }

            let past_deadline = job
                .deadline
                .is_some_and(|d| now >= d + cfg.grace);
            let stalled = now.duration_since(track.beat_seen_at) >= cfg.stall_timeout;

            match slot.escalation() {
                Escalation::None if past_deadline || stalled => {
                    job.token.cancel();
                    slot.escalation.store(1, Ordering::Release);
                    track.cancelled_at = Some(now);
                    let ev = WatchdogEvent {
                        worker_id: slot.worker_id,
                        job_id: job.job_id,
                        action: Escalation::Cancelled,
                        reason: if past_deadline { "deadline exceeded" } else { "heartbeat stalled" },
                    };
                    (hooks.on_escalate)(&ev);
                    events.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
                }
                Escalation::Cancelled => {
                    let overdue = track
                        .cancelled_at
                        .is_some_and(|t| now.duration_since(t) >= cfg.quarantine_after);
                    if overdue && respawned.load(Ordering::Relaxed) < cfg.max_respawns {
                        slot.quarantined.store(true, Ordering::Release);
                        slot.escalation.store(2, Ordering::Release);
                        let new_id = next_worker_id.fetch_add(1, Ordering::Relaxed);
                        let (handle, new_slot) = (hooks.respawn)(new_id);
                        slots.lock().unwrap_or_else(|p| p.into_inner()).push(new_slot);
                        workers.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
                        respawned.fetch_add(1, Ordering::Relaxed);
                        let ev = WatchdogEvent {
                            worker_id: slot.worker_id,
                            job_id: job.job_id,
                            action: Escalation::Quarantined,
                            reason: "still wedged after cancellation",
                        };
                        (hooks.on_escalate)(&ev);
                        events.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
                        tracks.remove(&idx);
                    } else if overdue {
                        // Final rung: the respawn budget is spent, so the
                        // pool cannot be repaired in-process. Quarantine
                        // the worker anyway (its thread exits when the op
                        // returns) and escalate to a supervised restart —
                        // the journal makes that safe: every unresolved
                        // request replays from durable state.
                        slot.quarantined.store(true, Ordering::Release);
                        slot.escalation.store(3, Ordering::Release);
                        let ev = WatchdogEvent {
                            worker_id: slot.worker_id,
                            job_id: job.job_id,
                            action: Escalation::RestartRequested,
                            reason: "respawn budget exhausted",
                        };
                        (hooks.on_escalate)(&ev);
                        events.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
                        tracks.remove(&idx);
                    }
                }
                _ => {}
            }
        }
    }
}
