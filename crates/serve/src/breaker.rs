//! A three-state circuit breaker guarding the primary FHE backend.
//!
//! FHE backends fail in bursts: a stale rotation-key bundle or an
//! exhausted modulus chain makes *every* request fail until the artifact
//! is repaired, and each failed attempt still burns ciphertext compute.
//! The breaker cuts that waste: after `failure_threshold` consecutive
//! backend failures it **opens**, and routed requests degrade to the
//! plaintext simulator instead of hammering the broken backend. After
//! `open_requests` degraded routes it moves to **half-open** and lets a
//! single probe request through; `half_open_successes` successful probes
//! close it again, one failed probe re-opens it.
//!
//! Cooldown is counted in *requests routed*, not wall-clock seconds, so
//! breaker trajectories are deterministic under test and independent of
//! machine speed.

use std::fmt;
use std::sync::Mutex;

/// Breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests go to the primary backend.
    Closed,
    /// Tripped: requests degrade to the fallback until the cooldown
    /// (counted in routed requests) elapses.
    Open,
    /// Probing: one request at a time tries the primary; the rest degrade.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive primary failures that trip the breaker.
    pub failure_threshold: usize,
    /// Requests routed degraded while [`BreakerState::Open`] before the
    /// breaker half-opens for a probe.
    pub open_requests: usize,
    /// Successful probes needed to close a half-open breaker.
    pub half_open_successes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, open_requests: 2, half_open_successes: 1 }
    }
}

/// One recorded state change, for stats and deterministic assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// State before the change.
    pub from: BreakerState,
    /// State after the change.
    pub to: BreakerState,
    /// Human-readable cause ("3 consecutive failures", "probe succeeded").
    pub reason: String,
}

/// Routing decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Run on the primary backend.
    Primary,
    /// Run on the primary backend as a half-open probe; report the outcome
    /// with `probe = true`.
    Probe,
    /// Skip the primary; run degraded on the fallback.
    Degraded,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: usize,
    open_routed: usize,
    probe_in_flight: bool,
    probe_successes: usize,
    transitions: Vec<BreakerTransition>,
}

impl Inner {
    fn transition(&mut self, to: BreakerState, reason: impl Into<String>) {
        let from = self.state;
        self.state = to;
        self.transitions.push(BreakerTransition { from, to, reason: reason.into() });
    }
}

/// Point-in-time view of the breaker, exposed through service stats.
#[derive(Debug, Clone)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive primary failures observed in the current closed phase.
    pub consecutive_failures: usize,
    /// Full transition history since construction.
    pub transitions: Vec<BreakerTransition>,
}

/// Thread-safe three-state circuit breaker. See the module docs.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_routed: 0,
                probe_in_flight: false,
                probe_successes: 0,
                transitions: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned breaker lock means a worker panicked mid-update; the
        // counters are still sound (every update is a single assignment),
        // so recover rather than wedge the service.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Routes one request, advancing the open-cooldown / probe machinery.
    pub fn route(&self) -> Route {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => Route::Primary,
            BreakerState::Open => {
                if g.open_routed >= self.config.open_requests {
                    g.transition(BreakerState::HalfOpen, "cooldown elapsed; probing");
                    g.probe_in_flight = true;
                    g.probe_successes = 0;
                    Route::Probe
                } else {
                    g.open_routed += 1;
                    Route::Degraded
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight {
                    Route::Degraded
                } else {
                    g.probe_in_flight = true;
                    Route::Probe
                }
            }
        }
    }

    /// Records a successful primary attempt (`probe` if it was routed as
    /// [`Route::Probe`]).
    pub fn record_success(&self, probe: bool) {
        let mut g = self.lock();
        g.consecutive_failures = 0;
        if probe && g.state == BreakerState::HalfOpen {
            g.probe_in_flight = false;
            g.probe_successes += 1;
            if g.probe_successes >= self.config.half_open_successes.max(1) {
                g.transition(BreakerState::Closed, "probe succeeded");
                g.open_routed = 0;
                g.probe_successes = 0;
            }
        }
    }

    /// Records a failed primary attempt.
    pub fn record_failure(&self, probe: bool) {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.config.failure_threshold.max(1) {
                    let n = g.consecutive_failures;
                    g.transition(BreakerState::Open, format!("{n} consecutive failures"));
                    g.open_routed = 0;
                }
            }
            BreakerState::HalfOpen => {
                if probe {
                    g.probe_in_flight = false;
                }
                g.transition(BreakerState::Open, "probe failed");
                g.open_routed = 0;
                g.probe_successes = 0;
            }
            BreakerState::Open => {
                // A non-probe failure while open (e.g. an attempt that was
                // already in flight when the breaker tripped): stay open.
            }
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Point-in-time snapshot for stats.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let g = self.lock();
        BreakerSnapshot {
            state: g.state,
            consecutive_failures: g.consecutive_failures,
            transitions: g.transitions.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_requests: 2,
            half_open_successes: 1,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = breaker();
        b.record_failure(false);
        b.record_failure(false);
        b.record_success(false); // resets the streak
        b.record_failure(false);
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_degrades_then_probes_then_closes() {
        let b = breaker();
        for _ in 0..3 {
            b.record_failure(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown: two degraded routes.
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Degraded);
        // Then a probe; concurrent requests still degrade.
        assert_eq!(b.route(), Route::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.route(), Route::Degraded);
        b.record_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.route(), Route::Primary);
    }

    #[test]
    fn failed_probe_reopens_and_cooldown_restarts() {
        let b = breaker();
        for _ in 0..3 {
            b.record_failure(false);
        }
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Probe);
        b.record_failure(true);
        assert_eq!(b.state(), BreakerState::Open);
        // Fresh cooldown before the next probe.
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Probe);
        b.record_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        let trans: Vec<(BreakerState, BreakerState)> =
            b.snapshot().transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            trans,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }
}
