//! Torn-tail recovery sweep for the request journal.
//!
//! Mirrors `store_recovery.rs`: write a known journal, then truncate the
//! file at *every byte boundary* of the final record and assert that
//! recovery (a) replays exactly the intact prefix, (b) quarantines the
//! torn bytes to `journal.torn` rather than deleting evidence, and
//! (c) truncates the live file so a crash during recovery itself is
//! idempotent.

use chet_serve::{
    FailCode, Journal, JournalConfig, JournalRecord, ReplayReport, JOURNAL_FILE, TORN_FILE,
};
use chet_tensor::Tensor;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chet-jrnl-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> JournalConfig {
    JournalConfig { enabled: true, ..JournalConfig::default() }
}

fn img(seed: u64) -> Tensor {
    Tensor::random(vec![1, 2, 2], 1.0, seed)
}

/// Writes a journal with three fully-resolved requests plus one final
/// Admitted record (the one the sweep will tear), returning the byte
/// offset where that final record starts.
fn seed_journal(dir: &Path) -> u64 {
    let (journal, _) = Journal::open(dir, &config()).unwrap();
    for id in 1..=3u64 {
        journal
            .append(&JournalRecord::Admitted {
                request_id: id,
                idempotency_key: format!("key-{id}"),
                image: img(id),
            })
            .unwrap();
        journal.append(&JournalRecord::Started { request_id: id }).unwrap();
        if id == 3 {
            journal
                .append(&JournalRecord::Failed { request_id: id, code: FailCode::Cancelled })
                .unwrap();
        } else {
            journal
                .append(&JournalRecord::Completed {
                    request_id: id,
                    degraded: false,
                    digest: 0xD1D1 + id,
                    output: img(100 + id),
                })
                .unwrap();
        }
    }
    journal.flush().unwrap();
    let prefix_len = fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
    journal
        .append(&JournalRecord::Admitted {
            request_id: 4,
            idempotency_key: "key-4".to_string(),
            image: img(4),
        })
        .unwrap();
    journal.close().unwrap();
    prefix_len
}

fn open_report(dir: &Path) -> ReplayReport {
    let (_, report) = Journal::open(dir, &config()).unwrap();
    report
}

#[test]
fn torn_final_record_at_every_byte_boundary() {
    let dir = tmp_dir("sweep");
    let prefix_len = seed_journal(&dir);
    let full = fs::read(dir.join(JOURNAL_FILE)).unwrap();
    let total = full.len() as u64;
    assert!(prefix_len < total, "final record should add bytes");

    for cut in prefix_len..total {
        // Rebuild the torn file fresh for each boundary.
        let _ = fs::remove_file(dir.join(TORN_FILE));
        fs::write(dir.join(JOURNAL_FILE), &full[..cut as usize]).unwrap();

        let report = open_report(&dir);
        assert_eq!(report.records, 9, "cut at {cut}: intact prefix must replay fully");
        assert_eq!(report.completed.len(), 2, "cut at {cut}");
        assert_eq!(report.failed, 1, "cut at {cut}");
        assert_eq!(report.double_completions, 0, "cut at {cut}");
        assert_eq!(report.max_request_id, 3, "cut at {cut}: torn admit must not be counted");
        assert!(report.pending.is_empty(), "cut at {cut}: torn admit must not be replayed");

        if cut == prefix_len {
            // Clean truncation exactly at the record boundary: no torn
            // tail to quarantine.
            assert!(report.torn.is_none(), "cut at {cut}: boundary cut is not torn");
        } else {
            let torn = report.torn.as_ref().unwrap_or_else(|| panic!("cut at {cut}: no torn tail"));
            assert_eq!(torn.at_offset, prefix_len, "cut at {cut}");
            assert_eq!(torn.bytes, cut - prefix_len, "cut at {cut}");
            let quarantined = fs::read(dir.join(TORN_FILE)).unwrap();
            assert_eq!(
                quarantined,
                &full[prefix_len as usize..cut as usize],
                "cut at {cut}: quarantine must hold the torn bytes verbatim"
            );
            // The live file was truncated back to the intact prefix, so
            // re-opening (a crash during recovery) is idempotent.
            assert_eq!(
                fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(),
                prefix_len,
                "cut at {cut}"
            );
            let again = open_report(&dir);
            assert_eq!(again.records, 9, "cut at {cut}: second recovery must agree");
            assert!(again.torn.is_none(), "cut at {cut}: second recovery sees a clean file");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_byte_inside_final_record_is_quarantined() {
    let dir = tmp_dir("flip");
    let prefix_len = seed_journal(&dir);
    let full = fs::read(dir.join(JOURNAL_FILE)).unwrap();

    // Flip one payload byte of the final record: framing stays plausible
    // but the checksum must catch it.
    let mut bytes = full.clone();
    let at = prefix_len as usize + 20;
    bytes[at] ^= 0x5A;
    fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

    let report = open_report(&dir);
    assert_eq!(report.records, 9);
    let torn = report.torn.expect("checksum fault must quarantine the tail");
    assert_eq!(torn.at_offset, prefix_len);
    assert_eq!(torn.bytes, full.len() as u64 - prefix_len);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovered_journal_accepts_new_appends_after_quarantine() {
    let dir = tmp_dir("resume");
    let prefix_len = seed_journal(&dir);
    let full = fs::read(dir.join(JOURNAL_FILE)).unwrap();
    // Tear mid-record, then recover and keep writing.
    fs::write(dir.join(JOURNAL_FILE), &full[..prefix_len as usize + 7]).unwrap();

    let (journal, report) = Journal::open(&dir, &config()).unwrap();
    assert!(report.torn.is_some());
    journal
        .append_durable(&JournalRecord::Admitted {
            request_id: report.max_request_id + 1,
            idempotency_key: "key-after-tear".to_string(),
            image: img(9),
        })
        .unwrap();
    journal.close().unwrap();

    let report = open_report(&dir);
    assert_eq!(report.records, 10, "post-recovery append must land after the intact prefix");
    assert_eq!(report.pending.len(), 1);
    assert_eq!(report.pending[0].idempotency_key, "key-after-tear");
    let _ = fs::remove_dir_all(&dir);
}
