//! Kill-and-restart acceptance tests, driven through the `chet-crash`
//! harness binary (see `src/bin/chet-crash.rs`).
//!
//! Each scenario spawns real child serving processes that die via
//! `std::process::abort()` at a seeded crash point, restarts them, and
//! audits the on-disk journal: zero lost acknowledged requests, zero
//! double executions, no pending leftovers. The harness exits nonzero
//! (and these tests fail) if any contract is violated.
//!
//! `ci.sh` additionally runs the full crash matrix across two seeds and
//! `CHET_THREADS=1/4`, diffing the scenario digests; here we keep the
//! in-tree suite cheap with one seed and a smaller request count.

use std::process::Command;

const SEED: &str = "47";

/// Runs one parent-mode scenario and returns its `digest=` line.
fn run_scenario(point: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_chet-crash"))
        .args(["--point", point, "--seed", SEED, "--requests", "12"])
        .output()
        .expect("spawn chet-crash");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        out.status.success(),
        "crash scenario '{point}' failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest="))
        .unwrap_or_else(|| panic!("no digest= line from scenario '{point}':\n{stdout}"))
        .to_string()
}

#[test]
fn before_fsync_crash_recovers_with_no_lost_acks() {
    run_scenario("before-fsync");
}

#[test]
fn after_fsync_crash_recovers_with_no_lost_acks() {
    run_scenario("after-fsync");
}

#[test]
fn mid_replay_crash_recovers_with_no_lost_acks() {
    run_scenario("mid-replay");
}

/// The scenario digest is a pure function of the seed and request set:
/// every crash point — and the crash-free baseline — must converge to
/// the same completed (key, digest) ledger.
#[test]
fn all_crash_points_converge_to_the_same_ledger() {
    let baseline = run_scenario("none");
    assert_eq!(run_scenario("before-fsync"), baseline);
    assert_eq!(run_scenario("after-fsync"), baseline);
}
