//! Cross-request batch coalescing acceptance tests.
//!
//! The contract under test, end to end through the service:
//!
//! * a coalesced batch returns, member for member, the **bit-identical**
//!   outputs a solo (unbatched) service produces for the same images;
//! * one member cancelling or blowing its deadline mid-window resolves
//!   that member as `Cancelled` without failing its cohort;
//! * idempotency digests are stable across the batched and solo paths,
//!   including after a journal restart (`restart_from_journal`);
//! * malformed (wrong-shape) requests are refused at admission with the
//!   structured, non-retryable [`ServeError::InvalidRequest`] — they
//!   never occupy the queue or charge the breaker.

use chet_ckks::sim::SimCkks;
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_runtime::cancel::{CancelReason, CancelToken};
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{
    response_digest, InferenceService, JournalConfig, ServeConfig, ServeError, Submission,
};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn small_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

fn scales() -> ScaleConfig {
    ScaleConfig::from_log2(25, 12, 12, 10)
}

fn compiler() -> Compiler {
    Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20))
}

fn image(seed: u64) -> Tensor {
    Tensor::random(vec![1, 6, 6], 1.0, seed)
}

/// Deterministic simulator factory shared by every service in this file,
/// so outputs are comparable across service instances.
fn sim_factory(
) -> impl Fn(usize, &chet_compiler::CompiledCircuit) -> SimCkks + Send + Sync + 'static {
    |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 42).without_noise()
}

fn batching_config(max_batch: usize, linger: Duration) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch,
        max_linger: linger,
        ..ServeConfig::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chet-batch-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn coalesced_batch_is_bit_identical_to_solo() {
    let images: Vec<Tensor> = (0..4).map(|i| image(100 + i)).collect();

    // Solo reference: batching disabled entirely.
    let solo = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        ServeConfig { workers: 1, ..ServeConfig::default() },
        sim_factory(),
    )
    .unwrap();
    let solo_outputs: Vec<Tensor> = images
        .iter()
        .map(|img| solo.submit(img.clone()).unwrap().wait().unwrap().output)
        .collect();
    solo.shutdown();

    // Batched service: the linger window lets all four coalesce.
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        batching_config(4, Duration::from_millis(300)),
        sim_factory(),
    )
    .unwrap();
    let tickets: Vec<_> = images.iter().map(|img| svc.submit(img.clone()).unwrap()).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    for (resp, want) in responses.iter().zip(&solo_outputs) {
        assert!(!resp.degraded);
        assert_eq!(resp.output.shape(), want.shape());
        assert_eq!(resp.output.data(), want.data(), "batched output must be bit-identical");
    }
    let stats = svc.shutdown();
    assert!(stats.batches_formed >= 1, "no batch formed: {stats:?}");
    assert!(stats.batched_requests >= 2);
    assert_eq!(stats.completed_ok, 4);
    assert_eq!(stats.failed, 0);
}

#[test]
fn member_deadline_expiring_in_window_cancels_member_not_cohort() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        // Target 4 with only 2 submissions: the worker lingers the full
        // window, and A's deadline expires inside it.
        batching_config(4, Duration::from_millis(400)),
        sim_factory(),
    )
    .unwrap();
    let a = svc
        .submit_with(image(1), CancelToken::with_deadline(Duration::from_millis(50)))
        .unwrap();
    let b = svc.submit(image(2)).unwrap();
    let ra = a.wait();
    let rb = b.wait();
    assert!(
        matches!(ra, Err(ServeError::Cancelled(CancelReason::DeadlineExceeded))),
        "expired member must cancel, got {ra:?}"
    );
    let rb = rb.expect("cohort member must complete despite the expired member");
    assert!(!rb.degraded);
    let stats = svc.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.batches_formed, 1, "the two requests must have coalesced");
}

#[test]
fn explicit_cancel_of_one_member_leaves_cohort_intact() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        batching_config(4, Duration::from_millis(400)),
        sim_factory(),
    )
    .unwrap();
    let a = svc.submit(image(3)).unwrap();
    let b = svc.submit(image(4)).unwrap();
    a.cancel();
    assert!(
        matches!(a.wait(), Err(ServeError::Cancelled(CancelReason::Cancelled))),
        "cancelled member must resolve Cancelled"
    );
    let rb = b.wait().expect("cohort member must complete despite the cancelled member");
    assert!(!rb.degraded);
    let stats = svc.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed_ok, 1);
}

#[test]
fn duplicate_key_after_batched_run_replays_identical_digest() {
    let dir = tmp_dir("dedup");
    let circuit = small_cnn();
    let config = ServeConfig {
        store_dir: Some(dir.clone()),
        journal: JournalConfig { enabled: true, ..JournalConfig::default() },
        ..batching_config(2, Duration::from_millis(300))
    };

    // Solo reference digest for the same image (journaling off, batching
    // off): the digest a client would have seen before batching existed.
    let solo = InferenceService::start_with_compiler(
        compiler(),
        circuit.clone(),
        scales(),
        ServeConfig { workers: 1, ..ServeConfig::default() },
        sim_factory(),
    )
    .unwrap();
    let solo_resp = solo.submit(image(7)).unwrap().wait().unwrap();
    let solo_digest = response_digest(&solo_resp.output, solo_resp.degraded);
    solo.shutdown();

    let svc = InferenceService::start_with_compiler(
        compiler(),
        circuit.clone(),
        scales(),
        config.clone(),
        sim_factory(),
    )
    .unwrap();
    let t1 = match svc.submit_keyed(image(7), "k1").unwrap() {
        Submission::Accepted(t) => t,
        Submission::Duplicate(_) => panic!("fresh key must not dedup"),
    };
    let t2 = match svc.submit_keyed(image(8), "k2").unwrap() {
        Submission::Accepted(t) => t,
        Submission::Duplicate(_) => panic!("fresh key must not dedup"),
    };
    let r1 = t1.wait().unwrap();
    let r2 = t2.wait().unwrap();
    let d1 = response_digest(&r1.output, r1.degraded);
    assert_eq!(
        d1, solo_digest,
        "a batched run must produce the digest the solo path produces"
    );
    let stats = svc.stats();
    assert!(stats.batches_formed >= 1, "requests must have coalesced: {stats:?}");

    // Duplicate of a key whose original ran inside a batch: byte-identical.
    match svc.submit_keyed(image(7), "k1").unwrap() {
        Submission::Duplicate(resp) => {
            assert_eq!(resp.digest, d1);
            assert_eq!(resp.output.data(), r1.output.data());
        }
        Submission::Accepted(_) => panic!("completed key must dedup"),
    }
    let d2 = response_digest(&r2.output, r2.degraded);
    svc.shutdown();

    // Journal replay path: a restarted process must serve the same bytes.
    let svc = InferenceService::restart_from_journal(
        compiler(),
        circuit,
        scales(),
        config,
        sim_factory(),
    )
    .unwrap();
    let cached = svc.lookup("k1").expect("restart must recover the completed response");
    assert_eq!(cached.digest, d1);
    assert_eq!(cached.output.data(), r1.output.data());
    match svc.submit_keyed(image(8), "k2").unwrap() {
        Submission::Duplicate(resp) => assert_eq!(resp.digest, d2),
        Submission::Accepted(_) => panic!("journaled key must dedup after restart"),
    }
    svc.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn invalid_shape_is_refused_at_admission_non_retryable() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        batching_config(4, Duration::from_millis(5)),
        sim_factory(),
    )
    .unwrap();
    let bad = Tensor::random(vec![1, 4, 4], 1.0, 9);
    match svc.submit(bad) {
        Err(ServeError::InvalidRequest { detail }) => {
            assert!(detail.contains("does not match"), "{detail}");
        }
        other => panic!("wrong-shape submit must be InvalidRequest, got {other:?}"),
    }
    let stats = svc.shutdown();
    // Refused before admission: nothing queued, executed or retried.
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.failed, 0);
}

/// Seeded soak: a mix of batchable requests (some keyed, some cancelled)
/// and wrong-shape requests. Every admitted request must resolve with a
/// typed outcome, identical images must produce identical bytes whether
/// they rode a batch or not, and invalid requests must be shed at
/// admission without disturbing any of it.
#[test]
fn soak_mixed_batchable_and_invalid_requests() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        ServeConfig {
            workers: 2,
            queue_capacity: 128,
            max_batch: 4,
            max_linger: Duration::from_millis(10),
            ..ServeConfig::default()
        },
        sim_factory(),
    )
    .unwrap();

    let mut state = 0x5EED_CAFE_u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut tickets: Vec<(u64, chet_serve::Ticket)> = Vec::new();
    let mut invalid = 0u64;
    for i in 0..48u64 {
        let seed = i % 6;
        match rng() % 8 {
            // Wrong-shape request: refused at admission, never queued.
            0 => {
                let bad = Tensor::random(vec![2, 3, 3], 1.0, i);
                assert!(
                    matches!(svc.submit(bad), Err(ServeError::InvalidRequest { .. })),
                    "mismatched shape must be refused"
                );
                invalid += 1;
            }
            // Cancelled shortly after submission; may still complete if
            // the cancel races the worker — both outcomes are legal.
            1 => {
                let t = svc.submit(image(seed)).unwrap();
                t.cancel();
                tickets.push((seed, t));
            }
            // Plain batchable request; only 6 distinct images, so
            // repeats let us check byte-stability across batches.
            _ => tickets.push((seed, svc.submit(image(seed)).unwrap())),
        }
    }

    let mut outputs: std::collections::HashMap<u64, Vec<f64>> = std::collections::HashMap::new();
    let mut ok = 0u64;
    let mut cancelled = 0u64;
    for (seed, t) in tickets {
        match t.wait() {
            Ok(resp) => {
                assert!(!resp.degraded);
                // Identical inputs → identical bytes, batched or not.
                let entry = outputs.entry(seed).or_insert_with(|| resp.output.data().to_vec());
                assert_eq!(entry, resp.output.data(), "same image produced different bytes");
                ok += 1;
            }
            Err(ServeError::Cancelled(_)) => cancelled += 1,
            Err(e) => panic!("soak request must not fail: {e}"),
        }
    }
    let stats = svc.shutdown();
    assert_eq!(stats.submitted, ok + cancelled);
    assert_eq!(stats.completed_ok, ok);
    assert_eq!(stats.cancelled, cancelled);
    assert_eq!(stats.failed, 0);
    assert!(invalid > 0, "seed must produce some invalid requests");
    assert!(ok > 0);
}
