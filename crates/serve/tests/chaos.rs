//! Seeded chaos-harness acceptance tests.
//!
//! The headline soak drives the service through every serve-layer fault
//! class at once — slow workers, bounded hangs, bit-flipped ciphertexts,
//! dropped rotation keys, dropped responses — and holds the robustness
//! contract: every request resolves (ok, flagged-degraded, or a typed
//! error — never a hang), every *answer* that comes back is the right
//! answer, and the whole trajectory is a pure function of the chaos seed
//! (independent of worker count and `CHET_THREADS`).

use chet_ckks::sim::SimCkks;
use chet_compiler::Compiler;
use chet_hisa::error::HisaError;
use chet_hisa::params::SchemeKind;
use chet_hisa::Hisa;
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{
    BreakerConfig, BreakerState, ChaosPlan, InferenceService, RetryPolicy, ServeConfig,
    ServeError, WatchdogConfig,
};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

fn scales() -> ScaleConfig {
    ScaleConfig::from_log2(25, 12, 12, 10)
}

fn image(seed: u64) -> Tensor {
    Tensor::random(vec![1, 6, 6], 1.0, seed)
}

fn compiler() -> Compiler {
    Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20))
}

/// Plaintext reference for one image: the v0 artifact run directly on a
/// clean noiseless simulator. Repairs republish with wider margins, so
/// served outputs are compared with a loose-but-damning tolerance — a
/// surviving bit-flip would be off by orders of magnitude, not 1e-3.
fn reference(img: &Tensor) -> Tensor {
    use chet_compiler::CompiledCircuit;
    use std::sync::OnceLock;
    static ARTIFACT: OnceLock<(Circuit, CompiledCircuit)> = OnceLock::new();
    let (circuit, compiled) = ARTIFACT.get_or_init(|| {
        let circuit = small_cnn();
        let (compiled, _) =
            compiler().compile_checked(&circuit, &scales()).expect("reference must compile");
        (circuit, compiled)
    });
    let mut sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise();
    chet_runtime::exec::try_infer(&mut sim, circuit, &compiled.plan, img)
        .expect("reference run is fault-free")
}

fn assert_right_answer(id: u64, got: &Tensor, want: &Tensor) {
    assert_eq!(got.shape(), want.shape(), "request {id}: shape mismatch");
    for (a, b) in got.data().iter().zip(want.data()) {
        assert!(
            (a - b).abs() < 1e-3,
            "request {id}: wrong answer surfaced as success: {a} vs {b}"
        );
    }
}

/// Every fault class enabled, rates tuned so a ~200-request soak stays
/// fast while each class still fires many times.
fn chaos_plan(seed: u64) -> ChaosPlan {
    ChaosPlan {
        slow_workers: 0.01,
        hung_workers: 0.002,
        bitflip_ciphertexts: 0.002,
        drop_rotation_keys: 0.003,
        drop_responses: 0.03,
        slow_pause: Duration::from_micros(50),
        hang_pause: Duration::from_millis(4),
        ..ChaosPlan::disabled(seed)
    }
}

fn soak_config(workers: usize, seed: u64) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 256,
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(1),
            jitter: 0.25,
            seed: 0x00C0_FFEE,
        },
        breaker: BreakerConfig { failure_threshold: 3, open_requests: 2, half_open_successes: 1 },
        chaos: Some(chaos_plan(seed)),
        ..ServeConfig::default()
    }
}

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Collapses one request outcome into the soak digest.
fn fold_outcome(hash: u64, id: u64, outcome: &Result<(bool, u32, Tensor), String>) -> u64 {
    let mut h = fnv1a(hash, &id.to_le_bytes());
    match outcome {
        Ok((degraded, attempts, output)) => {
            h = fnv1a(h, &[1, u8::from(*degraded)]);
            h = fnv1a(h, &attempts.to_le_bytes());
            for v in output.data() {
                h = fnv1a(h, &v.to_bits().to_le_bytes());
            }
        }
        Err(label) => {
            h = fnv1a(h, &[2]);
            h = fnv1a(h, label.as_bytes());
        }
    }
    h
}

fn error_label(e: &ServeError) -> String {
    // Digest-stable label: variant identity, not Display text (which may
    // carry durations or other nondeterministic detail).
    match e {
        ServeError::Overloaded { .. } => "overloaded".into(),
        ServeError::ShuttingDown => "shutting-down".into(),
        ServeError::Cancelled(r) => format!("cancelled:{r:?}"),
        ServeError::Failed { attempts, .. } => format!("failed:{attempts}"),
        ServeError::Compile(_) => "compile".into(),
        ServeError::Lint { .. } => "lint".into(),
        ServeError::WorkerLost => "worker-lost".into(),
        ServeError::StoreLocked { .. } => "store-locked".into(),
        ServeError::DuplicatePending { .. } => "duplicate-pending".into(),
        ServeError::JournalUnavailable { .. } => "journal-unavailable".into(),
        ServeError::CostBudget { .. } => "cost-budget".into(),
        ServeError::InvalidRequest { .. } => "invalid-request".into(),
    }
}

/// Runs a sequential (one-in-flight) chaos soak and returns the outcome
/// digest. Sequential submission makes the breaker trajectory — and so
/// the digest — independent of worker count: chaos decisions are pure
/// functions of `(seed, request_id, op index)` and never of which worker
/// executes.
fn run_soak(workers: usize, seed: u64, requests: u64) -> (u64, chet_serve::ServiceStats) {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        soak_config(workers, seed),
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("artifact must compile");

    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for i in 0..requests {
        let img = image(1000 + i);
        let ticket = svc.submit(img.clone()).expect("sequential submits never overload");
        let id = ticket.id();
        let outcome = match ticket.wait() {
            Ok(resp) => {
                assert_right_answer(id, &resp.output, &reference(&img));
                Ok((resp.degraded, resp.attempts as u32, resp.output))
            }
            Err(e) => {
                assert!(
                    matches!(
                        e,
                        ServeError::Failed { .. }
                            | ServeError::WorkerLost
                            | ServeError::Cancelled(_)
                    ),
                    "request {id}: unexpected error class under chaos: {e}"
                );
                Err(error_label(&e))
            }
        };
        digest = fold_outcome(digest, id, &outcome);
    }
    (digest, svc.shutdown())
}

#[test]
fn seeded_chaos_soak_is_safe_and_reproducible() {
    const SEED: u64 = 0xC4A0_5EED;
    const REQUESTS: u64 = 208;

    let (digest_a, stats_a) = run_soak(1, SEED, REQUESTS);

    // Safety: nothing panicked, nothing hung (the soak returned), and
    // every fault class actually fired.
    assert_eq!(stats_a.panics_caught, 0);
    assert_eq!(stats_a.submitted, REQUESTS);
    assert!(stats_a.retries > 0, "chaos should have caused retries");
    assert!(stats_a.dropped_responses > 0, "drop-response chaos should have fired");
    assert!(
        stats_a.retries_exhausted > 0,
        "deterministic per-request chaos replays on retry, so some requests exhaust"
    );
    assert!(
        stats_a.completed_ok + stats_a.degraded > REQUESTS / 2,
        "most requests should still be answered: {stats_a:?}"
    );

    // Reproducibility: the same seed yields the same digest…
    let (digest_b, _) = run_soak(1, SEED, REQUESTS);
    assert_eq!(digest_a, digest_b, "chaos soak must be reproducible from its seed");

    // …independent of worker-pool size…
    let (digest_c, _) = run_soak(3, SEED, REQUESTS);
    assert_eq!(digest_a, digest_c, "digest must not depend on worker count");

    // …and a different seed yields a different trajectory.
    let (digest_d, _) = run_soak(1, SEED ^ 1, REQUESTS);
    assert_ne!(digest_a, digest_d, "the seed must actually steer the chaos");
}

#[test]
fn concurrent_chaos_burst_never_loses_or_corrupts_a_request() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        soak_config(3, 0xB02_57ED),
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("artifact must compile");

    let tickets: Vec<_> = (0..96u64
        )
        .map(|i| {
            let img = image(7000 + i);
            (img.clone(), svc.submit(img).expect("queue sized for the burst"))
        })
        .collect();

    let mut resolved = BTreeSet::new();
    for (img, t) in tickets {
        let id = t.id();
        match t.wait() {
            Ok(resp) => assert_right_answer(id, &resp.output, &reference(&img)),
            Err(
                ServeError::Failed { .. } | ServeError::WorkerLost | ServeError::Cancelled(_),
            ) => {}
            Err(other) => panic!("request {id}: unexpected error class: {other}"),
        }
        assert!(resolved.insert(id), "request id {id} resolved twice");
    }
    assert_eq!(resolved.len(), 96, "every submitted request must resolve exactly once");

    let stats = svc.shutdown();
    assert_eq!(stats.panics_caught, 0);
    assert_eq!(
        stats.completed_ok + stats.degraded + stats.failed + stats.cancelled,
        96,
        "terminal counters must account for every request: {stats:?}"
    );
}

#[test]
fn shutdown_under_chaos_accounts_for_every_request() {
    let mut cfg = soak_config(2, 0xD3AD_11FE);
    cfg.queue_capacity = 64;
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        cfg,
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("artifact must compile");

    let tickets: Vec<_> =
        (0..64u64).map(|i| svc.submit(image(3000 + i)).expect("queue holds the batch")).collect();
    let submitted: BTreeSet<u64> = tickets.iter().map(|t| t.id()).collect();
    assert_eq!(submitted.len(), 64);

    // Drain with a deadline far shorter than the full batch needs: the
    // sweeper must convert whatever cannot finish into typed
    // cancellations rather than leaving tickets hanging.
    let stats = svc.shutdown_with_deadline(Duration::from_millis(40));

    let mut resolved = BTreeSet::new();
    for t in tickets {
        let id = t.id();
        match t.wait() {
            Ok(_) => {}
            Err(
                ServeError::Failed { .. }
                | ServeError::WorkerLost
                | ServeError::Cancelled(_)
                | ServeError::ShuttingDown,
            ) => {}
            Err(other) => panic!("request {id}: unexpected error at shutdown: {other}"),
        }
        assert!(resolved.insert(id), "request id {id} resolved twice");
    }
    assert_eq!(
        resolved, submitted,
        "graceful shutdown must resolve every accepted request exactly once"
    );
    assert_eq!(stats.panics_caught, 0);
    assert_eq!(
        stats.completed_ok + stats.degraded + stats.failed + stats.cancelled,
        64,
        "no request may be silently dropped at shutdown: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// Breaker half-open under concurrent probes.
// ---------------------------------------------------------------------

struct GateCtl {
    /// While set, every rotation fails with `MissingRotationKey`.
    faulty: AtomicBool,
    /// Pause injected into `encrypt` (once per request), ms.
    encrypt_pause_ms: AtomicU64,
}

/// Test backend: shared-switch fault injection plus a per-request pause,
/// so the test can hold a half-open probe in flight while rivals arrive.
struct Gate {
    inner: SimCkks,
    ctl: Arc<GateCtl>,
}

impl Hisa for Gate {
    type Ct = <SimCkks as Hisa>::Ct;
    type Pt = <SimCkks as Hisa>::Pt;

    fn slots(&self) -> usize {
        self.inner.slots()
    }
    fn encode(&mut self, values: &[f64], scale: f64) -> Self::Pt {
        self.inner.encode(values, scale)
    }
    fn decode(&mut self, p: &Self::Pt) -> Vec<f64> {
        self.inner.decode(p)
    }
    fn encrypt(&mut self, p: &Self::Pt) -> Self::Ct {
        let pause = self.ctl.encrypt_pause_ms.load(Ordering::Relaxed);
        if pause > 0 {
            std::thread::sleep(Duration::from_millis(pause));
        }
        self.inner.encrypt(p)
    }
    fn decrypt(&mut self, c: &Self::Ct) -> Self::Pt {
        self.inner.decrypt(c)
    }
    fn rot_left(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.inner.rot_left(c, x)
    }
    fn rot_right(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.inner.rot_right(c, x)
    }
    fn try_rot_left(&mut self, c: &Self::Ct, x: usize) -> Result<Self::Ct, HisaError> {
        if self.ctl.faulty.load(Ordering::Relaxed) {
            return Err(HisaError::MissingRotationKey { step: x, available: Vec::new() });
        }
        self.inner.try_rot_left(c, x)
    }
    fn try_rot_right(&mut self, c: &Self::Ct, x: usize) -> Result<Self::Ct, HisaError> {
        if self.ctl.faulty.load(Ordering::Relaxed) {
            return Err(HisaError::MissingRotationKey { step: x, available: Vec::new() });
        }
        self.inner.try_rot_right(c, x)
    }
    fn add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.add(a, b)
    }
    fn add_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.add_plain(a, p)
    }
    fn add_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.inner.add_scalar(a, x)
    }
    fn sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.sub(a, b)
    }
    fn sub_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.sub_plain(a, p)
    }
    fn sub_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.inner.sub_scalar(a, x)
    }
    fn mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.mul(a, b)
    }
    fn mul_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.mul_plain(a, p)
    }
    fn mul_scalar(&mut self, a: &Self::Ct, x: f64, scale: f64) -> Self::Ct {
        self.inner.mul_scalar(a, x, scale)
    }
    fn rescale(&mut self, c: &Self::Ct, divisor: f64) -> Self::Ct {
        self.inner.rescale(c, divisor)
    }
    fn max_rescale(&mut self, c: &Self::Ct, ub: f64) -> f64 {
        self.inner.max_rescale(c, ub)
    }
    fn scale_of(&self, c: &Self::Ct) -> f64 {
        self.inner.scale_of(c)
    }
    fn available_rotations(&self) -> Option<BTreeSet<usize>> {
        self.inner.available_rotations()
    }
}

#[test]
fn half_open_breaker_admits_exactly_one_concurrent_probe() {
    let ctl = Arc::new(GateCtl {
        faulty: AtomicBool::new(true),
        encrypt_pause_ms: AtomicU64::new(0),
    });
    let factory_ctl = Arc::clone(&ctl);
    let cfg = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        retry: RetryPolicy {
            max_attempts: 1,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(1),
            jitter: 0.0,
            seed: 1,
        },
        // threshold 1: one failure opens; open_requests 0: the very next
        // request probes; half_open_successes 1: one good probe closes.
        breaker: BreakerConfig { failure_threshold: 1, open_requests: 0, half_open_successes: 1 },
        // Strict mode: no degraded fallback — breaker-refused requests
        // must shed with `Overloaded`, not queue or silently degrade.
        degraded_fallback: false,
        ..ServeConfig::default()
    };
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        cfg,
        move |_, compiled| Gate {
            inner: SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
            ctl: Arc::clone(&factory_ctl),
        },
    )
    .expect("artifact must compile");

    // Trip the breaker: one strict failure.
    let err = svc.submit(image(1)).expect("queue empty").wait().unwrap_err();
    assert!(matches!(err, ServeError::Failed { attempts: 1, .. }), "got {err}");
    assert_eq!(svc.stats().breaker.state, BreakerState::Open);

    // Heal the backend but make each primary run hold for 120 ms, so the
    // probe is still in flight while the rest of the batch is judged.
    ctl.faulty.store(false, Ordering::Relaxed);
    ctl.encrypt_pause_ms.store(120, Ordering::Relaxed);

    let tickets: Vec<_> =
        (0..6u64).map(|i| svc.submit(image(10 + i)).expect("queue holds the batch")).collect();
    let mut ok = 0;
    let mut shed = 0;
    for t in tickets {
        match t.wait() {
            Ok(resp) => {
                assert!(!resp.degraded, "strict mode has no degraded route");
                ok += 1;
            }
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("probe rivals must shed with Overloaded, got {other}"),
        }
    }
    assert_eq!(ok, 1, "exactly one half-open trial may be admitted");
    assert_eq!(shed, 5, "every rival must be shed, not queued behind the probe");

    ctl.encrypt_pause_ms.store(0, Ordering::Relaxed);
    let resp = svc.submit(image(99)).expect("queue empty").wait().expect("breaker closed again");
    assert!(!resp.degraded);

    let stats = svc.shutdown();
    assert_eq!(stats.breaker.state, BreakerState::Closed);
    let kinds: Vec<(BreakerState, BreakerState)> =
        stats.breaker.transitions.iter().map(|t| (t.from, t.to)).collect();
    assert!(kinds.contains(&(BreakerState::Open, BreakerState::HalfOpen)), "{kinds:?}");
    assert!(kinds.contains(&(BreakerState::HalfOpen, BreakerState::Closed)), "{kinds:?}");
}

#[test]
fn watchdog_escalates_hung_worker_and_respawns() {
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        retry: RetryPolicy {
            max_attempts: 1,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(1),
            jitter: 0.0,
            seed: 1,
        },
        watchdog: WatchdogConfig {
            enabled: true,
            tick: Duration::from_millis(2),
            grace: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(30),
            quarantine_after: Duration::from_millis(15),
            max_respawns: 4,
        },
        // Every op hangs long past the stall timeout, ignoring the
        // cancel token — exactly the wedge the watchdog exists for.
        chaos: Some(ChaosPlan {
            hung_workers: 1.0,
            hang_pause: Duration::from_millis(150),
            ..ChaosPlan::disabled(0xD06_60D)
        }),
        ..ServeConfig::default()
    };
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        cfg,
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("artifact must compile");

    // The hung op eventually returns; the cooperative check right after
    // it observes the watchdog's cancellation and resolves typed.
    let err = svc.submit(image(5)).expect("queue empty").wait().unwrap_err();
    assert!(matches!(err, ServeError::Cancelled(_) | ServeError::Failed { .. }), "got {err}");

    let events = svc.watchdog_events();
    assert!(!events.is_empty(), "the watchdog must have intervened");
    assert!(
        events.iter().any(|e| e.action == chet_serve::Escalation::Cancelled),
        "step 1 (cancel) expected: {events:?}"
    );
    assert!(
        events.iter().any(|e| e.action == chet_serve::Escalation::Quarantined),
        "step 2 (quarantine + respawn) expected: {events:?}"
    );

    let health = svc.health();
    assert_eq!(health.verdict(), chet_serve::HealthVerdict::Degraded);
    assert!(health.watchdog_escalations >= 2);
    assert!(health.workers_respawned >= 1);

    let stats = svc.shutdown();
    assert!(stats.watchdog_escalations >= 2, "{stats:?}");
    assert!(stats.workers_respawned >= 1, "{stats:?}");
}
