//! Crash-safe store acceptance tests: a service must survive any
//! kill-style corruption of its on-disk artifact/key records — start,
//! quarantine the damage, recompile, and serve the same network again.

use chet_ckks::sim::SimCkks;
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_runtime::kernels::ScaleConfig;
use chet_serve::chaos::{flip_byte, truncate_file};
use chet_serve::{HealthVerdict, InferenceService, ServeConfig};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::path::{Path, PathBuf};

fn small_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

fn scales() -> ScaleConfig {
    ScaleConfig::from_log2(25, 12, 12, 10)
}

fn image(seed: u64) -> Tensor {
    Tensor::random(vec![1, 6, 6], 1.0, seed)
}

fn compiler() -> Compiler {
    Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20))
}

/// Fresh per-test store directory (tests run in parallel).
fn store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chet-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 8,
        store_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn start(dir: &Path) -> InferenceService {
    InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config(dir),
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("service must start")
}

/// One healthy request through the service, returning its output.
fn serve_one(svc: &InferenceService, seed: u64) -> Tensor {
    let resp = svc.submit(image(seed)).expect("queue empty").wait().expect("healthy request");
    assert!(!resp.degraded);
    resp.output
}

fn quarantined_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".quarantined"))
        .collect();
    names.sort();
    names
}

#[test]
fn clean_restart_reuses_the_persisted_artifact() {
    let dir = store_dir("clean");
    let svc = start(&dir);
    let first = serve_one(&svc, 42);
    let v0 = svc.stats().artifact_version;
    svc.shutdown();

    assert!(dir.join("artifact.rec").is_file(), "artifact record must be persisted");
    assert!(dir.join("key-bundle.rec").is_file(), "key bundle must be persisted");

    let svc = start(&dir);
    let stats = svc.stats();
    assert_eq!(stats.store_recompiles, 0, "an intact store must be reused, not recompiled");
    assert_eq!(stats.quarantined_records, 0);
    assert_eq!(stats.artifact_version, v0, "recovered artifact keeps its version");
    assert_eq!(svc.health().verdict(), HealthVerdict::Healthy);

    let again = serve_one(&svc, 42);
    assert_eq!(first.shape(), again.shape());
    for (a, b) in first.data().iter().zip(again.data()) {
        assert!((a - b).abs() < 1e-9, "recovered artifact must serve identically: {a} vs {b}");
    }
    svc.shutdown();
}

#[test]
fn truncated_artifact_record_is_quarantined_and_recompiled() {
    let dir = store_dir("truncate");
    let svc = start(&dir);
    let first = serve_one(&svc, 7);
    svc.shutdown();

    // Kill-style mid-write truncation: keep only the first 40 bytes.
    let rec = dir.join("artifact.rec");
    let len = std::fs::metadata(&rec).unwrap().len();
    assert!(len > 40);
    truncate_file(&rec, 40).unwrap();

    // The service still starts: the damaged record is quarantined aside
    // and the artifact recompiled from source.
    let svc = start(&dir);
    let stats = svc.stats();
    assert!(stats.quarantined_records >= 1, "{stats:?}");
    assert!(stats.store_recompiles >= 1, "{stats:?}");
    assert!(
        !quarantined_files(&dir).is_empty(),
        "the corpse must be preserved for forensics, not deleted"
    );
    assert!(
        dir.join("artifact.rec").is_file(),
        "the recompiled artifact must be re-persisted for the next restart"
    );

    // The store damage is visible in health, but service is unimpaired.
    assert_eq!(svc.health().verdict(), HealthVerdict::Degraded);
    let again = serve_one(&svc, 7);
    for (a, b) in first.data().iter().zip(again.data()) {
        assert!((a - b).abs() < 1e-3, "recompiled artifact must serve the same network");
    }
    svc.shutdown();

    // And the *next* restart recovers cleanly from the re-persisted pair.
    let svc = start(&dir);
    assert_eq!(svc.stats().store_recompiles, 0);
    svc.shutdown();
}

#[test]
fn bitflipped_key_bundle_forces_recompile() {
    let dir = store_dir("bitflip");
    let svc = start(&dir);
    serve_one(&svc, 13);
    svc.shutdown();

    // Flip one payload bit in the key bundle; the checksum must catch it
    // even though the artifact record itself is intact.
    let rec = dir.join("key-bundle.rec");
    let len = std::fs::metadata(&rec).unwrap().len();
    flip_byte(&rec, len / 2, 0x10).unwrap();

    let svc = start(&dir);
    let stats = svc.stats();
    assert!(stats.quarantined_records >= 1, "{stats:?}");
    assert!(
        stats.store_recompiles >= 1,
        "an artifact without a trustworthy key bundle is not servable: {stats:?}"
    );
    serve_one(&svc, 13);
    svc.shutdown();
}

#[test]
fn truncation_at_any_point_never_blocks_startup() {
    let dir = store_dir("sweep");
    let svc = start(&dir);
    serve_one(&svc, 21);
    svc.shutdown();

    let rec = dir.join("artifact.rec");
    let pristine = std::fs::read(&rec).unwrap();

    // A coarse sweep over truncation points (every-byte coverage lives in
    // the store's unit tests; this exercises the full service path).
    for keep in [0u64, 1, 7, 8, 9, 13, 14, 40, pristine.len() as u64 / 2, pristine.len() as u64 - 1]
    {
        std::fs::write(&rec, &pristine).unwrap();
        truncate_file(&rec, keep).unwrap();
        let svc = start(&dir);
        serve_one(&svc, 21);
        svc.shutdown();
        // Clear quarantine corpses so the next iteration starts clean.
        for name in quarantined_files(&dir) {
            let _ = std::fs::remove_file(dir.join(name));
        }
    }
}
