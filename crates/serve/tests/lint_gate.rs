//! The service's static-verifier publish gate: artifacts carrying `Deny`
//! diagnostics must never become the shared serving state.

use chet_compiler::Compiler;
use chet_hisa::keys::RotationKeyPolicy;
use chet_hisa::params::SchemeKind;
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{vet_artifact, ServeError};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::collections::BTreeSet;

fn small_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

fn compile() -> (Circuit, chet_compiler::CompiledCircuit) {
    let circuit = small_cnn();
    let compiled = Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(2f64.powi(20))
        .compile(&circuit, &ScaleConfig::from_log2(25, 12, 12, 10))
        .unwrap();
    (circuit, compiled)
}

#[test]
fn healthy_artifact_passes_the_gate() {
    let (circuit, compiled) = compile();
    assert_eq!(vet_artifact(&circuit, &compiled), Ok(()));
}

#[test]
fn tampered_rotation_keys_are_refused() {
    let (circuit, mut compiled) = compile();
    // Strip every rotation key: the conv kernel needs them, so the static
    // verifier must report CHET-E003 and the gate must refuse to publish.
    compiled.rotation_keys = RotationKeyPolicy::Exact(BTreeSet::new());
    match vet_artifact(&circuit, &compiled) {
        Err(ServeError::Lint { denies, first }) => {
            assert!(denies >= 1, "expected at least one deny, got {denies}");
            assert!(first.contains("CHET-E003"), "unexpected first deny: {first}");
        }
        other => panic!("gate must refuse a keyless artifact, got {other:?}"),
    }
}

#[test]
fn lint_error_displays_the_diagnostic() {
    let (circuit, mut compiled) = compile();
    compiled.rotation_keys = RotationKeyPolicy::Exact(BTreeSet::new());
    let err = vet_artifact(&circuit, &compiled).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("static verifier"), "{rendered}");
    assert!(rendered.contains("CHET-E003"), "{rendered}");
}

#[test]
fn cost_budget_gate_denies_expensive_artifacts() {
    let (circuit, compiled) = compile();
    // A 1 µs budget is below any circuit's predicted latency, so the
    // budgeted gate must refuse what the plain verifier accepts.
    assert_eq!(chet_serve::vet_artifact(&circuit, &compiled), Ok(()));
    match chet_serve::vet_artifact_with_budget(&circuit, &compiled, Some(1.0), None) {
        Err(ServeError::CostBudget { predicted_us, budget_us }) => {
            assert!(predicted_us > budget_us, "{predicted_us} vs {budget_us}");
            assert_eq!(budget_us, 1.0);
        }
        other => panic!("expected a cost-budget refusal, got {other:?}"),
    }
}

#[test]
fn cost_budget_gate_passes_within_budget() {
    let (circuit, compiled) = compile();
    // No budget: identical to the plain gate.
    assert_eq!(chet_serve::vet_artifact_with_budget(&circuit, &compiled, None, None), Ok(()));
    // A huge budget admits the artifact.
    assert_eq!(
        chet_serve::vet_artifact_with_budget(&circuit, &compiled, Some(1e12), None),
        Ok(())
    );
}

#[test]
fn cost_budget_error_displays_both_sides() {
    let (circuit, compiled) = compile();
    let err =
        chet_serve::vet_artifact_with_budget(&circuit, &compiled, Some(1.0), None).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("budget"), "{rendered}");
    assert!(rendered.contains("1.0") || rendered.contains("1 us"), "{rendered}");
}
