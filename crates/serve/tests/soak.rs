//! Service-level robustness acceptance tests.
//!
//! The headline test drives a worker pool through seeded *transient*
//! fault injection: every request must resolve (ok, flagged-degraded, or
//! a structured error — never a panic, never a hang), the circuit breaker
//! must trip while the faults last and recover through half-open once
//! they clear, and the whole trajectory must be reproducible from the
//! seeds.

use chet_ckks::sim::SimCkks;
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_hisa::Hisa;
use chet_runtime::cancel::{CancelReason, CancelToken};
use chet_runtime::fault::{FaultInjector, FaultPlan};
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{
    BreakerConfig, BreakerState, InferenceService, RetryPolicy, ServeConfig, ServeError,
};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// conv → activation → avg-pool: exercises rotations, plaintext muls and
/// rescales, so every injected fault class has a trigger site.
fn small_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

fn scales() -> ScaleConfig {
    ScaleConfig::from_log2(25, 12, 12, 10)
}

fn image(seed: u64) -> Tensor {
    Tensor::random(vec![1, 6, 6], 1.0, seed)
}

fn compiler() -> Compiler {
    Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20))
}

/// Fast-backoff config so the suite stays quick.
fn config(workers: usize, queue: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: queue,
        default_deadline: None,
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(1),
            jitter: 0.25,
            seed: 0x00C0_FFEE,
        },
        breaker: BreakerConfig { failure_threshold: 3, open_requests: 2, half_open_successes: 1 },
        degraded_seed: 0x5EED,
        threads: None,
        ..ServeConfig::default()
    }
}

#[test]
fn soak_transient_faults_all_requests_resolve_and_breaker_recovers() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config(3, 128),
        |worker_id, compiled| {
            let sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 5).without_noise();
            // Each worker's backend drops rotation keys for its first 3
            // eligible instructions, then heals.
            let plan = FaultPlan::none(1.0).with_dropped_rotation_keys().transient(3);
            FaultInjector::new(sim, plan, 40 + worker_id as u64)
        },
    )
    .expect("artifact must compile");

    // Burst phase: fire a batch concurrently while faults are active.
    let tickets: Vec<_> =
        (0..40).map(|i| svc.submit(image(100 + i)).expect("queue sized for the burst")).collect();
    let mut ok = 0u64;
    let mut degraded = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(resp) if resp.degraded => degraded += 1,
            Ok(_) => ok += 1,
            Err(e) => panic!("burst request must resolve ok or degraded, got {e}"),
        }
    }
    assert_eq!(ok + degraded, 40);

    // Settling phase: sequential requests until every worker backend has
    // burned through its fault window and the breaker closes again.
    let mut settled = false;
    for i in 0..100u64 {
        let resp = svc.submit(image(500 + i)).expect("queue empty").wait().expect("must resolve");
        if !resp.degraded && svc.stats().breaker.state == BreakerState::Closed {
            settled = true;
            break;
        }
    }
    assert!(settled, "breaker should close once the transient faults clear");

    let stats = svc.shutdown();
    // ≥ 99% of requests complete ok-or-degraded; here it is 100%: every
    // primary failure falls back to the degraded route.
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.panics_caught, 0, "fault injection must never panic a worker");
    assert!(stats.retries > 0, "transient faults should have caused retries");
    assert!(stats.degraded > 0, "an open breaker should have degraded requests");
    let kinds: Vec<(BreakerState, BreakerState)> =
        stats.breaker.transitions.iter().map(|t| (t.from, t.to)).collect();
    assert!(
        kinds.contains(&(BreakerState::Closed, BreakerState::Open)),
        "breaker should trip while faults are active: {kinds:?}"
    );
    assert!(
        kinds.contains(&(BreakerState::HalfOpen, BreakerState::Closed)),
        "breaker should recover through half-open: {kinds:?}"
    );
    assert_eq!(stats.breaker.state, BreakerState::Closed);
    assert_eq!(stats.latency.count, stats.completed_ok + stats.degraded + stats.failed);
}

#[test]
fn single_worker_breaker_lifecycle_is_deterministic() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config(1, 8),
        |_, compiled| {
            let sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 5).without_noise();
            // 6 faulting instructions: request 1 burns 3 (its retries),
            // then 3 probes fail before the 4th probe finds a healed
            // backend.
            let plan = FaultPlan::none(1.0).with_dropped_rotation_keys().transient(6);
            FaultInjector::new(sim, plan, 7)
        },
    )
    .expect("artifact must compile");

    let mut outcomes = Vec::new();
    for i in 0..16u64 {
        let resp = svc.submit(image(i)).expect("sequential submits never overload").wait();
        let resp = resp.expect("every request resolves ok or degraded");
        outcomes.push(resp.degraded);
    }
    // Request 1 exhausts its 3 attempts (tripping the breaker) and
    // degrades; requests 2..13 ride the open/half-open cooldown cycles;
    // the 4th probe (request 13) heals the breaker and 14..16 run primary.
    let expected = [
        true, true, true, true, true, true, true, true, true, true, true, true, false, false,
        false, false,
    ];
    assert_eq!(outcomes.as_slice(), &expected);

    let stats = svc.shutdown();
    assert_eq!(stats.completed_ok, 4);
    assert_eq!(stats.degraded, 12);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.retries, 2, "only request 1 retried (attempts 2 and 3)");
    assert_eq!(stats.repairs, 0);
    let kinds: Vec<(BreakerState, BreakerState)> =
        stats.breaker.transitions.iter().map(|t| (t.from, t.to)).collect();
    use BreakerState::{Closed, HalfOpen, Open};
    assert_eq!(
        kinds,
        vec![
            (Closed, Open),     // request 1's third consecutive failure
            (Open, HalfOpen),   // request 4 probes
            (HalfOpen, Open),   // probe fails (fault window active)
            (Open, HalfOpen),   // request 7
            (HalfOpen, Open),
            (Open, HalfOpen),   // request 10
            (HalfOpen, Open),
            (Open, HalfOpen),   // request 13
            (HalfOpen, Closed), // probe succeeds: window exhausted
        ]
    );
}

#[test]
fn overload_sheds_immediately_with_structured_rejection() {
    // One worker, tiny queue, and a permanently faulty primary whose
    // backoff keeps the worker busy long enough for the queue to fill.
    let mut cfg = config(1, 2);
    cfg.retry.base = Duration::from_millis(10);
    cfg.retry.cap = Duration::from_millis(20);
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        cfg,
        |_, compiled| {
            let sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 5).without_noise();
            FaultInjector::new(sim, FaultPlan::none(1.0).with_dropped_rotation_keys(), 11)
        },
    )
    .expect("artifact must compile");

    let mut tickets = Vec::new();
    let mut sheds = 0;
    for i in 0..10u64 {
        match svc.submit(image(i)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                sheds += 1;
            }
            Err(other) => panic!("only Overloaded is expected at admission: {other}"),
        }
    }
    assert!(sheds > 0, "a full queue must shed load");
    // Accepted requests still resolve (degraded, since the primary never
    // heals) — shedding never corrupts queued work.
    for t in tickets {
        let resp = t.wait().expect("accepted requests resolve");
        assert!(resp.degraded);
    }
    let stats = svc.shutdown();
    assert_eq!(stats.shed, sheds);
    assert_eq!(stats.failed, 0);
}

#[test]
fn deadlines_and_cancellation_abort_cooperatively() {
    let mut cfg = config(1, 8);
    cfg.default_deadline = Some(Duration::ZERO);
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        cfg,
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 5).without_noise(),
    )
    .expect("artifact must compile");

    // An already-expired deadline aborts before any ciphertext work.
    let err = svc.submit(image(1)).expect("queue empty").wait().unwrap_err();
    assert_eq!(err, ServeError::Cancelled(CancelReason::DeadlineExceeded));

    // An explicitly cancelled token aborts with the explicit reason even
    // though it also has no deadline budget left.
    let token = CancelToken::new();
    token.cancel();
    let err = svc.submit_with(image(2), token).expect("queue empty").wait().unwrap_err();
    assert_eq!(err, ServeError::Cancelled(CancelReason::Cancelled));

    let stats = svc.shutdown();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.completed_ok + stats.degraded + stats.failed, 0);
}

#[test]
fn level_exhaustion_escalates_into_repair_recompilation() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config(1, 8),
        |_, compiled| {
            let sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 5).without_noise();
            // Every rescale faults with LevelExhausted while the window
            // lasts; rebuilding the backend after each repair restarts the
            // window, so both attempts fault and both escalate.
            let plan = FaultPlan::none(1.0).with_exhausted_levels().transient(1);
            FaultInjector::new(sim, plan, 13)
        },
    )
    .expect("artifact must compile");

    let v0 = svc.stats().artifact_version;
    let resp = svc.submit(image(3)).expect("queue empty").wait().expect("must resolve");
    assert!(resp.degraded, "primary never healed, so the request degrades");
    let stats = svc.shutdown();
    assert!(stats.repairs >= 1, "LevelExhausted must trigger at least one recompilation");
    assert!(stats.artifact_version > v0, "each repair publishes a new artifact version");
}

#[test]
fn healthy_service_matches_direct_inference_and_reports_cleanly() {
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config(2, 16),
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("artifact must compile");

    // Reference: the same compiled artifact run directly.
    let circuit = small_cnn();
    let (compiled, _) =
        compiler().compile_checked(&circuit, &scales()).expect("artifact must compile");
    let mut direct = SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise();
    let expected =
        chet_runtime::exec::try_infer(&mut direct, &circuit, &compiled.plan, &image(42))
            .expect("healthy direct run");

    let resp = svc.submit(image(42)).expect("queue empty").wait().expect("healthy run");
    assert!(!resp.degraded);
    assert_eq!(resp.attempts, 1);
    assert_eq!(resp.output.shape(), expected.shape());
    for (a, b) in resp.output.data().iter().zip(expected.data()) {
        assert!((a - b).abs() < 1e-9, "service must run the same artifact: {a} vs {b}");
    }
    assert!(resp.ops_executed > 0, "the observer should have seen every node");

    let stats = svc.shutdown();
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(stats.degraded + stats.failed + stats.cancelled + stats.shed, 0);
    assert_eq!(stats.breaker.state, BreakerState::Closed);
    assert!(stats.breaker.transitions.is_empty());
}

/// A backend that panics on its first rotation, standing in for a native
/// library fault. Only used to prove the worker contains panics.
struct PanicOnce {
    inner: SimCkks,
    armed: bool,
}

impl Hisa for PanicOnce {
    type Ct = <SimCkks as Hisa>::Ct;
    type Pt = <SimCkks as Hisa>::Pt;

    fn slots(&self) -> usize {
        self.inner.slots()
    }
    fn encode(&mut self, values: &[f64], scale: f64) -> Self::Pt {
        self.inner.encode(values, scale)
    }
    fn decode(&mut self, p: &Self::Pt) -> Vec<f64> {
        self.inner.decode(p)
    }
    fn encrypt(&mut self, p: &Self::Pt) -> Self::Ct {
        self.inner.encrypt(p)
    }
    fn decrypt(&mut self, c: &Self::Ct) -> Self::Pt {
        self.inner.decrypt(c)
    }
    fn rot_left(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        if self.armed {
            self.armed = false;
            panic!("simulated native-library crash");
        }
        self.inner.rot_left(c, x)
    }
    fn rot_right(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.inner.rot_right(c, x)
    }
    fn add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.add(a, b)
    }
    fn add_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.add_plain(a, p)
    }
    fn add_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.inner.add_scalar(a, x)
    }
    fn sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.sub(a, b)
    }
    fn sub_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.sub_plain(a, p)
    }
    fn sub_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.inner.sub_scalar(a, x)
    }
    fn mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.mul(a, b)
    }
    fn mul_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.mul_plain(a, p)
    }
    fn mul_scalar(&mut self, a: &Self::Ct, x: f64, scale: f64) -> Self::Ct {
        self.inner.mul_scalar(a, x, scale)
    }
    fn rescale(&mut self, c: &Self::Ct, divisor: f64) -> Self::Ct {
        self.inner.rescale(c, divisor)
    }
    fn max_rescale(&mut self, c: &Self::Ct, ub: f64) -> f64 {
        self.inner.max_rescale(c, ub)
    }
    fn scale_of(&self, c: &Self::Ct) -> f64 {
        self.inner.scale_of(c)
    }
    fn available_rotations(&self) -> Option<std::collections::BTreeSet<usize>> {
        self.inner.available_rotations()
    }
}

#[test]
fn worker_contains_backend_panics_and_recovers() {
    let builds = Arc::new(AtomicU64::new(0));
    let builds_in_factory = Arc::clone(&builds);
    let svc = InferenceService::start_with_compiler(
        compiler(),
        small_cnn(),
        scales(),
        config(1, 8),
        move |_, compiled| {
            // Only the first backend instance is armed to panic; the
            // rebuild after the caught panic is healthy.
            let n = builds_in_factory.fetch_add(1, Ordering::Relaxed);
            PanicOnce {
                inner: SimCkks::new(&compiled.params, &compiled.rotation_keys, 5).without_noise(),
                armed: n == 0,
            }
        },
    )
    .expect("artifact must compile");

    let resp = svc.submit(image(8)).expect("queue empty").wait().expect("must resolve");
    assert!(!resp.degraded, "the rebuilt backend should finish the request on the primary");
    assert_eq!(resp.attempts, 2);
    let stats = svc.shutdown();
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(builds.load(Ordering::Relaxed), 2, "the worker rebuilt its backend once");
}
