//! # chet-bench
//!
//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the CHET paper's evaluation (see DESIGN.md §4 for the
//! index). Each `src/bin/table*`/`src/bin/fig*` binary prints the
//! reproduction next to the paper's reported shape.
//!
//! Conventions:
//!
//! * `--full` runs the full-size Table 3 networks (can take hours on the
//!   real lattice backends); the default uses the structurally identical
//!   reduced variants (see `chet_networks::reduced`) so the whole suite
//!   completes in CI time.
//! * `--sim` replaces the lattice backends with the plaintext simulator
//!   (exact slot semantics; useful to sanity-check harness logic quickly).
//! * HEAAN-style CKKS runs use relaxed security, mirroring the paper's
//!   "somewhat less than 128-bit security" for its hand-written HEAAN
//!   baselines and Table 4.

use chet_ckks::big::BigCkks;
use chet_ckks::rns::RnsCkks;
use chet_ckks::sim::SimCkks;
use chet_compiler::CompiledCircuit;
use chet_hisa::params::SchemeKind;
use chet_hisa::{EncryptionParams, RotationKeyPolicy};
use chet_networks::Network;
use chet_runtime::exec::{infer, ExecPlan};
use chet_tensor::Tensor;
use std::time::{Duration, Instant};

/// Which concrete backend an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Real SEAL-style RNS-CKKS.
    Rns,
    /// Real HEAAN-style bigint CKKS.
    Big,
    /// Plaintext simulator (for harness smoke runs).
    Sim,
}

impl BackendChoice {
    /// The scheme variant this backend implements (Sim defaults to RNS
    /// semantics unless the parameters say otherwise).
    pub fn kind(self) -> SchemeKind {
        match self {
            BackendChoice::Rns | BackendChoice::Sim => SchemeKind::RnsCkks,
            BackendChoice::Big => SchemeKind::Ckks,
        }
    }
}

/// Simple CLI options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Use full-size networks instead of reduced variants.
    pub full: bool,
    /// Use the simulator instead of the real lattice backends.
    pub sim: bool,
    /// Number of images to average latency over.
    pub images: usize,
    /// Limit to the first `nets` networks (single-core runs of the heavier
    /// networks take minutes per cell; see EXPERIMENTS.md).
    pub nets: usize,
}

impl HarnessArgs {
    /// Parses `--full`, `--sim` and `--images N` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = HarnessArgs { full: false, sim: false, images: 1, nets: 5 };
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--sim" => args.sim = true,
                "--images" => {
                    args.images = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--images takes a number");
                }
                "--nets" => {
                    args.nets = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--nets takes a number");
                }
                other => {
                    panic!("unknown argument {other} (expected --full/--sim/--images N/--nets N)")
                }
            }
        }
        args
    }

    /// The evaluation networks under these options.
    pub fn networks(&self) -> Vec<Network> {
        let mut nets = if self.full {
            chet_networks::all_networks()
        } else {
            chet_networks::NETWORK_NAMES
                .iter()
                .filter_map(|n| chet_networks::try_reduced(n).ok())
                .collect()
        };
        nets.truncate(self.nets.max(1));
        nets
    }
}

/// Fixed-point scales used across the harness binaries: small enough that
/// the reduced networks select `N = 8192–16384` (fast single-core runs),
/// large enough that encrypted outputs track the reference.
pub fn harness_scales() -> chet_runtime::kernels::ScaleConfig {
    chet_runtime::kernels::ScaleConfig::from_log2(25, 12, 12, 10)
}

/// Output fixed-point precision requested from the compiler in harness
/// runs (matches the working scale).
pub fn harness_precision() -> f64 {
    2f64.powi(25)
}

/// Times one encrypted inference on the chosen backend.
pub fn time_inference(
    backend: BackendChoice,
    params: &EncryptionParams,
    keys: &RotationKeyPolicy,
    circuit: &chet_tensor::Circuit,
    plan: &ExecPlan,
    image: &Tensor,
    seed: u64,
) -> (Tensor, Duration) {
    match backend {
        BackendChoice::Rns => {
            let mut h = RnsCkks::new(params, keys, seed);
            let t0 = Instant::now();
            let out = infer(&mut h, circuit, plan, image);
            (out, t0.elapsed())
        }
        BackendChoice::Big => {
            let mut h = BigCkks::new(params, keys, seed);
            let t0 = Instant::now();
            let out = infer(&mut h, circuit, plan, image);
            (out, t0.elapsed())
        }
        BackendChoice::Sim => {
            let mut h = SimCkks::new(params, keys, seed);
            let t0 = Instant::now();
            let out = infer(&mut h, circuit, plan, image);
            (out, t0.elapsed())
        }
    }
}

/// Times key generation alone (relevant to the rotation-key experiments).
pub fn time_keygen(
    backend: BackendChoice,
    params: &EncryptionParams,
    keys: &RotationKeyPolicy,
    seed: u64,
) -> Duration {
    let t0 = Instant::now();
    match backend {
        BackendChoice::Rns => {
            let _ = RnsCkks::new(params, keys, seed);
        }
        BackendChoice::Big => {
            let _ = BigCkks::new(params, keys, seed);
        }
        BackendChoice::Sim => {
            let _ = SimCkks::new(params, keys, seed);
        }
    }
    t0.elapsed()
}

/// Average latency over `n` images (fresh backend per image, as in the
/// paper's per-image latency metric).
pub fn average_latency(
    backend: BackendChoice,
    compiled: &CompiledCircuit,
    circuit: &chet_tensor::Circuit,
    net: &Network,
    n: usize,
) -> Duration {
    let mut total = Duration::ZERO;
    for i in 0..n {
        let image = net.sample_image(7 + i as u64);
        let (_, dt) = time_inference(
            backend,
            &compiled.params,
            &compiled.rotation_keys,
            circuit,
            &compiled.plan,
            &image,
            1234 + i as u64,
        );
        total += dt;
    }
    total / n as u32
}

/// Runs the Table 5/6 layout-vs-latency sweep for one scheme variant.
pub fn run_layout_table(
    title: &str,
    kind: SchemeKind,
    security: chet_hisa::SecurityLevel,
    backend: BackendChoice,
    args: &HarnessArgs,
) {
    use chet_compiler::layout::enumerate_layouts;
    use chet_compiler::{select_rotation_keys, ALL_POLICIES};
    use chet_hisa::cost::CostModel;

    println!("== {title} ==");
    println!(
        "(networks: {}; backend: {:?}; {} image(s) per cell)\n",
        if args.full { "full-size" } else { "reduced" },
        backend,
        args.images
    );
    let scales = harness_scales();
    let cost_model = CostModel::for_scheme(kind);
    let mut rows = Vec::new();
    for net in args.networks() {
        let choices = enumerate_layouts(
            &net.circuit,
            &scales,
            kind,
            security,
            harness_precision(),
            &cost_model,
        )
        .expect("some policy compiles");
        let best = choices[0].policy;
        let mut row = vec![net.name.to_string()];
        for policy in ALL_POLICIES {
            let Some(choice) = choices.iter().find(|c| c.policy == policy) else {
                row.push("n/a".into());
                continue;
            };
            let compiled = CompiledCircuit {
                plan: choice.plan.clone(),
                params: choice.outcome.params.clone(),
                rotation_keys: select_rotation_keys(&choice.outcome),
                policy: choice.policy,
                estimated_cost: choice.estimated_cost,
                outcome: choice.outcome.clone(),
                output_precision: harness_precision(),
                pruned_rotations: Vec::new(),
            };
            let dt = average_latency(backend, &compiled, &net.circuit, &net, args.images);
            let marker = if policy == best { " *" } else { "" };
            eprintln!("[cell] {} / {}: {}{}", net.name, choice.policy, fmt_dur(dt), marker);
            row.push(format!("{}{}", fmt_dur(dt), marker));
        }
        rows.push(row);
    }
    print_table(
        &["Network", "HW", "CHW", "HW-conv,CHW-rest", "CHW-fc,HW-before"],
        &rows,
    );
    println!("\n'*' marks the layout CHET's cost model selects.");
}

/// Pearson correlation between two equally long series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

/// Spearman rank correlation.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite"));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Formats a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// Prints a padded text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> =
            cells.iter().enumerate().map(|(i, c)| format!("{:<w$}", c, w = widths[i])).collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_linear_series_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_is_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!(pearson(&xs, &ys) < -0.99);
    }

    #[test]
    fn fmt_duration_ranges() {
        assert!(fmt_dur(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).ends_with('s'));
        assert!(fmt_dur(Duration::from_secs(300)).ends_with("min"));
    }

    #[test]
    fn reduced_networks_available() {
        let args = HarnessArgs { full: false, sim: true, images: 1, nets: 5 };
        assert_eq!(args.networks().len(), 5);
    }
}
