//! Table 6 — average inference latency per data-layout policy under
//! CHET-HEAAN (bigint CKKS).
//!
//! Expected shape (paper): under CKKS `mulScalar` is much cheaper than
//! `mulPlain`, so HW-flavored layouts are competitive for convolutions,
//! unlike Table 5 — the best layout differs per scheme for the same
//! network. Security is relaxed as in the paper's HEAAN experiments.

use chet_bench::{run_layout_table, BackendChoice, HarnessArgs};
use chet_hisa::params::SchemeKind;
use chet_hisa::SecurityLevel;

fn main() {
    let args = HarnessArgs::parse();
    let backend = if args.sim { BackendChoice::Sim } else { BackendChoice::Big };
    run_layout_table(
        "Table 6: latency per layout, CHET-HEAAN (CKKS)",
        SchemeKind::Ckks,
        SecurityLevel::Bits128,
        backend,
        &args,
    );
}
