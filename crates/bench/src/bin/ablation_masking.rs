//! Ablation — eager vs lazy masking (DESIGN.md §7).
//!
//! CHET's runtime masks intermediate tensors to zero out junk slots (paper
//! Figures 1 & 4). Masking costs a plaintext multiply *and* multiplicative
//! depth per masked op. The executor's backward analysis skips masks no
//! consumer needs ("lazy"); this binary quantifies what that saves: modulus
//! consumed, the resulting ring degree / chain length, and real latency.

use chet_bench::{fmt_dur, harness_precision, harness_scales, print_table, time_inference, BackendChoice, HarnessArgs};
use chet_compiler::layout::policy_layouts;
use chet_compiler::{select_parameters, select_rotation_keys, LayoutPolicy};
use chet_hisa::params::SchemeKind;
use chet_hisa::SecurityLevel;
use chet_runtime::exec::{clean_output_required, required_margin_for, ExecPlan};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.nets == 5 {
        args.nets = 2; // default to the light networks; override with --nets
    }
    let backend = if args.sim { BackendChoice::Sim } else { BackendChoice::Rns };
    println!("== Ablation: eager vs lazy masking (HW layout, RNS-CKKS) ==\n");
    let scales = harness_scales();
    let mut rows = Vec::new();
    for net in args.networks() {
        let layouts = policy_layouts(&net.circuit, LayoutPolicy::Hw);
        let outcome = select_parameters(
            &net.circuit,
            &layouts,
            &scales,
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            harness_precision(),
        )
        .expect("compiles");
        let plan = ExecPlan {
            layouts: layouts.clone(),
            scales,
            margin: required_margin_for(&net.circuit),
        };
        let masks_needed =
            clean_output_required(&net.circuit, &plan).iter().filter(|&&b| b).count();
        let maskable = net
            .circuit
            .ops()
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    chet_tensor::circuit::Op::Conv2d { .. }
                        | chet_tensor::circuit::Op::AvgPool2d { .. }
                )
            })
            .count();
        let keys = select_rotation_keys(&outcome);
        let image = net.sample_image(3);
        let (_, t_lazy) = time_inference(
            backend,
            &outcome.params,
            &keys,
            &net.circuit,
            &plan,
            &image,
            5,
        );
        rows.push(vec![
            net.name.to_string(),
            format!("{maskable}"),
            format!("{masks_needed}"),
            format!("{:.0}", outcome.consumed_log2),
            format!("N={}, r={}", outcome.params.degree, outcome.params.modulus.chain_len()),
            fmt_dur(t_lazy),
        ]);
    }
    print_table(
        &[
            "Network",
            "maskable ops",
            "masks kept (lazy)",
            "consumed bits",
            "params",
            "latency (lazy)",
        ],
        &rows,
    );
    println!(
        "\nEager masking would multiply every maskable op by a P_m mask, adding \
         ~log2(P_m) bits of modulus per op; the lazy analysis keeps only the masks \
         a consumer (Same-padding conv, concat, layout conversion) requires."
    );
}
