//! Cross-request batch-packing benchmark — `BENCH_serve.json`.
//!
//! Two claims, each measured where it is actually decidable:
//!
//! 1. **Identity** — coalescing is a pure layout transformation: member
//!    `k` of a packed batch computes exactly the slot arithmetic a solo
//!    run computes. That is asserted **bitwise** through the full
//!    `InferenceService` (admission queue, coalescing worker, response
//!    fan-out) on the exact simulator backend at `max_batch` 1, 4 and 8.
//! 2. **Throughput** — every ciphertext op costs O(slots) no matter how
//!    many batch members share the vector, so packing 8 requests into one
//!    encrypted run should approach 8× the inferences/sec of 8 solo runs.
//!    That is measured open-loop on the **real RNS backend** (reduced
//!    LeNet-5-small): N client threads each submit one request at the same
//!    instant and wait, so arrivals are independent of completions and the
//!    admission queue actually fills. The ci.sh acceptance bar is batch-8
//!    ≥ 3× batch-1.
//!
//! Bit-identity is *not* asserted on RNS: fresh encryption noise is drawn
//! per ciphertext, and solo and batched runs encrypt different vectors, so
//! their decrypted floats agree only to the scheme's precision envelope
//! (the same ~1e-1 envelope the solo run has against plaintext — measured
//! and recorded here as `rns_max_dev_vs_batch1`, with zero degraded
//! rotations). RNS responses are snapped to `ServeConfig::output_quantum`
//! (recorded in the JSON) so idempotency digests and journal replay see
//! stable bytes.
//!
//! Usage: `cargo run --release --bin bench_serve [--requests N] [--linger-ms MS]`

use chet_ckks::rns::RnsCkks;
use chet_ckks::sim::SimCkks;
use chet_compiler::{CompiledCircuit, Compiler};
use chet_hisa::params::SchemeKind;
use chet_hisa::Hisa;
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{InferenceService, ServeConfig, WatchdogConfig};
use chet_tensor::Tensor;
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn arg_or(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct ConfigResult {
    max_batch: usize,
    wall: Duration,
    p50: Duration,
    p99: Duration,
    ips: f64,
    batches_formed: u64,
    batched_requests: u64,
    outputs: Vec<Tensor>,
}

/// Open-loop run: every client thread submits at the same barrier release
/// and waits for its own response. Returns per-request outputs in
/// submission-index order so configurations are comparable.
fn run_config<H, F>(
    max_batch: usize,
    requests: usize,
    linger: Duration,
    quantum: Option<f64>,
    factory: F,
) -> ConfigResult
where
    H: Hisa + 'static,
    F: Fn(usize, &CompiledCircuit) -> H + Send + Sync + 'static,
{
    let net = chet_networks::try_reduced("LeNet-5-small").expect("known network");
    let config = ServeConfig {
        workers: 1,
        queue_capacity: requests.max(8) * 2,
        max_batch,
        max_linger: if max_batch > 1 { linger } else { Duration::ZERO },
        output_quantum: quantum,
        // RNS key generation happens lazily on the worker's first job and
        // can outlast the default 10 s stall timeout; this bench is not
        // exercising the watchdog, so give it generous slack.
        watchdog: WatchdogConfig {
            stall_timeout: Duration::from_secs(300),
            quarantine_after: Duration::from_secs(300),
            ..WatchdogConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = InferenceService::start_with_compiler(
        Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20)),
        net.circuit.clone(),
        ScaleConfig::from_log2(25, 12, 12, 10),
        config,
        factory,
    )
    .expect("service starts");

    // Warmup: builds the worker's backend (keys, NTT tables) off the clock.
    service.submit(net.sample_image(999)).expect("warmup submit").wait().expect("warmup response");

    let service = Arc::new(service);
    let barrier = Arc::new(Barrier::new(requests + 1));
    let mut handles = Vec::new();
    for i in 0..requests {
        let svc = Arc::clone(&service);
        let gate = Arc::clone(&barrier);
        let image = net.sample_image(i as u64);
        handles.push(std::thread::spawn(move || {
            gate.wait();
            let start = Instant::now();
            let ticket = svc.submit(image).expect("submit");
            let resp = ticket.wait().expect("response");
            (i, resp.output, start.elapsed())
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut joined: Vec<(usize, Tensor, Duration)> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();
    let wall = start.elapsed();
    joined.sort_by_key(|(i, _, _)| *i);
    let outputs: Vec<Tensor> = joined.iter().map(|(_, t, _)| t.clone()).collect();
    let mut lat: Vec<Duration> = joined.iter().map(|(_, _, d)| *d).collect();
    lat.sort();
    let stats = match Arc::try_unwrap(service) {
        Ok(svc) => svc.shutdown(),
        Err(_) => unreachable!("all clients joined"),
    };
    ConfigResult {
        max_batch,
        wall,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        ips: requests as f64 / wall.as_secs_f64().max(1e-9),
        batches_formed: stats.batches_formed,
        batched_requests: stats.batched_requests,
        outputs,
    }
}

fn max_dev(a: &[Tensor], b: &[Tensor]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.data().iter().zip(y.data()).map(|(p, q)| (p - q).abs()))
        .fold(0.0, f64::max)
}

fn main() {
    let requests = arg_or("--requests", 16) as usize;
    let linger = Duration::from_millis(arg_or("--linger-ms", 150));
    // RNS responses snap to this quantum for digest stability; output
    // magnitudes are O(1), so 2^-10 is far below signal.
    let quantum = 2f64.powi(-10);
    let batches = [1usize, 4, 8];

    // Phase 1: bitwise identity through the full service on the exact
    // backend (deterministic, noise-free — the correctness oracle).
    println!("== Phase 1: service-level bit-identity (exact simulator backend) ==\n");
    let sim: Vec<ConfigResult> = batches
        .iter()
        .map(|&mb| {
            run_config(mb, requests, linger, None, |_, compiled: &CompiledCircuit| {
                SimCkks::new(&compiled.params, &compiled.rotation_keys, 42).without_noise()
            })
        })
        .collect();
    let mut bit_identical = true;
    for r in &sim[1..] {
        for (i, (got, want)) in r.outputs.iter().zip(&sim[0].outputs).enumerate() {
            if got.data() != want.data() {
                bit_identical = false;
                println!("  !! max_batch {} request {i}: diverges from batch-1", r.max_batch);
            }
        }
        println!(
            "  max_batch {:>2}: {} batches formed, {} batched requests, bitwise == batch-1: {}",
            r.max_batch,
            r.batches_formed,
            r.batched_requests,
            max_dev(&r.outputs, &sim[0].outputs) == 0.0
        );
    }

    // Phase 2: open-loop throughput on the real RNS backend.
    println!("\n== Phase 2: open-loop throughput, reduced LeNet-5-small on RNS ({requests} requests/config) ==\n");
    let mut results = Vec::new();
    for &mb in &batches {
        let r = run_config(mb, requests, linger, Some(quantum), |_, compiled: &CompiledCircuit| {
            RnsCkks::new(&compiled.params, &compiled.rotation_keys, 42)
        });
        println!(
            "  max_batch {:>2}: {:>6.2} inf/s   p50 {:>8.1} ms   p99 {:>8.1} ms   \
             ({} batches, {} batched requests, wall {:.2} s)",
            r.max_batch,
            r.ips,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.batches_formed,
            r.batched_requests,
            r.wall.as_secs_f64()
        );
        results.push(r);
    }
    // Noise envelope of batched RNS vs solo RNS (structural problems —
    // e.g. degraded rotations — would blow far past the solo-vs-plain
    // envelope of ~1e-1 at these scales).
    let rns_dev: Vec<f64> = results.iter().map(|r| max_dev(&r.outputs, &results[0].outputs)).collect();
    let speedup = results[2].ips / results[0].ips.max(1e-9);
    println!(
        "\n  sim bit-identical across batch sizes: {bit_identical}\n  \
         rns max deviation vs batch-1: {:?}\n  \
         batch-8 speedup over batch-1: {speedup:.2}x",
        &rns_dev[1..]
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_batching\",");
    let _ = writeln!(json, "  \"network\": \"LeNet-5-small (reduced)\",");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"bit_identical\": {bit_identical},");
    let _ = writeln!(json, "  \"bit_identity_backend\": \"sim-exact\",");
    let _ = writeln!(json, "  \"output_quantum\": {quantum:e},");
    let _ = writeln!(json, "  \"results\": [");
    for (k, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"max_batch\": {}, \"backend\": \"rns\", \"inferences_per_sec\": {:.3}, \
             \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"wall_ms\": {:.1}, \"batches_formed\": {}, \
             \"batched_requests\": {}, \"rns_max_dev_vs_batch1\": {:.6}}}{}",
            r.max_batch,
            r.ips,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.wall.as_secs_f64() * 1e3,
            r.batches_formed,
            r.batched_requests,
            rns_dev[k],
            if k + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_batch8_over_batch1\": {speedup:.3}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
