//! Figure 7 — speedup of CHET-selected rotation keys over the default
//! power-of-two key set.
//!
//! Expected shape (paper): selecting exactly the rotation keys a circuit
//! needs gives a geometric-mean speedup of ~1.8× across networks and
//! schemes, because non-power-of-two rotations no longer decompose into
//! several power-of-two rotations — while the number of keys stays within
//! a small factor of `log N`.

use chet_bench::{average_latency, fmt_dur, harness_precision, harness_scales, print_table, BackendChoice, HarnessArgs};
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_hisa::RotationKeyPolicy;

fn main() {
    let args = HarnessArgs::parse();
    let scales = harness_scales();
    println!("== Figure 7: selected rotation keys vs power-of-two keys ==\n");
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (label, kind, backend) in [
        ("CHET-SEAL", SchemeKind::RnsCkks, BackendChoice::Rns),
        ("CHET-HEAAN", SchemeKind::Ckks, BackendChoice::Big),
    ] {
        let backend = if args.sim { BackendChoice::Sim } else { backend };
        for net in args.networks() {
            let compiled = Compiler::new(kind)
                .with_output_precision(harness_precision())
                .compile(&net.circuit, &scales)
                .expect("compiles");
            let exact_keys = match &compiled.rotation_keys {
                RotationKeyPolicy::Exact(s) => s.len(),
                _ => unreachable!(),
            };
            let t_exact = average_latency(backend, &compiled, &net.circuit, &net, args.images);
            eprintln!("[cell] {label} {} exact: {}", net.name, fmt_dur(t_exact));
            let mut pow2 = compiled.clone();
            pow2.rotation_keys = RotationKeyPolicy::PowersOfTwo;
            let pow2_keys = pow2.rotation_keys.key_count(pow2.params.slots());
            let t_pow2 = average_latency(backend, &pow2, &net.circuit, &net, args.images);
            eprintln!("[cell] {label} {} pow2: {}", net.name, fmt_dur(t_pow2));
            let speedup = t_pow2.as_secs_f64() / t_exact.as_secs_f64().max(1e-9);
            ratios.push(speedup);
            rows.push(vec![
                format!("{label} / {}", net.name),
                fmt_dur(t_exact),
                fmt_dur(t_pow2),
                format!("{speedup:.2}x"),
                exact_keys.to_string(),
                pow2_keys.to_string(),
            ]);
        }
    }
    print_table(
        &["Scheme / Network", "exact keys", "pow2 keys", "speedup", "#keys (exact)", "#keys (pow2)"],
        &rows,
    );
    let geomean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!(
        "\ngeometric-mean speedup: {:.2}x  (paper Fig. 7: ~1.8x)",
        geomean.exp()
    );
}
