//! Table 4 — encryption parameters `N`, `log Q` selected by CHET per
//! network (HEAAN-style CKKS target) and the fixed-point scale exponents.
//!
//! Expected shape (paper): `N` and `log Q` grow with circuit depth — from
//! `N = 8192, log Q = 240` (LeNet-5-small) up to `N = 32768, log Q = 940`
//! (SqueezeNet-CIFAR). Absolute values differ because our kernels' rescale
//! discipline and mask scales differ from the authors' implementation; the
//! monotone growth with depth is the reproduced claim.

use chet_bench::{harness_precision, harness_scales, print_table, HarnessArgs};
use chet_compiler::Compiler;
use chet_hisa::params::{ModulusSpec, SchemeKind};

fn main() {
    let args = HarnessArgs::parse();
    let nets = args.networks();
    let paper: &[(&str, u32, u32)] = &[
        ("LeNet-5-small", 8192, 240),
        ("LeNet-5-medium", 8192, 240),
        ("LeNet-5-large", 16384, 400),
        ("Industrial", 32768, 705),
        ("SqueezeNet-CIFAR", 32768, 940),
    ];

    println!("== Table 4: encryption parameters selected by CHET (CKKS/HEAAN target) ==\n");
    let scales = harness_scales();
    let mut rows = Vec::new();
    for (i, net) in nets.iter().enumerate() {
        let compiled = Compiler::new(SchemeKind::Ckks)
            .with_output_precision(harness_precision())
            .compile(&net.circuit, &scales)
            .expect("network compiles for CKKS");
        let (n, log_q) = match compiled.params.modulus {
            ModulusSpec::PowerOfTwo { log_q, .. } => (compiled.params.degree, log_q),
            _ => unreachable!("CKKS target yields a power-of-two modulus"),
        };
        let (pn, pq) = paper.get(i).map(|&(_, n, q)| (n, q)).unwrap_or((0, 0));
        rows.push(vec![
            net.name.to_string(),
            n.to_string(),
            log_q.to_string(),
            format!("{pn}"),
            format!("{pq}"),
            format!("{:.0}", compiled.outcome.consumed_log2),
            format!("{}", compiled.policy),
        ]);
    }
    print_table(
        &["Network", "N (ours)", "log Q (ours)", "N (paper)", "log Q (paper)", "consumed bits", "layout"],
        &rows,
    );

    println!("\n-- fixed-point scales in use (log2 of P_c, P_w, P_u, P_m) --");
    println!(
        "P_c = {:.0}, P_w = {:.0}, P_u = {:.0}, P_m = {:.0}   (paper Table 4 per-network values: 30-40 / 16-25 / 15-20 / 8-10)",
        scales.input.log2(),
        scales.weight_plain.log2(),
        scales.weight_scalar.log2(),
        scales.mask.log2(),
    );

    println!("\n-- RNS-CKKS (SEAL target) chain selections --");
    let mut rows = Vec::new();
    for net in &nets {
        let compiled = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(harness_precision())
            .compile(&net.circuit, &scales)
            .expect("network compiles for RNS-CKKS");
        match &compiled.params.modulus {
            ModulusSpec::PrimeChain { primes, .. } => rows.push(vec![
                net.name.to_string(),
                compiled.params.degree.to_string(),
                primes.len().to_string(),
                format!("{:.0}", compiled.params.modulus.log_q()),
                format!("{}", compiled.policy),
            ]),
            _ => unreachable!(),
        }
    }
    print_table(&["Network", "N", "chain length r", "log Q", "layout"], &rows);
}
