//! Figure 6 — estimated cost vs observed latency across (network × layout)
//! points.
//!
//! Expected shape (paper): the compiler's cost estimates and the measured
//! latencies are highly correlated (the paper shows a tight log-log trend),
//! validating cost-model-driven layout selection.

use chet_bench::{average_latency, harness_precision, harness_scales, pearson, print_table, spearman, BackendChoice, HarnessArgs};
use chet_compiler::layout::enumerate_layouts;
use chet_compiler::{select_rotation_keys, CompiledCircuit};
use chet_hisa::cost::CostModel;
use chet_hisa::params::SchemeKind;
use chet_hisa::SecurityLevel;

fn main() {
    let args = HarnessArgs::parse();
    let backend = if args.sim { BackendChoice::Sim } else { BackendChoice::Rns };
    println!("== Figure 6: estimated cost vs observed latency (RNS-CKKS) ==\n");
    let scales = harness_scales();
    let cost_model = CostModel::for_scheme(SchemeKind::RnsCkks);

    let mut rows = Vec::new();
    let mut est = Vec::new();
    let mut obs = Vec::new();
    for net in args.networks() {
        let choices = enumerate_layouts(
            &net.circuit,
            &scales,
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            harness_precision(),
            &cost_model,
        )
        .expect("compiles");
        for choice in &choices {
            let compiled = CompiledCircuit {
                plan: choice.plan.clone(),
                params: choice.outcome.params.clone(),
                rotation_keys: select_rotation_keys(&choice.outcome),
                policy: choice.policy,
                estimated_cost: choice.estimated_cost,
                outcome: choice.outcome.clone(),
                output_precision: harness_precision(),
                pruned_rotations: Vec::new(),
            };
            let dt = average_latency(backend, &compiled, &net.circuit, &net, args.images);
            eprintln!("[cell] {} / {}: {}", net.name, choice.policy, dt.as_secs_f64());
            est.push(choice.estimated_cost.ln());
            obs.push(dt.as_secs_f64().max(1e-9).ln());
            rows.push(vec![
                net.name.to_string(),
                format!("{}", choice.policy),
                format!("{:.3e}", choice.estimated_cost),
                format!("{:.3}", dt.as_secs_f64()),
            ]);
        }
    }
    print_table(&["Network", "Layout", "Estimated cost", "Latency (s)"], &rows);
    println!(
        "\nlog-log Pearson r = {:.3}, Spearman rho = {:.3}  ({} points)",
        pearson(&est, &obs),
        spearman(&est, &obs),
        est.len()
    );
    println!("Expected shape: strong positive correlation (paper: 'highly correlated').");
}
