//! Ablation — dense-layer strategies (DESIGN.md §7).
//!
//! Compares the per-output rotate-reduce dense kernel (general: any
//! layout) against the baby-step/giant-step diagonal kernel (contiguous
//! inputs only): HISA op counts on the simulator and wall time on the real
//! RNS-CKKS backend. Rotations dominate FHE cost, so the `~2·sqrt(n)` vs
//! `out·log(n)` rotation counts decide the winner.

use chet_bench::{fmt_dur, print_table};
use chet_ckks::rns::RnsCkks;
use chet_ckks::sim::SimCkks;
use chet_hisa::cost::HisaOp;
use chet_hisa::{EncryptionParams, Hisa, RotationKeyPolicy, SecurityLevel};
use chet_runtime::ciphertensor::encrypt_tensor;
use chet_runtime::kernels::matmul::{hmatmul, hmatmul_bsgs};
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::layout::Layout;
use chet_tensor::Tensor;
use std::time::Instant;

fn main() {
    println!("== Ablation: dense-layer kernels (rotate-reduce vs BSGS diagonals) ==\n");
    let scales = ScaleConfig::from_log2(25, 12, 12, 10);
    let mut rows = Vec::new();
    for (inp, out) in [(64usize, 16usize), (128, 32), (256, 64)] {
        let x = Tensor::from_fn(vec![inp, 1, 1], |i| (i[0] % 13) as f64 * 0.05 - 0.3);
        let w = Tensor::from_fn(vec![out, inp], |i| ((i[0] + i[1] * 3) % 9) as f64 * 0.1 - 0.4);

        // Op counts on the simulator.
        let params = EncryptionParams::rns_ckks(8192, 30, 4).with_security(SecurityLevel::Insecure);
        let count_rots = |bsgs: bool| {
            let mut h = SimCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 1).without_noise();
            let layout = Layout::dense_vector(inp, h.slots());
            let enc = encrypt_tensor(&mut h, &x, &layout, scales.input);
            if bsgs {
                let _ = hmatmul_bsgs(&mut h, &enc, &w, None, &scales);
            } else {
                let _ = hmatmul(&mut h, &enc, &w, None, &scales);
            }
            (h.op_count(HisaOp::Rotate), h.op_count(HisaOp::MulPlain))
        };
        let (std_rots, std_muls) = count_rots(false);
        let (bsgs_rots, bsgs_muls) = count_rots(true);

        // Wall time on the real backend (exact keys for each strategy).
        let time_real = |bsgs: bool| {
            let probe =
                SimCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 1).without_noise();
            let layout = Layout::dense_vector(inp, probe.slots());
            // Collect the exact rotation steps by replaying on the analyzer-ish sim.
            let steps: std::collections::BTreeSet<usize> = {
                let mut az = chet_compiler::analysis::Analyzer::new(
                    probe.slots(),
                    chet_compiler::analysis::RescaleModel::PowerOfTwo,
                );
                let enc = encrypt_tensor(&mut az, &x, &layout, scales.input);
                if bsgs {
                    let _ = hmatmul_bsgs(&mut az, &enc, &w, None, &scales);
                } else {
                    let _ = hmatmul(&mut az, &enc, &w, None, &scales);
                }
                az.rotations.clone()
            };
            let mut h = RnsCkks::new(&params, &RotationKeyPolicy::Exact(steps), 7);
            let enc = encrypt_tensor(&mut h, &x, &layout, scales.input);
            let t0 = Instant::now();
            if bsgs {
                let _ = hmatmul_bsgs(&mut h, &enc, &w, None, &scales);
            } else {
                let _ = hmatmul(&mut h, &enc, &w, None, &scales);
            }
            t0.elapsed()
        };
        let t_std = time_real(false);
        let t_bsgs = time_real(true);

        rows.push(vec![
            format!("{inp} -> {out}"),
            format!("{std_rots} rot / {std_muls} pmul"),
            format!("{bsgs_rots} rot / {bsgs_muls} pmul"),
            fmt_dur(t_std),
            fmt_dur(t_bsgs),
            format!("{:.2}x", t_std.as_secs_f64() / t_bsgs.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(
        &["Layer", "rotate-reduce ops", "BSGS ops", "rotate-reduce", "BSGS", "speedup"],
        &rows,
    );
    println!(
        "\nExpected shape: BSGS trades plaintext multiplies for rotations and wins \
         as the layer grows (rotations are the expensive primitive, Table 1)."
    );
}
