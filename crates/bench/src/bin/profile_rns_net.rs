//! Per-op wall-clock attribution for one end-to-end encrypted inference —
//! the measurement-side complement of the static cost model.
//!
//! Wraps the real RNS-CKKS backend in a timing shim that buckets every
//! HISA call by op family (forwarding the batched rotation entry points so
//! hoisted key switching still fires), runs the reduced LeNet-5-small
//! through the same executor path `bench_rns_ops` times, and prints where
//! the seconds actually go. Use this when the calibration gate's
//! measured-vs-predicted gap moves: it says *which* op family the static
//! model is mispricing.

use chet_ckks::rns::RnsCkks;
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_hisa::{Hisa, HisaError};
use chet_runtime::exec::{try_encrypt_input, try_run_encrypted_with, ExecControl};
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::par::set_threads;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Timing wrapper: forwards every op to the inner backend and accumulates
/// wall-clock per bucket. Single-threaded by construction (`fork` returns
/// `None`), so the buckets sum to the run's critical path.
struct Timed {
    inner: RnsCkks,
    buckets: BTreeMap<&'static str, (u64, Duration)>,
}

impl Timed {
    fn new(inner: RnsCkks) -> Self {
        Timed { inner, buckets: BTreeMap::new() }
    }

    fn time<T>(&mut self, bucket: &'static str, ops: u64, f: impl FnOnce(&mut RnsCkks) -> T) -> T {
        let t0 = Instant::now();
        let out = f(&mut self.inner);
        let e = self.buckets.entry(bucket).or_insert((0, Duration::ZERO));
        e.0 += ops;
        e.1 += t0.elapsed();
        out
    }

    fn report(&self) {
        let total: Duration = self.buckets.values().map(|&(_, d)| d).sum();
        println!("per-op wall-clock attribution (total in-op {:.2} s):", total.as_secs_f64());
        let mut rows: Vec<_> = self.buckets.iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1));
        for (name, (count, dur)) in rows {
            println!(
                "  {name:>14}  x{count:<6} {:>9.1} ms  ({:>5.1}%)",
                dur.as_secs_f64() * 1e3,
                100.0 * dur.as_secs_f64() / total.as_secs_f64().max(f64::MIN_POSITIVE),
            );
        }
    }
}

impl Hisa for Timed {
    type Ct = <RnsCkks as Hisa>::Ct;
    type Pt = <RnsCkks as Hisa>::Pt;

    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> Self::Pt {
        self.time("encode", 1, |h| h.encode(values, scale))
    }

    fn decode(&mut self, p: &Self::Pt) -> Vec<f64> {
        self.inner.decode(p)
    }

    fn encrypt(&mut self, p: &Self::Pt) -> Self::Ct {
        self.inner.encrypt(p)
    }

    fn decrypt(&mut self, c: &Self::Ct) -> Self::Pt {
        self.inner.decrypt(c)
    }

    fn rot_left(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.time("rotate", 1, |h| h.rot_left(c, x))
    }

    fn rot_right(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.time("rotate", 1, |h| h.rot_right(c, x))
    }

    fn rot_left_many(&mut self, c: &Self::Ct, steps: &[usize]) -> Vec<Self::Ct> {
        self.time("rotateBatched", steps.len() as u64, |h| h.rot_left_many(c, steps))
    }

    fn rot_right_many(&mut self, c: &Self::Ct, steps: &[usize]) -> Vec<Self::Ct> {
        self.time("rotateBatched", steps.len() as u64, |h| h.rot_right_many(c, steps))
    }

    fn try_rot_left_many(
        &mut self,
        c: &Self::Ct,
        steps: &[usize],
    ) -> Result<Vec<Self::Ct>, HisaError> {
        self.time("rotateBatched", steps.len() as u64, |h| h.try_rot_left_many(c, steps))
    }

    fn try_rot_right_many(
        &mut self,
        c: &Self::Ct,
        steps: &[usize],
    ) -> Result<Vec<Self::Ct>, HisaError> {
        self.time("rotateBatched", steps.len() as u64, |h| h.try_rot_right_many(c, steps))
    }

    fn add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.time("add", 1, |h| h.add(a, b))
    }

    fn add_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        self.time("add", 1, |h| h.add_assign(a, b))
    }

    fn sub_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        self.time("add", 1, |h| h.sub_assign(a, b))
    }

    fn add_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        self.time("add", 1, |h| h.add_plain_assign(a, p))
    }

    fn sub_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        self.time("add", 1, |h| h.sub_plain_assign(a, p))
    }

    fn mul_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        self.time("mulPlain", 1, |h| h.mul_plain_assign(a, p))
    }

    fn add_scalar_assign(&mut self, a: &mut Self::Ct, x: f64) {
        self.time("add", 1, |h| h.add_scalar_assign(a, x))
    }

    fn sub_scalar_assign(&mut self, a: &mut Self::Ct, x: f64) {
        self.time("add", 1, |h| h.sub_scalar_assign(a, x))
    }

    fn mul_scalar_assign(&mut self, a: &mut Self::Ct, x: f64, scale: f64) {
        self.time("mulScalar", 1, |h| h.mul_scalar_assign(a, x, scale))
    }

    fn add_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.time("add", 1, |h| h.add_plain(a, p))
    }

    fn add_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.time("add", 1, |h| h.add_scalar(a, x))
    }

    fn sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.time("add", 1, |h| h.sub(a, b))
    }

    fn sub_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.time("add", 1, |h| h.sub_plain(a, p))
    }

    fn sub_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.time("add", 1, |h| h.sub_scalar(a, x))
    }

    fn mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.time("mul", 1, |h| h.mul(a, b))
    }

    fn mul_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.time("mulPlain", 1, |h| h.mul_plain(a, p))
    }

    fn mul_scalar(&mut self, a: &Self::Ct, x: f64, scale: f64) -> Self::Ct {
        self.time("mulScalar", 1, |h| h.mul_scalar(a, x, scale))
    }

    fn rescale(&mut self, c: &Self::Ct, divisor: f64) -> Self::Ct {
        self.time("rescale", 1, |h| h.rescale(c, divisor))
    }

    fn max_rescale(&mut self, c: &Self::Ct, ub: f64) -> f64 {
        self.inner.max_rescale(c, ub)
    }

    fn scale_of(&self, c: &Self::Ct) -> f64 {
        self.inner.scale_of(c)
    }

    fn available_rotations(&self) -> Option<std::collections::BTreeSet<usize>> {
        self.inner.available_rotations()
    }

    // No forking: every op runs (and is timed) on this wrapper.
}

fn main() {
    set_threads(1);
    let net = chet_networks::try_reduced("LeNet-5-small").expect("known network");
    let scales = ScaleConfig::from_log2(25, 12, 12, 10);
    let compiled = Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(2f64.powi(25))
        .compile(&net.circuit, &scales)
        .expect("LeNet-5-small compiles");
    println!(
        "reduced LeNet-5-small: N={}, chain={}, {} rotation keys",
        compiled.params.degree,
        compiled.params.modulus.chain_len(),
        compiled.rotation_keys.steps(compiled.params.degree / 2).len(),
    );
    let image = net.sample_image(11);

    let mut h = Timed::new(RnsCkks::new(&compiled.params, &compiled.rotation_keys, 7));
    let input =
        try_encrypt_input(&mut h, &net.circuit, &compiled.plan, &image).expect("input encrypts");
    let t0 = Instant::now();
    let _ = try_run_encrypted_with(&mut h, &net.circuit, &compiled.plan, input, &mut ExecControl::none())
        .expect("encrypted run succeeds");
    println!("end-to-end: {:.2} s", t0.elapsed().as_secs_f64());
    h.report();
}
