//! RNS-CKKS op calibration benchmark — `BENCH_rns_ops.json`.
//!
//! Microbenchmarks every HISA primitive on the real RNS-CKKS backend
//! across (ring degree, chain length) configurations, fits the per-op
//! microsecond constants of the static cost model
//! ([`chet_hisa::cost::calibrate`]), and then closes the loop: it prices
//! the reduced LeNet-5-small circuit with the calibrated model
//! ([`chet_compiler::ir::cost::estimate`]) and compares the prediction
//! against a measured end-to-end encrypted run on the same backend.
//!
//! The emitted `BENCH_rns_ops.json` is the calibration artifact `ci.sh`
//! gates on: per-op fit quality (`max_rel_err`) and whole-network
//! prediction error (`network.rel_err`, required ≤ 0.30 by the paper
//! repro's acceptance bar) are both checked against committed bounds.

use chet_bench::{fmt_dur, print_table, HarnessArgs};
use chet_ckks::rns::RnsCkks;
use chet_compiler::ir::{cost as ir_cost, extract_ir, ExtractMode};
use chet_compiler::Compiler;
use chet_hisa::cost::{calibrate, CostSample, HisaOp, LevelInfo, ALL_OPS};
use chet_hisa::json::Json;
use chet_hisa::params::SchemeKind;
use chet_hisa::{EncryptionParams, Hisa, RotationKeyPolicy, SecurityLevel};
use chet_runtime::exec::{try_encrypt_input, try_run_encrypted_with, ExecControl};
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::par::set_threads;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn bench_op(mut f: impl FnMut(), reps: usize) -> Duration {
    // Warmup.
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed() / reps as u32
}

/// Measures every HISA op on a fresh RNS-CKKS context at `(n, r)` and
/// returns one [`CostSample`] per op, all at the fresh-ciphertext modulus
/// state (full chain — the state the microbenchmark operands are in).
fn sample_config(n: usize, r: usize, prime_bits: u32, reps: usize) -> Vec<CostSample> {
    let params =
        EncryptionParams::rns_ckks(n, prime_bits, r).with_security(SecurityLevel::Insecure);
    // Several distinct rotation keys, cycled below: real inference streams a
    // different key almost every rotation, so a single hot key would
    // under-measure the memory-bound key-switch cost by nearly half.
    const KEY_STEPS: usize = 8;
    let policy = RotationKeyPolicy::Exact((1..=KEY_STEPS).collect());
    let mut h = RnsCkks::new(&params, &policy, 7);

    let scale = 2f64.powi(i32::try_from(prime_bits).unwrap_or(40));
    let slots = n / 2;
    let vals: Vec<f64> = (0..slots).map(|i| (i % 64) as f64 * 0.01).collect();
    let pt = h.encode(&vals, scale);
    let a = h.encrypt(&pt);
    let b = h.encrypt(&pt);
    // Rescale needs a ciphertext whose scale can drop by one chain prime:
    // the ct×ct product at scale² qualifies; `max_rescale` picks the
    // divisor the backend would actually use (one prime off the chain).
    let prod = h.mul(&a, &b);
    let divisor = h.max_rescale(&prod, 2f64.powi(i32::try_from(prime_bits + 1).unwrap_or(41)));

    let lvl = LevelInfo { log_q: f64::from(prime_bits) * r as f64, rns_len: r };
    // Cycle through the keyed steps so every rotation pulls a different key,
    // like the network does.
    let mut next_step = 0usize;
    let t_rotate = bench_op(
        || {
            next_step = next_step % KEY_STEPS + 1;
            drop(h.rot_left(&a, next_step));
        },
        reps * KEY_STEPS,
    );
    // Hoisted rotations: one batched call rotating the same ciphertext by
    // every keyed step shares a single key-switch decomposition; the
    // per-extra-rotation cost beyond the first full rotation is the
    // `rotateHoisted` sample.
    let steps: Vec<usize> = (1..=KEY_STEPS).collect();
    let t_batch = bench_op(|| drop(h.rot_left_many(&a, &steps)), reps);
    let t_hoisted = t_batch.saturating_sub(t_rotate) / (KEY_STEPS as u32 - 1);
    let timed: Vec<(HisaOp, Duration)> = vec![
        (HisaOp::Add, bench_op(|| drop(h.add(&a, &b)), reps)),
        (HisaOp::MulScalar, bench_op(|| drop(h.mul_scalar(&a, 1.5, scale)), reps)),
        (HisaOp::MulPlain, bench_op(|| drop(h.mul_plain(&a, &pt)), reps)),
        (HisaOp::MulCipher, bench_op(|| drop(h.mul(&a, &b)), reps)),
        (HisaOp::Rotate, t_rotate),
        (HisaOp::Rescale, bench_op(|| drop(h.rescale(&prod, divisor)), reps)),
        (HisaOp::Encode, bench_op(|| drop(h.encode(&vals, scale)), reps)),
        (HisaOp::RotateHoisted, t_hoisted),
    ];
    timed
        .into_iter()
        .map(|(op, t)| CostSample { op, n, lvl, measured_us: t.as_secs_f64() * 1e6 })
        .collect()
}

/// Times one end-to-end encrypted inference of the reduced network on the
/// real RNS-CKKS backend (input encryption excluded — the cost model
/// prices the circuit body, not the client-side encrypt).
fn measure_network(model: &chet_hisa::cost::CostModel, reps: usize) -> (String, f64, f64) {
    let net = chet_networks::try_reduced("LeNet-5-small").expect("known network");
    let scales = ScaleConfig::from_log2(25, 12, 12, 10);
    let compiled = Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(2f64.powi(25))
        .compile(&net.circuit, &scales)
        .expect("LeNet-5-small compiles");
    let image = net.sample_image(11);

    // One backend across all reps: the first inference warms the limb pool
    // (and is discarded), the rest measure steady-state latency. The median
    // damps the large run-to-run variance of a multi-second single-core run.
    let mut h = RnsCkks::new(&compiled.params, &compiled.rotation_keys, 7);
    let mut times = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let input = try_encrypt_input(&mut h, &net.circuit, &compiled.plan, &image)
            .expect("input encrypts");
        let t0 = Instant::now();
        let _ = try_run_encrypted_with(
            &mut h,
            &net.circuit,
            &compiled.plan,
            input,
            &mut ExecControl::none(),
        )
        .expect("encrypted run succeeds");
        if rep > 0 {
            times.push(t0.elapsed());
        }
    }
    times.sort();
    let measured_us = times[times.len() / 2].as_secs_f64() * 1e6;

    let ir = extract_ir(&net.circuit, &compiled, ExtractMode::Metadata).expect("IR extracts");
    let breakdown = ir_cost::estimate(&ir, model);
    for line in breakdown.render_text(3).lines() {
        println!("  {line}");
    }
    (net.name.to_string(), measured_us, breakdown.total_us)
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = if args.full { 20 } else { 5 };
    let net_reps = if args.full { 5 } else { 3 };
    // The static model prices sequential op streams; pin the runtime to
    // one thread so measured and predicted describe the same execution.
    set_threads(1);

    println!("== RNS-CKKS cost-model calibration ==\n");

    let prime_bits = 40u32;
    // (16384, 8) anchors the fit near the reduced network's own operating
    // point (N=16384, chain 10); without it the r≤4 configs extrapolate a
    // 3× span in the rotation weight r·(r+log n).
    let configs: &[(usize, usize)] = if args.full {
        &[(4096, 2), (8192, 2), (8192, 4), (16384, 4), (16384, 8)]
    } else {
        &[(4096, 2), (8192, 2), (8192, 4), (16384, 8)]
    };

    let mut samples = Vec::new();
    for &(n, r) in configs {
        println!("sampling N={n}, r={r} ({reps} reps/op)...");
        samples.extend(sample_config(n, r, prime_bits, reps));
    }

    let (model, fits) = calibrate(SchemeKind::RnsCkks, &samples);

    println!("\nper-op fits (least-squares through the origin):");
    let fit_rows: Vec<Vec<String>> = fits
        .iter()
        .map(|f| {
            vec![
                f.op.to_string(),
                format!("{:.4}", f.constant),
                f.samples.to_string(),
                format!("{:.1}%", f.max_rel_err * 100.0),
            ]
        })
        .collect();
    print_table(&["op", "µs constant", "samples", "max rel err"], &fit_rows);

    println!("\nper-sample predictions:");
    let sample_rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let pred = model.op_cost(s.op, s.n, s.lvl);
            vec![
                s.op.to_string(),
                format!("N={}, r={}", s.n, s.lvl.rns_len),
                fmt_dur(Duration::from_secs_f64(s.measured_us / 1e6)),
                fmt_dur(Duration::from_secs_f64(pred / 1e6)),
            ]
        })
        .collect();
    print_table(&["op", "config", "measured", "predicted"], &sample_rows);

    println!("\nwhole-network check (reduced LeNet-5-small, RNS backend, 1 thread)...");
    let (net_name, measured_us, predicted_us) = measure_network(&model, net_reps);
    let rel_err = (predicted_us - measured_us).abs() / measured_us;
    println!(
        "  measured {}  predicted {}  rel err {:.1}%",
        fmt_dur(Duration::from_secs_f64(measured_us / 1e6)),
        fmt_dur(Duration::from_secs_f64(predicted_us / 1e6)),
        rel_err * 100.0
    );

    // --- BENCH_rns_ops.json ---------------------------------------------
    let mut root = BTreeMap::new();
    root.insert("bench".into(), Json::Str("rns_ops".into()));
    root.insert("scheme".into(), Json::Str("rns-ckks".into()));
    root.insert("prime_bits".into(), Json::Num(f64::from(prime_bits)));

    let mut constants = BTreeMap::new();
    for op in ALL_OPS {
        constants.insert(op.to_string(), Json::Num(model.constant(op)));
    }
    root.insert("constants".into(), Json::Obj(constants));

    let fit_json: Vec<Json> = fits
        .iter()
        .map(|f| {
            let mut o = BTreeMap::new();
            o.insert("op".into(), Json::Str(f.op.to_string()));
            o.insert("constant".into(), Json::Num(f.constant));
            o.insert("samples".into(), Json::Num(f.samples as f64));
            o.insert("max_rel_err".into(), Json::Num(f.max_rel_err));
            Json::Obj(o)
        })
        .collect();
    root.insert("fits".into(), Json::Arr(fit_json));

    let op_json: Vec<Json> = samples
        .iter()
        .map(|s| {
            let mut o = BTreeMap::new();
            o.insert("op".into(), Json::Str(s.op.to_string()));
            o.insert("n".into(), Json::Num(s.n as f64));
            o.insert("log_q".into(), Json::Num(s.lvl.log_q));
            o.insert("rns_len".into(), Json::Num(s.lvl.rns_len as f64));
            o.insert("measured_us".into(), Json::Num(s.measured_us));
            o.insert("predicted_us".into(), Json::Num(model.op_cost(s.op, s.n, s.lvl)));
            Json::Obj(o)
        })
        .collect();
    root.insert("ops".into(), Json::Arr(op_json));

    let mut net_json = BTreeMap::new();
    net_json.insert("name".into(), Json::Str(net_name));
    net_json.insert("measured_us".into(), Json::Num(measured_us));
    net_json.insert("predicted_us".into(), Json::Num(predicted_us));
    net_json.insert("rel_err".into(), Json::Num(rel_err));
    root.insert("network".into(), Json::Obj(net_json));

    let rendered = Json::Obj(root).render();
    std::fs::write("BENCH_rns_ops.json", &rendered).expect("write BENCH_rns_ops.json");
    println!("\nwrote BENCH_rns_ops.json");
}
