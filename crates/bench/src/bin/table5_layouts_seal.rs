//! Table 5 — average inference latency per data-layout policy under
//! CHET-SEAL (RNS-CKKS).
//!
//! Expected shape (paper): the best layout is network-dependent; CHW wins
//! on channel-heavy networks under RNS-CKKS because `mulPlain` costs the
//! same as `mulScalar` there, while HW can win on the smallest network.
//! The `*` marks the policy the compiler's cost model selects.

use chet_bench::{run_layout_table, BackendChoice, HarnessArgs};
use chet_hisa::params::SchemeKind;
use chet_hisa::SecurityLevel;

fn main() {
    let args = HarnessArgs::parse();
    let backend = if args.sim { BackendChoice::Sim } else { BackendChoice::Rns };
    run_layout_table(
        "Table 5: latency per layout, CHET-SEAL (RNS-CKKS)",
        SchemeKind::RnsCkks,
        SecurityLevel::Bits128,
        backend,
        &args,
    );
}
