//! Figure 5 — average inference latency of CHET-SEAL, CHET-HEAAN and the
//! Manual-HEAAN baseline per network.
//!
//! Expected shape (paper): CHET-compiled configurations beat the manual
//! baseline on every network (the paper's experts took weeks to tune what
//! the compiler finds automatically), and CHET-SEAL is roughly an order of
//! magnitude faster than the hand-written HEAAN circuits.
//!
//! The Manual-HEAAN baseline is emulated as the pre-CHET default an expert
//! would start from (DESIGN.md substitution): fixed HW layout, default
//! power-of-two rotation keys, conservative fixed-point scales.

use chet_bench::{average_latency, fmt_dur, harness_precision, harness_scales, print_table, BackendChoice, HarnessArgs};
use chet_compiler::layout::policy_layouts;
use chet_compiler::{select_parameters, select_rotation_keys, CompiledCircuit, Compiler, LayoutPolicy};
use chet_hisa::params::SchemeKind;
use chet_hisa::{RotationKeyPolicy, SecurityLevel};
use chet_runtime::exec::{required_margin_for, ExecPlan};
use chet_runtime::kernels::ScaleConfig;

fn main() {
    let args = HarnessArgs::parse();
    let (rns_backend, big_backend) = if args.sim {
        (BackendChoice::Sim, BackendChoice::Sim)
    } else {
        (BackendChoice::Rns, BackendChoice::Big)
    };

    println!("== Figure 5: CHET-SEAL vs CHET-HEAAN vs Manual-HEAAN latency ==");
    println!(
        "(networks: {}; {} image(s) per cell)\n",
        if args.full { "full-size" } else { "reduced" },
        args.images
    );

    let chet_scales = harness_scales();
    // The "manual" developer uses generous, untuned scales (costing depth)
    // and no layout/rotation-key search.
    let manual_scales = ScaleConfig::from_log2(30, 18, 18, 14);

    let mut rows = Vec::new();
    for net in args.networks() {
        // CHET-SEAL: full compilation for RNS-CKKS.
        let seal = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(harness_precision())
            .compile(&net.circuit, &chet_scales)
            .expect("compiles for SEAL target");
        let t_seal = average_latency(rns_backend, &seal, &net.circuit, &net, args.images);
        eprintln!("[cell] {} CHET-SEAL: {}", net.name, fmt_dur(t_seal));

        // CHET-HEAAN: full compilation for CKKS.
        let heaan = Compiler::new(SchemeKind::Ckks)
            .with_output_precision(harness_precision())
            .compile(&net.circuit, &chet_scales)
            .expect("compiles for HEAAN target");
        let t_heaan = average_latency(big_backend, &heaan, &net.circuit, &net, args.images);
        eprintln!("[cell] {} CHET-HEAAN: {}", net.name, fmt_dur(t_heaan));

        // Manual-HEAAN: HW layout, power-of-two keys, conservative scales.
        let layouts = policy_layouts(&net.circuit, LayoutPolicy::Hw);
        let outcome = select_parameters(
            &net.circuit,
            &layouts,
            &manual_scales,
            SchemeKind::Ckks,
            SecurityLevel::Bits128,
            harness_precision(),
        )
        .expect("manual baseline parameters");
        let manual = CompiledCircuit {
            plan: ExecPlan {
                layouts,
                scales: manual_scales,
                margin: required_margin_for(&net.circuit),
            },
            params: outcome.params.clone(),
            rotation_keys: RotationKeyPolicy::PowersOfTwo,
            policy: LayoutPolicy::Hw,
            estimated_cost: 0.0,
            outcome: outcome.clone(),
            output_precision: harness_precision(),
            pruned_rotations: Vec::new(),
        };
        let _ = select_rotation_keys(&outcome); // (manual dev does not use it)
        let t_manual = average_latency(big_backend, &manual, &net.circuit, &net, args.images);
        eprintln!("[cell] {} Manual-HEAAN: {}", net.name, fmt_dur(t_manual));

        let speedup_vs_manual = t_manual.as_secs_f64() / t_heaan.as_secs_f64().max(1e-9);
        let seal_vs_heaan = t_heaan.as_secs_f64() / t_seal.as_secs_f64().max(1e-9);
        rows.push(vec![
            net.name.to_string(),
            fmt_dur(t_seal),
            fmt_dur(t_heaan),
            fmt_dur(t_manual),
            format!("{speedup_vs_manual:.2}x"),
            format!("{seal_vs_heaan:.2}x"),
        ]);
    }
    print_table(
        &[
            "Network",
            "CHET-SEAL",
            "CHET-HEAAN",
            "Manual-HEAAN",
            "CHET-HEAAN vs manual",
            "SEAL vs HEAAN",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: CHET-HEAAN < Manual-HEAAN on every network; CHET-SEAL \
         fastest overall (paper Fig. 5)."
    );
}
