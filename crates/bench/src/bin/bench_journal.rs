//! Journal durability-cost benchmark — `BENCH_journal.json`.
//!
//! Three measurements of what the write-ahead request journal costs:
//!
//! 1. **Append latency** — p50/p99 of a durable append under the two
//!    commit policies: leader-based group commit with concurrent
//!    submitters (fsyncs amortize across the batch) versus
//!    fsync-per-record. The fsync count is recorded alongside so the
//!    batching is visible, not inferred.
//! 2. **Replay throughput** — records/second for `Journal::open` to
//!    scan, checksum and rebuild state from the file the append phase
//!    produced.
//! 3. **End-to-end overhead** — p50 request latency through the full
//!    `InferenceService` on the simulator backend with the journal off
//!    versus on (two durable fsyncs per request: admit + complete),
//!    under a concurrent client load. `overhead_pct` is the headline:
//!    the acceptance bar is ≤ 5% added p50.
//!
//! Usage: `cargo run --release --bin bench_journal [--appends N] [--requests N]`

use chet_ckks::sim::SimCkks;
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_runtime::kernels::ScaleConfig;
use chet_serve::{
    InferenceService, Journal, JournalConfig, JournalRecord, ServeConfig,
};
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A mid-size two-conv CNN. The serve-layer test fixtures use a 6×6 toy
/// whose SimCkks inference runs in ~0.5 ms — at that scale two fsyncs
/// look enormous in relative terms. Real FHE inference (the paper's
/// Table 3 networks) runs hundreds of milliseconds to seconds per image,
/// so the overhead measurement uses a network big enough that compute
/// dominates the way it does in practice, while still keeping the bench
/// in CI time.
fn bench_cnn() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 48, 48]);
    let w1 = Tensor::from_fn(vec![8, 1, 5, 5], |i| (i[2] * 5 + i[3]) as f64 * 0.01 - 0.1);
    let c1 = b.conv2d(x, w1, Some(vec![0.05; 8]), 1, Padding::Valid);
    let a1 = b.activation(c1, 0.2, 0.9);
    let p1 = b.avg_pool2d(a1, 2, 2);
    let w2 = Tensor::from_fn(vec![8, 8, 3, 3], |i| (i[1] + i[2] * 3 + i[3]) as f64 * 0.01 - 0.05);
    let c2 = b.conv2d(p1, w2, Some(vec![-0.05; 8]), 1, Padding::Valid);
    let a2 = b.activation(c2, 0.1, 0.8);
    let p2 = b.avg_pool2d(a2, 2, 2);
    b.build(p2)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chet-bench-journal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn admit(id: u64) -> JournalRecord {
    JournalRecord::Admitted {
        request_id: id,
        idempotency_key: format!("bench-{id}"),
        image: Tensor::random(vec![1, 6, 6], 1.0, id),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Durable-append latency distribution under `threads` concurrent
/// appenders. Returns (p50, p99, fsyncs, journal dir).
fn bench_appends(
    appends: usize,
    threads: usize,
    group_commit: bool,
    tag: &str,
) -> (Duration, Duration, u64, PathBuf) {
    let dir = tmp_dir(tag);
    let config = JournalConfig { enabled: true, group_commit, ..JournalConfig::default() };
    let (journal, _) = Journal::open(&dir, &config).expect("open journal");
    let journal = Arc::new(journal);
    let per_thread = appends / threads.max(1);
    let mut handles = Vec::new();
    for t in 0..threads {
        let j = Arc::clone(&journal);
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                let rec = admit((t * per_thread + i) as u64 + 1);
                let start = Instant::now();
                j.append_durable(&rec).expect("append");
                lat.push(start.elapsed());
            }
            lat
        }));
    }
    let mut lat: Vec<Duration> = Vec::with_capacity(appends);
    for h in handles {
        lat.extend(h.join().expect("appender thread"));
    }
    let fsyncs = journal.fsyncs();
    journal.close().expect("close journal");
    lat.sort();
    (percentile(&lat, 0.50), percentile(&lat, 0.99), fsyncs, dir)
}

/// p50 of end-to-end request latency through the service, `clients`
/// concurrent submitter threads of `per_client` requests each.
fn bench_service(journal_dir: Option<PathBuf>, clients: usize, per_client: usize) -> Duration {
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 512,
        store_dir: journal_dir.clone(),
        journal: JournalConfig {
            enabled: journal_dir.is_some(),
            completed_cache: 64,
            ..JournalConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = InferenceService::start_with_compiler(
        Compiler::new(SchemeKind::RnsCkks).with_output_precision(2f64.powi(20)),
        bench_cnn(),
        ScaleConfig::from_log2(25, 12, 12, 10),
        config,
        |_, compiled| SimCkks::new(&compiled.params, &compiled.rotation_keys, 9).without_noise(),
    )
    .expect("service starts");
    let service = Arc::new(service);
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let image = Tensor::random(vec![1, 48, 48], 1.0, (c * per_client + i) as u64);
                let start = Instant::now();
                let ticket = svc.submit(image).expect("submit");
                ticket.wait().expect("response");
                lat.push(start.elapsed());
            }
            lat
        }));
    }
    let mut lat: Vec<Duration> = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("client thread"));
    }
    match Arc::try_unwrap(service) {
        Ok(svc) => {
            svc.shutdown();
        }
        Err(_) => unreachable!("all clients joined"),
    }
    lat.sort();
    percentile(&lat, 0.50)
}

fn arg_or(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let appends = arg_or("--appends", 4096);
    let requests = arg_or("--requests", 64);
    println!("== Journal durability cost ({appends} appends, {requests} service requests) ==\n");

    // 1. Append latency, both commit policies.
    let (gc_p50, gc_p99, gc_fsyncs, gc_dir) = bench_appends(appends, 4, true, "gc");
    println!(
        "  group-commit append   p50 {:>8.1} us  p99 {:>8.1} us  ({} records, {} fsyncs)",
        gc_p50.as_secs_f64() * 1e6,
        gc_p99.as_secs_f64() * 1e6,
        appends,
        gc_fsyncs
    );
    let each_appends = appends.min(1024);
    let (ea_p50, ea_p99, ea_fsyncs, ea_dir) = bench_appends(each_appends, 1, false, "each");
    println!(
        "  fsync-each append     p50 {:>8.1} us  p99 {:>8.1} us  ({} records, {} fsyncs)",
        ea_p50.as_secs_f64() * 1e6,
        ea_p99.as_secs_f64() * 1e6,
        each_appends,
        ea_fsyncs
    );
    let _ = std::fs::remove_dir_all(&ea_dir);

    // 2. Replay throughput over the group-commit file.
    let config = JournalConfig { enabled: true, ..JournalConfig::default() };
    let start = Instant::now();
    let (journal, report) = Journal::open(&gc_dir, &config).expect("replay");
    let replay = start.elapsed();
    drop(journal);
    let replay_rps = report.records as f64 / replay.as_secs_f64().max(1e-9);
    println!(
        "  replay                {} records in {:.1} ms  ({:.0} records/s)\n",
        report.records,
        replay.as_secs_f64() * 1e3,
        replay_rps
    );
    let _ = std::fs::remove_dir_all(&gc_dir);

    // 3. End-to-end service overhead. A single sequential client keeps
    // the measurement clean: no queueing noise, and no concurrent
    // appender for group commit to batch with — each request pays its
    // two fsyncs in full, so this is the *worst-case* per-request cost.
    // Best-of-5 p50 per config damps scheduler noise.
    let clients = 1;
    let per_client = requests;
    let mut base_p50 = Duration::MAX;
    let mut jrnl_p50 = Duration::MAX;
    for trial in 0..5 {
        let b = bench_service(None, clients, per_client);
        let dir = tmp_dir(&format!("svc-{trial}"));
        let j = bench_service(Some(dir.clone()), clients, per_client);
        let _ = std::fs::remove_dir_all(&dir);
        base_p50 = base_p50.min(b);
        jrnl_p50 = jrnl_p50.min(j);
        println!(
            "  trial {trial}: baseline p50 {:>7.2} ms   journaled p50 {:>7.2} ms",
            b.as_secs_f64() * 1e3,
            j.as_secs_f64() * 1e3
        );
    }
    let overhead_pct = (jrnl_p50.as_secs_f64() - base_p50.as_secs_f64())
        / base_p50.as_secs_f64().max(1e-9)
        * 100.0;
    println!(
        "\n  service p50: baseline {:.2} ms, journaled {:.2} ms  ->  overhead {:+.2}%",
        base_p50.as_secs_f64() * 1e3,
        jrnl_p50.as_secs_f64() * 1e3,
        overhead_pct
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"journal\",");
    let _ = writeln!(json, "  \"appends\": {appends},");
    let _ = writeln!(json, "  \"append_us\": {{");
    let _ = writeln!(
        json,
        "    \"group_commit\": {{\"p50\": {:.2}, \"p99\": {:.2}, \"records\": {}, \"fsyncs\": {}}},",
        gc_p50.as_secs_f64() * 1e6,
        gc_p99.as_secs_f64() * 1e6,
        appends,
        gc_fsyncs
    );
    let _ = writeln!(
        json,
        "    \"fsync_each\": {{\"p50\": {:.2}, \"p99\": {:.2}, \"records\": {}, \"fsyncs\": {}}}",
        ea_p50.as_secs_f64() * 1e6,
        ea_p99.as_secs_f64() * 1e6,
        each_appends,
        ea_fsyncs
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay_records_per_sec\": {replay_rps:.0},");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"requests\": {requests},");
    let _ = writeln!(json, "    \"clients\": {clients},");
    let _ = writeln!(
        json,
        "    \"baseline_p50_ms\": {:.3},",
        base_p50.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"journaled_p50_ms\": {:.3},",
        jrnl_p50.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "    \"overhead_pct\": {overhead_pct:.2}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_journal.json", &json).expect("write BENCH_journal.json");
    println!("\nwrote BENCH_journal.json");
}
