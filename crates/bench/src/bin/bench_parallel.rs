//! Parallel-scaling benchmark — `BENCH_parallel.json`.
//!
//! Measures end-to-end encrypted-inference latency for the Table 3
//! networks (reduced variants by default) at 1/2/4/8 threads on the
//! SimCkks and RNS-CKKS backends, and verifies that every thread count
//! produces **bit-identical** output to the 1-thread baseline (the
//! fan-out layer's determinism contract).
//!
//! The JSON records `host_cpus` alongside the latencies: speedup is
//! bounded by physical parallelism, and on a single-core host the 2/4/8
//! thread rows measure scheduling overhead, not speedup. EXPERIMENTS.md
//! discusses how to read the numbers.
//!
//! Usage: `cargo run --release --bin bench_parallel [--sim] [--nets N] [--images N]`
//! (`--sim` restricts to the simulator backend for a quick smoke run).

use chet_bench::{harness_precision, harness_scales, print_table, time_inference, BackendChoice, HarnessArgs};
use chet_compiler::Compiler;
use chet_runtime::par::set_threads;
use std::fmt::Write as _;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Cell {
    backend: &'static str,
    network: String,
    latency: Vec<(usize, Duration)>,
    bit_identical: bool,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = HarnessArgs::parse();
    let backends: &[(BackendChoice, &str)] = if args.sim {
        &[(BackendChoice::Sim, "sim")]
    } else {
        &[(BackendChoice::Sim, "sim"), (BackendChoice::Rns, "rns")]
    };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== Parallel scaling: 1/2/4/8-thread encrypted inference (host_cpus = {host_cpus}) ==\n");

    let scales = harness_scales();
    let mut cells: Vec<Cell> = Vec::new();
    let nets = args.networks();
    for &(backend, backend_name) in backends {
        // The RNS sweep runs each network once per thread count; on this
        // class of hardware that is minutes per cell, so cap it at the two
        // light networks (same practice as the other RNS harnesses — see
        // run_experiments.sh). The simulator sweeps everything requested.
        let cap = if backend == BackendChoice::Rns { nets.len().min(2) } else { nets.len() };
        if cap < nets.len() {
            println!(
                "  [{backend_name}] capping to first {cap} of {} networks (rerun with --nets for more)",
                nets.len()
            );
        }
        for net in &nets[..cap] {
            let compiled = Compiler::new(backend.kind())
                .with_output_precision(harness_precision())
                .compile(&net.circuit, &scales)
                .expect("network compiles");
            let image = net.sample_image(3);
            let mut latency = Vec::new();
            let mut baseline: Option<Vec<f64>> = None;
            let mut bit_identical = true;
            for &t in &THREAD_COUNTS {
                set_threads(t);
                let mut best: Option<(Vec<f64>, Duration)> = None;
                for _ in 0..args.images.max(1) {
                    let (out, dur) = time_inference(
                        backend,
                        &compiled.params,
                        &compiled.rotation_keys,
                        &net.circuit,
                        &compiled.plan,
                        &image,
                        7,
                    );
                    let bits = out.data().to_vec();
                    best = Some(match best.take() {
                        None => (bits, dur),
                        Some((b, d)) => (b, d.min(dur)),
                    });
                }
                let (bits, dur) = best.expect("at least one run");
                match &baseline {
                    None => baseline = Some(bits),
                    Some(base) => bit_identical &= base == &bits,
                }
                latency.push((t, dur));
                println!("  {backend_name:>3} {:<24} {t} thread(s): {:?}", net.name, dur);
            }
            set_threads(1);
            cells.push(Cell {
                backend: backend_name,
                network: net.name.to_string(),
                latency,
                bit_identical,
            });
        }
    }

    // Human-readable table.
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let base = c.latency[0].1.as_secs_f64();
            let mut row = vec![c.backend.to_string(), c.network.clone()];
            for (_, d) in &c.latency {
                row.push(format!("{:.1} ms", d.as_secs_f64() * 1e3));
            }
            let at4 = c.latency.iter().find(|(t, _)| *t == 4).map(|(_, d)| d.as_secs_f64());
            row.push(match at4 {
                Some(d) if d > 0.0 => format!("{:.2}x", base / d),
                _ => "-".to_string(),
            });
            row.push(if c.bit_identical { "yes" } else { "NO" }.to_string());
            row
        })
        .collect();
    print_table(
        &["backend", "network", "1T", "2T", "4T", "8T", "speedup@4T", "bit-identical"],
        &rows,
    );

    // Machine-readable record.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"parallel_scaling\",");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"note\": \"speedup is bounded by host_cpus; on a 1-CPU host the multi-thread rows measure pool overhead, not speedup\","
    );
    let _ = writeln!(json, "  \"threads\": [1, 2, 4, 8],");
    let _ = writeln!(json, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let base = c.latency[0].1.as_secs_f64();
        let at4 = c
            .latency
            .iter()
            .find(|(t, _)| *t == 4)
            .map(|(_, d)| d.as_secs_f64())
            .filter(|d| *d > 0.0)
            .map(|d| base / d)
            .unwrap_or(0.0);
        let lat: Vec<String> = c
            .latency
            .iter()
            .map(|(t, d)| format!("\"{}\": {:.3}", t, d.as_secs_f64() * 1e3))
            .collect();
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"network\": \"{}\", \"latency_ms\": {{{}}}, \"speedup_at_4\": {:.3}, \"bit_identical\": {}}}{}",
            json_escape(c.backend),
            json_escape(&c.network),
            lat.join(", "),
            at4,
            c.bit_identical,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");

    assert!(
        cells.iter().all(|c| c.bit_identical),
        "outputs must be bit-identical across thread counts"
    );
}
