//! Table 1 — asymptotic costs of HISA primitives for CKKS and RNS-CKKS.
//!
//! Microbenchmarks each HISA op on the real backends across ring degrees
//! and modulus sizes, and reports how measured time scales next to the
//! paper's asymptotic predictions:
//!
//! * RNS-CKKS: add/mulScalar/mulPlain ∝ `N·r`; mul/rotate ∝ `N·logN·r²`.
//! * CKKS: add ∝ `N·logQ`; mulScalar ∝ `N·M(Q)`; mulPlain/mul/rotate ∝
//!   `N·logN·M(Q)`.

use chet_bench::{fmt_dur, print_table, HarnessArgs};
use chet_ckks::big::BigCkks;
use chet_ckks::rns::RnsCkks;
use chet_hisa::{EncryptionParams, Hisa, RotationKeyPolicy, SecurityLevel};
use std::time::{Duration, Instant};

fn bench_op(mut f: impl FnMut(), reps: usize) -> Duration {
    // Warmup.
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed() / reps as u32
}

fn bench_backend<H: Hisa>(h: &mut H, reps: usize) -> Vec<Duration> {
    let scale = 2f64.powi(30);
    let vals: Vec<f64> = (0..64).map(|i| i as f64 * 0.01).collect();
    let pt = h.encode(&vals, scale);
    let a = h.encrypt(&pt);
    let b = h.encrypt(&pt);
    vec![
        bench_op(|| drop(h.add(&a, &b)), reps),
        bench_op(|| drop(h.mul_scalar(&a, 1.5, scale)), reps),
        bench_op(|| drop(h.mul_plain(&a, &pt)), reps),
        bench_op(|| drop(h.mul(&a, &b)), reps),
        bench_op(|| drop(h.rot_left(&a, 1)), reps),
    ]
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = if args.full { 20 } else { 5 };
    let ops = ["add", "mulScalar", "mulPlain", "mul (ct×ct)", "rotate"];

    println!("== Table 1: HISA primitive costs ==\n");

    println!("RNS-CKKS (SEAL-style) — expected: add/scalar/plain ~ N·r, mul/rot ~ N·logN·r²");
    let mut rows = Vec::new();
    let configs: &[(usize, usize)] =
        if args.full { &[(4096, 2), (8192, 2), (8192, 4), (16384, 4), (16384, 8)] } else { &[(4096, 2), (8192, 2), (8192, 4)] };
    let mut baseline: Option<Vec<Duration>> = None;
    for &(n, r) in configs {
        let params = EncryptionParams::rns_ckks(n, 40, r)
            .with_security(SecurityLevel::Insecure);
        let policy = RotationKeyPolicy::Exact([1usize].into_iter().collect());
        let mut h = RnsCkks::new(&params, &policy, 7);
        let times = bench_backend(&mut h, reps);
        let mut row = vec![format!("N={n}, r={r}")];
        for (i, t) in times.iter().enumerate() {
            let rel = baseline
                .as_ref()
                .map(|b| format!(" ({:.1}x)", t.as_secs_f64() / b[i].as_secs_f64()))
                .unwrap_or_default();
            row.push(format!("{}{}", fmt_dur(*t), rel));
        }
        if baseline.is_none() {
            baseline = Some(times);
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("config").chain(ops.iter().copied()).collect();
    print_table(&headers, &rows);

    println!("\nCKKS (HEAAN-style) — expected: add ~ N·logQ, mulScalar ~ N·M(Q), others ~ N·logN·M(Q)");
    let mut rows = Vec::new();
    let configs: &[(usize, u32)] =
        if args.full { &[(2048, 120), (4096, 120), (4096, 240), (8192, 240)] } else { &[(2048, 120), (4096, 120)] };
    let mut baseline: Option<Vec<Duration>> = None;
    for &(n, log_q) in configs {
        let params = EncryptionParams::ckks(n, log_q).with_security(SecurityLevel::Insecure);
        let policy = RotationKeyPolicy::Exact([1usize].into_iter().collect());
        let mut h = BigCkks::new(&params, &policy, 7);
        let times = bench_backend(&mut h, reps);
        let mut row = vec![format!("N={n}, logQ={log_q}")];
        for (i, t) in times.iter().enumerate() {
            let rel = baseline
                .as_ref()
                .map(|b| format!(" ({:.1}x)", t.as_secs_f64() / b[i].as_secs_f64()))
                .unwrap_or_default();
            row.push(format!("{}{}", fmt_dur(*t), rel));
        }
        if baseline.is_none() {
            baseline = Some(times);
        }
        rows.push(row);
    }
    print_table(&headers, &rows);

    println!(
        "\nShape check (paper Table 1): mulScalar ≈ mulPlain under RNS-CKKS, while \
         mulScalar is much cheaper than mulPlain under CKKS — the asymmetry driving \
         the HW-vs-CHW layout trade-off."
    );
}
