//! Table 3 — the evaluation networks: layer counts, floating-point
//! operation counts, and accuracy.
//!
//! The paper's accuracy column certifies HE-compatible *training* on
//! MNIST/CIFAR. Our datasets are substituted (DESIGN.md), so this harness
//! reports the property the compiler owns — encrypted inference agreeing
//! with unencrypted inference (max |Δ| and argmax agreement) — plus an
//! end-to-end trained-model demonstration on synthetic data (plain vs
//! encrypted accuracy of an MLP with learnable `ax²+bx` activations).

use chet_bench::{harness_precision, harness_scales, print_table, BackendChoice, HarnessArgs};
use chet_compiler::Compiler;
use chet_hisa::params::SchemeKind;
use chet_tensor::train::{synthetic_blobs, Mlp, TrainConfig};
use chet_tensor::Tensor;

fn main() {
    let args = HarnessArgs::parse();
    let nets = args.networks();
    let paper_flops = [
        ("LeNet-5-small", Some(159_960u64), "98.5%"),
        ("LeNet-5-medium", Some(5_791_168), "99.0%"),
        ("LeNet-5-large", Some(21_385_674), "99.3%"),
        ("Industrial", None, "n/a"),
        ("SqueezeNet-CIFAR", Some(37_759_754), "81.5%"),
    ];

    println!("== Table 3: evaluation networks ==\n");
    let mut rows = Vec::new();
    for (i, net) in nets.iter().enumerate() {
        let counts = net.circuit.layer_counts();
        let compiled = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(harness_precision())
            .compile(&net.circuit, &harness_scales())
            .expect("network compiles");
        // Encrypted-vs-plain agreement over a few images (simulator with
        // the CKKS noise model: same code path, fast).
        let mut max_diff = 0f64;
        let mut agree = 0usize;
        let images = args.images.max(3);
        for s in 0..images {
            let image = net.sample_image(100 + s as u64);
            let want = net.circuit.eval(&[image.clone()]);
            let (got, _) = chet_bench::time_inference(
                BackendChoice::Sim,
                &compiled.params,
                &compiled.rotation_keys,
                &net.circuit,
                &compiled.plan,
                &image,
                50 + s as u64,
            );
            let gf = got.reshape(vec![got.numel()]);
            let wf = want.reshape(vec![want.numel()]);
            max_diff = max_diff.max(gf.max_abs_diff(&wf));
            if gf.argmax() == wf.argmax() {
                agree += 1;
            }
        }
        let (paper, paper_acc) = paper_flops
            .get(i)
            .map(|(_, f, a)| (*f, *a))
            .unwrap_or((None, "n/a"));
        rows.push(vec![
            net.name.to_string(),
            counts.get("conv2d").copied().unwrap_or(0).to_string(),
            counts.get("matmul").copied().unwrap_or(0).to_string(),
            counts.get("activation").copied().unwrap_or(0).to_string(),
            net.flops().to_string(),
            paper.map(|f| f.to_string()).unwrap_or_else(|| "undisclosed".into()),
            paper_acc.to_string(),
            format!("{max_diff:.2e}"),
            format!("{agree}/{images}"),
        ]);
    }
    print_table(
        &[
            "Network",
            "Conv",
            "FC",
            "Act",
            "# FP ops (ours)",
            "# FP ops (paper)",
            "Acc (paper)",
            "enc-vs-plain |Δ|max",
            "argmax agree",
        ],
        &rows,
    );

    // Trained-model demonstration: HE-compatible training works and the
    // compiled encrypted model matches the plain one.
    println!("\n-- trained HE-compatible model (synthetic data; DESIGN.md substitution) --");
    let train = synthetic_blobs(400, 16, 4, 11);
    let test = synthetic_blobs(100, 16, 4, 12);
    let mut mlp = Mlp::new(&[16, 24, 4], 3);
    mlp.train(&train, &TrainConfig::default());
    let plain_acc = mlp.accuracy(&test);
    let circuit = mlp.to_circuit(vec![16, 1, 1]);
    let compiled = Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(harness_precision())
        .compile(&circuit, &harness_scales())
        .expect("mlp compiles");
    let mut enc_correct = 0usize;
    let eval_n = if args.full { test.len() } else { 25 };
    for (x, y) in test.iter().take(eval_n) {
        let image = Tensor::new(vec![16, 1, 1], x.clone());
        let (out, _) = chet_bench::time_inference(
            BackendChoice::Sim,
            &compiled.params,
            &compiled.rotation_keys,
            &circuit,
            &compiled.plan,
            &image,
            77,
        );
        if out.argmax() == *y {
            enc_correct += 1;
        }
    }
    println!(
        "plain accuracy: {:.1}%   encrypted accuracy: {:.1}%  ({} test points)",
        plain_acc * 100.0,
        enc_correct as f64 / eval_n as f64 * 100.0,
        eval_n
    );
    println!("learned activation coefficients (a, b): {:?}", mlp.activation_coefficients());
}
