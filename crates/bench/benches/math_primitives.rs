//! Criterion benchmarks of the number-theoretic substrate (NTT, CRT,
//! encoding) — the constants behind the cost model.

use chet_ckks::encoding::CkksEncoder;
use chet_math::crt::CrtBasis;
use chet_math::ntt::NttTable;
use chet_math::prime::ntt_primes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for n in [4096usize, 16384] {
        let q = ntt_primes(50, n, 1)[0];
        let table = NttTable::new(q, n).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| i * 7 % q).collect();
        group.bench_function(BenchmarkId::new("forward", n), |b| {
            b.iter(|| {
                let mut d = data.clone();
                table.forward(&mut d);
                d
            })
        });
    }
    group.finish();
}

fn bench_crt(c: &mut Criterion) {
    let basis = CrtBasis::new(ntt_primes(59, 1024, 16));
    let residues: Vec<u64> = basis.primes().iter().map(|&p| p / 3).collect();
    c.bench_function("crt_reconstruct_16primes", |b| {
        b.iter(|| basis.reconstruct_centered(&residues))
    });
}

fn bench_encoding(c: &mut Criterion) {
    let enc = CkksEncoder::new(8192);
    let values: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("encode_8192", |b| b.iter(|| enc.encode(&values, 2f64.powi(30))));
}

criterion_group!(benches, bench_ntt, bench_crt, bench_encoding);
criterion_main!(benches);
