//! Criterion benchmarks of the homomorphic tensor kernels (conv, dense,
//! pooling) under both layouts on the real RNS-CKKS backend.

use chet_ckks::rns::RnsCkks;
use chet_hisa::{EncryptionParams, Hisa, RotationKeyPolicy, SecurityLevel};
use chet_runtime::ciphertensor::encrypt_tensor;
use chet_runtime::kernels::conv::hconv2d;
use chet_runtime::kernels::matmul::hmatmul;
use chet_runtime::kernels::pool::havg_pool2d;
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::layout::{Layout, LayoutKind};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};

fn backend() -> RnsCkks {
    let params =
        EncryptionParams::rns_ckks(4096, 40, 3).with_security(SecurityLevel::Insecure);
    RnsCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 7)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    let scales = ScaleConfig::default();
    let image = Tensor::random(vec![2, 8, 8], 1.0, 1);
    let weights = Tensor::random(vec![2, 2, 3, 3], 0.3, 2);

    for kind in [LayoutKind::HW, LayoutKind::CHW] {
        let mut h = backend();
        let layout = match kind {
            LayoutKind::HW => Layout::hw(2, 8, 8, 0, h.slots()),
            LayoutKind::CHW => Layout::chw(2, 8, 8, 0, h.slots()),
        };
        let enc = encrypt_tensor(&mut h, &image, &layout, scales.input);
        group.bench_function(format!("conv3x3_{kind}"), |b| {
            b.iter(|| hconv2d(&mut h, &enc, &weights, None, 1, Padding::Valid, kind, &scales))
        });
        group.bench_function(format!("avgpool2_{kind}"), |b| {
            b.iter(|| havg_pool2d(&mut h, &enc, 2, 2, &scales))
        });
    }

    let mut h = backend();
    let layout = Layout::chw(2, 8, 8, 0, h.slots());
    let enc = encrypt_tensor(&mut h, &image, &layout, scales.input);
    let w = Tensor::random(vec![4, 128], 0.2, 3);
    group.bench_function("matmul_128x4", |b| {
        b.iter(|| hmatmul(&mut h, &enc, &w, None, &scales))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
