//! Criterion microbenchmarks of HISA primitives (backs Table 1).

use chet_ckks::big::BigCkks;
use chet_ckks::rns::RnsCkks;
use chet_hisa::{EncryptionParams, Hisa, RotationKeyPolicy, SecurityLevel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_rns(c: &mut Criterion) {
    let mut group = c.benchmark_group("rns_ckks");
    group.sample_size(10);
    for (n, r) in [(4096usize, 2usize), (8192, 4)] {
        let params = EncryptionParams::rns_ckks(n, 40, r).with_security(SecurityLevel::Insecure);
        let policy = RotationKeyPolicy::Exact([1usize].into_iter().collect());
        let mut h = RnsCkks::new(&params, &policy, 7);
        let pt = h.encode(&[1.0, 2.0, 3.0], 2f64.powi(30));
        let a = h.encrypt(&pt);
        let b = h.encrypt(&pt);
        group.bench_function(BenchmarkId::new("add", format!("N{n}_r{r}")), |bch| {
            bch.iter(|| h.add(&a, &b))
        });
        group.bench_function(BenchmarkId::new("mul_plain", format!("N{n}_r{r}")), |bch| {
            bch.iter(|| h.mul_plain(&a, &pt))
        });
        group.bench_function(BenchmarkId::new("mul", format!("N{n}_r{r}")), |bch| {
            bch.iter(|| h.mul(&a, &b))
        });
        group.bench_function(BenchmarkId::new("rotate", format!("N{n}_r{r}")), |bch| {
            bch.iter(|| h.rot_left(&a, 1))
        });
    }
    group.finish();
}

fn bench_big(c: &mut Criterion) {
    let mut group = c.benchmark_group("big_ckks");
    group.sample_size(10);
    for (n, log_q) in [(2048usize, 120u32), (4096, 180)] {
        let params = EncryptionParams::ckks(n, log_q).with_security(SecurityLevel::Insecure);
        let policy = RotationKeyPolicy::Exact([1usize].into_iter().collect());
        let mut h = BigCkks::new(&params, &policy, 7);
        let pt = h.encode(&[1.0, 2.0, 3.0], 2f64.powi(30));
        let a = h.encrypt(&pt);
        let b = h.encrypt(&pt);
        group.bench_function(BenchmarkId::new("mul_scalar", format!("N{n}_q{log_q}")), |bch| {
            bch.iter(|| h.mul_scalar(&a, 1.5, 2f64.powi(20)))
        });
        group.bench_function(BenchmarkId::new("mul_plain", format!("N{n}_q{log_q}")), |bch| {
            bch.iter(|| h.mul_plain(&a, &pt))
        });
        group.bench_function(BenchmarkId::new("mul", format!("N{n}_q{log_q}")), |bch| {
            bch.iter(|| h.mul(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rns, bench_big);
criterion_main!(benches);
