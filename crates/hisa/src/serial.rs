//! A small, versioned binary codec for the HISA parameter types.
//!
//! The serving tier persists compiled artifacts and key metadata to disk
//! (`chet-serve`'s crash-safe store). Persistence needs a byte format that
//! is (a) deterministic — the same value always encodes to the same bytes,
//! so record checksums are meaningful — and (b) *strictly validated* on
//! the way back in: a truncated or bit-flipped record must surface as a
//! typed [`CodecError`], never as a silently wrong value. The derive-based
//! `serde` markers in this crate stay (they document intent and keep the
//! types serde-compatible), but the on-disk format is this hand-rolled
//! little-endian codec so there is no serializer dependency and no
//! format drift.
//!
//! Layout conventions: integers are little-endian; `usize` travels as
//! `u64`; `f64` travels as its IEEE-754 bit pattern; collections are
//! length-prefixed with `u32`; enums carry a one-byte tag that the decoder
//! refuses to guess about.

use crate::keys::RotationKeyPolicy;
use crate::params::{EncryptionParams, ModulusSpec, SchemeKind};
use crate::security::SecurityLevel;
use std::collections::BTreeSet;
use std::fmt;

/// A decode failure: what was malformed and where (byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated {
        /// Byte offset where more input was required.
        at: usize,
        /// What was being read.
        what: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Byte offset of the tag.
        at: usize,
        /// Which enum was being read.
        what: &'static str,
        /// The unrecognised tag value.
        tag: u8,
    },
    /// A length prefix exceeded the bytes actually available — a classic
    /// truncation/corruption signature caught before allocating.
    BadLength {
        /// Byte offset of the length prefix.
        at: usize,
        /// What was being read.
        what: &'static str,
        /// The claimed element count.
        len: usize,
    },
    /// Input remained after the value was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { at, what } => {
                write!(f, "truncated input at byte {at} while reading {what}")
            }
            CodecError::BadTag { at, what, tag } => {
                write!(f, "invalid {what} tag {tag} at byte {at}")
            }
            CodecError::BadLength { at, what, len } => {
                write!(f, "implausible {what} length {len} at byte {at}")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an f64 as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a u32 length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor-based decoder that refuses malformed input with [`CodecError`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { at: self.pos, what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a u64-encoded `usize`.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        Ok(self.get_u64(what)? as usize)
    }

    /// Reads an f64 bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a u32 length prefix and that many raw bytes. The length is
    /// validated against the remaining input *before* any allocation, so a
    /// corrupted prefix cannot trigger a huge allocation.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let at = self.pos;
        let len = self.get_u32(what)? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength { at, what, len });
        }
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string (invalid UTF-8 is corruption).
    pub fn get_str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let at = self.pos;
        let bytes = self.get_bytes(what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::BadTag { at, what, tag: 0xFF })
    }
}

/// FNV-1a 64-bit hash — the store's per-record checksum. Not cryptographic
/// (the threat model is crashes and bit rot, not adversaries), but cheap,
/// dependency-free and sensitive to every byte.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn scheme_tag(kind: SchemeKind) -> u8 {
    match kind {
        SchemeKind::Ckks => 0,
        SchemeKind::RnsCkks => 1,
    }
}

/// Encodes a [`SchemeKind`].
pub fn put_scheme(w: &mut Writer, kind: SchemeKind) {
    w.put_u8(scheme_tag(kind));
}

/// Decodes a [`SchemeKind`].
pub fn get_scheme(r: &mut Reader<'_>) -> Result<SchemeKind, CodecError> {
    let at = r.position();
    match r.get_u8("SchemeKind")? {
        0 => Ok(SchemeKind::Ckks),
        1 => Ok(SchemeKind::RnsCkks),
        tag => Err(CodecError::BadTag { at, what: "SchemeKind", tag }),
    }
}

/// Encodes a [`SecurityLevel`].
pub fn put_security(w: &mut Writer, level: SecurityLevel) {
    w.put_u8(match level {
        SecurityLevel::Bits128 => 0,
        SecurityLevel::Bits192 => 1,
        SecurityLevel::Bits256 => 2,
        SecurityLevel::Insecure => 3,
    });
}

/// Decodes a [`SecurityLevel`].
pub fn get_security(r: &mut Reader<'_>) -> Result<SecurityLevel, CodecError> {
    let at = r.position();
    match r.get_u8("SecurityLevel")? {
        0 => Ok(SecurityLevel::Bits128),
        1 => Ok(SecurityLevel::Bits192),
        2 => Ok(SecurityLevel::Bits256),
        3 => Ok(SecurityLevel::Insecure),
        tag => Err(CodecError::BadTag { at, what: "SecurityLevel", tag }),
    }
}

/// Encodes a [`ModulusSpec`].
pub fn put_modulus(w: &mut Writer, m: &ModulusSpec) {
    match m {
        ModulusSpec::PowerOfTwo { log_q, log_special } => {
            w.put_u8(0);
            w.put_u32(*log_q);
            w.put_u32(*log_special);
        }
        ModulusSpec::PrimeChain { primes, special } => {
            w.put_u8(1);
            w.put_u32(primes.len() as u32);
            for &p in primes {
                w.put_u64(p);
            }
            w.put_u64(*special);
        }
    }
}

/// Decodes a [`ModulusSpec`].
pub fn get_modulus(r: &mut Reader<'_>) -> Result<ModulusSpec, CodecError> {
    let at = r.position();
    match r.get_u8("ModulusSpec")? {
        0 => Ok(ModulusSpec::PowerOfTwo {
            log_q: r.get_u32("ModulusSpec.log_q")?,
            log_special: r.get_u32("ModulusSpec.log_special")?,
        }),
        1 => {
            let at = r.position();
            let len = r.get_u32("ModulusSpec.primes")? as usize;
            if len.saturating_mul(8) > r.remaining() {
                return Err(CodecError::BadLength { at, what: "ModulusSpec.primes", len });
            }
            let mut primes = Vec::with_capacity(len);
            for _ in 0..len {
                primes.push(r.get_u64("ModulusSpec.primes")?);
            }
            Ok(ModulusSpec::PrimeChain { primes, special: r.get_u64("ModulusSpec.special")? })
        }
        tag => Err(CodecError::BadTag { at, what: "ModulusSpec", tag }),
    }
}

/// Encodes [`EncryptionParams`].
pub fn put_params(w: &mut Writer, p: &EncryptionParams) {
    w.put_usize(p.degree);
    put_modulus(w, &p.modulus);
    put_security(w, p.security);
    w.put_f64(p.error_stddev);
}

/// Decodes [`EncryptionParams`].
pub fn get_params(r: &mut Reader<'_>) -> Result<EncryptionParams, CodecError> {
    Ok(EncryptionParams {
        degree: r.get_usize("EncryptionParams.degree")?,
        modulus: get_modulus(r)?,
        security: get_security(r)?,
        error_stddev: r.get_f64("EncryptionParams.error_stddev")?,
    })
}

/// Encodes a [`RotationKeyPolicy`].
pub fn put_rotation_keys(w: &mut Writer, k: &RotationKeyPolicy) {
    match k {
        RotationKeyPolicy::PowersOfTwo => w.put_u8(0),
        RotationKeyPolicy::Exact(steps) => {
            w.put_u8(1);
            w.put_u32(steps.len() as u32);
            for &s in steps {
                w.put_usize(s);
            }
        }
    }
}

/// Decodes a [`RotationKeyPolicy`].
pub fn get_rotation_keys(r: &mut Reader<'_>) -> Result<RotationKeyPolicy, CodecError> {
    let at = r.position();
    match r.get_u8("RotationKeyPolicy")? {
        0 => Ok(RotationKeyPolicy::PowersOfTwo),
        1 => {
            let at = r.position();
            let len = r.get_u32("RotationKeyPolicy.steps")? as usize;
            if len.saturating_mul(8) > r.remaining() {
                return Err(CodecError::BadLength { at, what: "RotationKeyPolicy.steps", len });
            }
            let mut steps = BTreeSet::new();
            for _ in 0..len {
                steps.insert(r.get_usize("RotationKeyPolicy.steps")?);
            }
            Ok(RotationKeyPolicy::Exact(steps))
        }
        tag => Err(CodecError::BadTag { at, what: "RotationKeyPolicy", tag }),
    }
}

/// A stable 64-bit fingerprint of encryption parameters — used to bind a
/// persisted key bundle to the artifact it belongs to. Computed over the
/// canonical encoding, so equal params always fingerprint equally.
pub fn params_fingerprint(p: &EncryptionParams) -> u64 {
    let mut w = Writer::new();
    put_params(&mut w, p);
    fnv1a64(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rns_params() -> EncryptionParams {
        EncryptionParams {
            degree: 8192,
            modulus: ModulusSpec::PrimeChain {
                primes: vec![1099511627689, 1099511627691],
                special: 2199023255531,
            },
            security: SecurityLevel::Bits128,
            error_stddev: 3.2,
        }
    }

    #[test]
    fn params_roundtrip_both_variants() {
        for p in [
            rns_params(),
            EncryptionParams {
                degree: 16384,
                modulus: ModulusSpec::PowerOfTwo { log_q: 155, log_special: 60 },
                security: SecurityLevel::Insecure,
                error_stddev: 3.2,
            },
        ] {
            let mut w = Writer::new();
            put_params(&mut w, &p);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(get_params(&mut r).unwrap(), p);
            r.finish().unwrap();
        }
    }

    #[test]
    fn rotation_policy_roundtrip() {
        for k in [
            RotationKeyPolicy::PowersOfTwo,
            RotationKeyPolicy::Exact([1usize, 2, 5, 31].into_iter().collect()),
        ] {
            let mut w = Writer::new();
            put_rotation_keys(&mut w, &k);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(get_rotation_keys(&mut r).unwrap(), k);
            r.finish().unwrap();
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut w = Writer::new();
        put_params(&mut w, &rns_params());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                get_params(&mut r).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            get_scheme(&mut r),
            Err(CodecError::BadTag { what: "SchemeKind", tag: 9, .. })
        ));
    }

    #[test]
    fn corrupted_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u8(1); // PrimeChain tag
        w.put_u32(u32::MAX); // absurd prime count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(get_modulus(&mut r), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes() {
        let a = rns_params();
        assert_eq!(params_fingerprint(&a), params_fingerprint(&a.clone()));
        let mut b = a.clone();
        b.degree = 16384;
        assert_ne!(params_fingerprint(&a), params_fingerprint(&b));
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let mut w = Writer::new();
        put_params(&mut w, &rns_params());
        let bytes = w.into_bytes();
        let base = fnv1a64(&bytes);
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert_ne!(fnv1a64(&flipped), base, "bit flip at byte {i} undetected");
        }
    }
}
