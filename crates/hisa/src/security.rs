//! Security tables from the Homomorphic Encryption Standard.
//!
//! For a given coefficient-modulus size `log2 Q` (including any special
//! key-switching modulus) and a desired security level, the standard
//! prescribes a minimum ring degree `N` (paper §2.3: "The security level for
//! a given Q and N is a table provided by the encryption scheme which CHET
//! explicitly encodes").

use serde::{Deserialize, Serialize};

/// Classical security levels from the HE standard tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SecurityLevel {
    /// 128-bit classical security (CHET's default).
    #[default]
    Bits128,
    /// 192-bit classical security.
    Bits192,
    /// 256-bit classical security.
    Bits256,
    /// No security constraint (used only to mirror the paper's HEAAN
    /// baselines, which ran with "somewhat less than 128-bit security").
    Insecure,
}

/// Supported ring degrees, smallest to largest.
pub const DEGREES: [usize; 6] = [1024, 2048, 4096, 8192, 16384, 32768];

/// `(degree, max log2 Q)` rows of the HE-standard table for ternary secrets.
const MAX_LOG_Q_128: [(usize, u32); 6] =
    [(1024, 27), (2048, 54), (4096, 109), (8192, 218), (16384, 438), (32768, 881)];
const MAX_LOG_Q_192: [(usize, u32); 6] =
    [(1024, 19), (2048, 37), (4096, 75), (8192, 152), (16384, 305), (32768, 611)];
const MAX_LOG_Q_256: [(usize, u32); 6] =
    [(1024, 14), (2048, 29), (4096, 58), (8192, 118), (16384, 237), (32768, 476)];

/// Maximum total `log2 Q` (including special modulus) admissible at ring
/// degree `degree` for `level` security. Returns `u32::MAX` for
/// [`SecurityLevel::Insecure`].
///
/// # Panics
///
/// Panics if `degree` is not one of [`DEGREES`].
pub fn max_log_q(degree: usize, level: SecurityLevel) -> u32 {
    let table = match level {
        SecurityLevel::Bits128 => &MAX_LOG_Q_128,
        SecurityLevel::Bits192 => &MAX_LOG_Q_192,
        SecurityLevel::Bits256 => &MAX_LOG_Q_256,
        SecurityLevel::Insecure => return u32::MAX,
    };
    table
        .iter()
        .find(|&&(n, _)| n == degree)
        .map(|&(_, q)| q)
        .unwrap_or_else(|| panic!("unsupported ring degree {degree}"))
}

/// Smallest supported ring degree whose modulus budget at `level` admits a
/// total modulus of `log_q_bits` bits, or `None` if even `N = 32768` cannot.
pub fn min_degree_for_modulus(log_q_bits: u32, level: SecurityLevel) -> Option<usize> {
    DEGREES.into_iter().find(|&n| max_log_q(n, level) >= log_q_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_he_standard() {
        assert_eq!(max_log_q(8192, SecurityLevel::Bits128), 218);
        assert_eq!(max_log_q(32768, SecurityLevel::Bits128), 881);
        assert_eq!(max_log_q(4096, SecurityLevel::Bits192), 75);
        assert_eq!(max_log_q(1024, SecurityLevel::Bits256), 14);
    }

    #[test]
    fn min_degree_monotone_in_modulus() {
        let mut last = 0usize;
        for bits in (20..880).step_by(37) {
            let n = min_degree_for_modulus(bits, SecurityLevel::Bits128).unwrap();
            assert!(n >= last, "degree must not shrink as modulus grows");
            last = n;
        }
    }

    #[test]
    fn too_large_modulus_has_no_degree() {
        assert_eq!(min_degree_for_modulus(882, SecurityLevel::Bits128), None);
        assert_eq!(min_degree_for_modulus(612, SecurityLevel::Bits192), None);
    }

    #[test]
    fn insecure_is_unbounded() {
        assert_eq!(max_log_q(1024, SecurityLevel::Insecure), u32::MAX);
        assert_eq!(min_degree_for_modulus(10_000, SecurityLevel::Insecure), Some(1024));
    }

    #[test]
    fn stricter_levels_allow_less_modulus() {
        for n in DEGREES {
            assert!(max_log_q(n, SecurityLevel::Bits128) > max_log_q(n, SecurityLevel::Bits192));
            assert!(max_log_q(n, SecurityLevel::Bits192) > max_log_q(n, SecurityLevel::Bits256));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported ring degree")]
    fn unsupported_degree_panics() {
        max_log_q(3000, SecurityLevel::Bits128);
    }
}
