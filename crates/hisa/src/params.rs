//! Encryption parameters shared by schemes and the parameter-selection pass.

use crate::security::{max_log_q, SecurityLevel};
use chet_math::prime::ntt_primes;
use serde::{Deserialize, Serialize};

/// Which CKKS variant a backend implements (paper §2.2–2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// HEAAN v1.0-style CKKS: `Q = 2^L`, big-integer coefficients,
    /// power-of-two rescaling.
    Ckks,
    /// SEAL v3.1-style RNS-CKKS: `Q = Π q_i` for word-sized NTT primes,
    /// rescaling by chain primes.
    RnsCkks,
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeKind::Ckks => write!(f, "CKKS (HEAAN-style)"),
            SchemeKind::RnsCkks => write!(f, "RNS-CKKS (SEAL-style)"),
        }
    }
}

/// The coefficient modulus, in the representation native to each variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModulusSpec {
    /// `Q = 2^log_q`, plus a special key-switching modulus `P = 2^log_special`.
    PowerOfTwo {
        /// log2 of the ciphertext modulus.
        log_q: u32,
        /// log2 of the special modulus used only inside key switching.
        log_special: u32,
    },
    /// `Q = Π primes`, plus one special key-switching prime.
    PrimeChain {
        /// The rescaling chain `q_0 … q_{r-1}` (consumed back to front).
        primes: Vec<u64>,
        /// The special key-switching prime `p`.
        special: u64,
    },
}

impl ModulusSpec {
    /// Which scheme variant this modulus belongs to.
    pub fn kind(&self) -> SchemeKind {
        match self {
            ModulusSpec::PowerOfTwo { .. } => SchemeKind::Ckks,
            ModulusSpec::PrimeChain { .. } => SchemeKind::RnsCkks,
        }
    }

    /// `log2 Q` of the ciphertext modulus (excluding the special modulus).
    pub fn log_q(&self) -> f64 {
        match self {
            ModulusSpec::PowerOfTwo { log_q, .. } => *log_q as f64,
            ModulusSpec::PrimeChain { primes, .. } => {
                primes.iter().map(|&p| (p as f64).log2()).sum()
            }
        }
    }

    /// Total `log2 (Q·P)` including the special modulus — the quantity the
    /// security table constrains.
    pub fn total_log_q(&self) -> f64 {
        match self {
            ModulusSpec::PowerOfTwo { log_q, log_special } => (*log_q + *log_special) as f64,
            ModulusSpec::PrimeChain { primes, special } => {
                primes.iter().map(|&p| (p as f64).log2()).sum::<f64>() + (*special as f64).log2()
            }
        }
    }

    /// Length of the rescaling chain (`r` in the paper; the CKKS power-of-two
    /// variant reports 1).
    pub fn chain_len(&self) -> usize {
        match self {
            ModulusSpec::PowerOfTwo { .. } => 1,
            ModulusSpec::PrimeChain { primes, .. } => primes.len(),
        }
    }
}

/// Complete encryption parameters for a CKKS-family scheme instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptionParams {
    /// Ring degree `N` (power of two). SIMD width is `N/2`.
    pub degree: usize,
    /// The coefficient modulus.
    pub modulus: ModulusSpec,
    /// Security level the parameters are meant to satisfy.
    pub security: SecurityLevel,
    /// Standard deviation of the discrete Gaussian error distribution.
    pub error_stddev: f64,
}

/// Error from [`EncryptionParams::validate`]. Each variant carries the
/// offending value and the limit it violated so callers (and the compiler's
/// repair loop) can act on it without parsing strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// The ring degree is not a supported power of two.
    BadDegree {
        /// The rejected degree.
        got: usize,
        /// Smallest supported degree.
        min: usize,
        /// Largest supported degree.
        max: usize,
    },
    /// The coefficient modulus has (essentially) no bits.
    EmptyModulus {
        /// `log2 Q` of the rejected modulus.
        got_log_q: f64,
    },
    /// The total modulus exceeds the security table's budget.
    OverBudget {
        /// Total `log2 (Q·P)` of the rejected parameters, in bits.
        got_bits: f64,
        /// The security table's budget for this degree and level, in bits.
        limit_bits: u32,
        /// Ring degree the budget was looked up for.
        degree: usize,
        /// Security level the budget was looked up for.
        security: SecurityLevel,
    },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid encryption parameters: ")?;
        match self {
            ParamsError::BadDegree { got, min, max } => {
                write!(f, "ring degree {got} must be a power of two in [{min}, {max}]")
            }
            ParamsError::EmptyModulus { got_log_q } => {
                write!(f, "coefficient modulus is empty ({got_log_q:.2} bits)")
            }
            ParamsError::OverBudget { got_bits, limit_bits, degree, security } => write!(
                f,
                "total modulus {got_bits:.0} bits exceeds the {limit_bits}-bit budget \
                 for N = {degree} at {security:?}"
            ),
        }
    }
}

impl std::error::Error for ParamsError {}

impl EncryptionParams {
    /// Bit size used for RNS chain primes, matching the 60-bit primes SEAL
    /// distributes (paper §5.2 footnote). Scale primes in the middle of the
    /// chain are generated at the working-scale size by the compiler.
    pub const DEFAULT_SPECIAL_PRIME_BITS: u32 = 60;

    /// Default error standard deviation (the HE-standard value).
    pub const DEFAULT_ERROR_STDDEV: f64 = 3.2;

    /// Builds HEAAN-style parameters with `Q = 2^log_q` and a special
    /// modulus sized for key switching.
    pub fn ckks(degree: usize, log_q: u32) -> Self {
        EncryptionParams {
            degree,
            modulus: ModulusSpec::PowerOfTwo { log_q, log_special: log_q },
            security: SecurityLevel::Bits128,
            error_stddev: Self::DEFAULT_ERROR_STDDEV,
        }
    }

    /// Builds SEAL-style parameters with a chain of `chain_len` primes of
    /// `prime_bits` bits each plus one 60-bit special prime.
    ///
    /// The first (base) prime anchors the output precision; the rest are the
    /// rescaling budget.
    pub fn rns_ckks(degree: usize, prime_bits: u32, chain_len: usize) -> Self {
        // Generate chain primes and the special prime from disjoint windows
        // when sizes collide, by asking for one extra and splitting.
        let special_bits = Self::DEFAULT_SPECIAL_PRIME_BITS;
        let (primes, special) = if special_bits == prime_bits {
            let mut all = ntt_primes(prime_bits, degree, chain_len + 1);
            let special = all.remove(0);
            (all, special)
        } else {
            (
                ntt_primes(prime_bits, degree, chain_len),
                ntt_primes(special_bits, degree, 1)[0],
            )
        };
        EncryptionParams {
            degree,
            modulus: ModulusSpec::PrimeChain { primes, special },
            security: SecurityLevel::Bits128,
            error_stddev: Self::DEFAULT_ERROR_STDDEV,
        }
    }

    /// Overrides the security level (builder style).
    pub fn with_security(mut self, level: SecurityLevel) -> Self {
        self.security = level;
        self
    }

    /// The scheme variant these parameters describe.
    pub fn kind(&self) -> SchemeKind {
        self.modulus.kind()
    }

    /// SIMD slot count (`N/2`).
    pub fn slots(&self) -> usize {
        self.degree / 2
    }

    /// Checks structural validity and the security table.
    ///
    /// # Errors
    ///
    /// Returns an error when the degree is not a supported power of two,
    /// the modulus is empty, or the total modulus exceeds the security
    /// table's budget for the chosen level.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if !self.degree.is_power_of_two() || !(1024..=32768).contains(&self.degree) {
            return Err(ParamsError::BadDegree { got: self.degree, min: 1024, max: 32768 });
        }
        if self.modulus.log_q() < 1.0 {
            return Err(ParamsError::EmptyModulus { got_log_q: self.modulus.log_q() });
        }
        if self.security != SecurityLevel::Insecure {
            let budget = max_log_q(self.degree, self.security);
            let total = self.modulus.total_log_q();
            if total > budget as f64 {
                return Err(ParamsError::OverBudget {
                    got_bits: total,
                    limit_bits: budget,
                    degree: self.degree,
                    security: self.security,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckks_params_roundtrip_kind() {
        let p = EncryptionParams::ckks(8192, 109);
        assert_eq!(p.kind(), SchemeKind::Ckks);
        assert_eq!(p.slots(), 4096);
        assert_eq!(p.modulus.log_q(), 109.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn rns_params_generate_distinct_primes() {
        let p = EncryptionParams::rns_ckks(8192, 40, 2);
        match &p.modulus {
            ModulusSpec::PrimeChain { primes, special } => {
                assert_eq!(primes.len(), 2);
                assert!(!primes.contains(special));
                assert!(primes[0] != primes[1]);
            }
            _ => panic!("expected prime chain"),
        }
        assert!(p.validate().is_ok());
    }

    #[test]
    fn oversized_modulus_fails_validation() {
        let p = EncryptionParams::ckks(1024, 200);
        assert!(p.validate().is_err());
        let p = p.with_security(SecurityLevel::Insecure);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn chain_len_matches_variant() {
        assert_eq!(EncryptionParams::ckks(2048, 40).modulus.chain_len(), 1);
        assert_eq!(EncryptionParams::rns_ckks(2048, 30, 3).modulus.chain_len(), 3);
    }

    #[test]
    fn total_log_q_includes_special() {
        let p = EncryptionParams::rns_ckks(4096, 40, 1);
        let m = &p.modulus;
        assert!(m.total_log_q() > m.log_q() + 58.0);
    }

    #[test]
    fn bad_degree_rejected() {
        assert!(EncryptionParams::ckks(3000, 40).validate().is_err());
        assert!(EncryptionParams::ckks(512, 20).validate().is_err());
    }

    #[test]
    fn bad_degree_error_carries_got_and_limits() {
        let err = EncryptionParams::ckks(3000, 40).validate().unwrap_err();
        assert_eq!(err, ParamsError::BadDegree { got: 3000, min: 1024, max: 32768 });
        let msg = err.to_string();
        assert!(msg.contains("3000") && msg.contains("1024") && msg.contains("32768"), "{msg}");
    }

    #[test]
    fn empty_modulus_error_carries_bits() {
        let p = EncryptionParams::ckks(1024, 0);
        match p.validate().unwrap_err() {
            ParamsError::EmptyModulus { got_log_q } => assert_eq!(got_log_q, 0.0),
            other => panic!("expected EmptyModulus, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_error_carries_got_and_limit() {
        let p = EncryptionParams::ckks(1024, 200);
        match p.validate().unwrap_err() {
            ParamsError::OverBudget { got_bits, limit_bits, degree, security } => {
                assert_eq!(got_bits, 400.0); // log_q + log_special
                assert!(limit_bits < 400);
                assert_eq!(degree, 1024);
                assert_eq!(security, SecurityLevel::Bits128);
                let msg = p.validate().unwrap_err().to_string();
                assert!(msg.contains("400") && msg.contains(&limit_bits.to_string()), "{msg}");
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }
}
