//! Minimal JSON value type, parser, and serializer.
//!
//! The workspace deliberately carries no external serialization dependency
//! (the vendored `serde` is a no-op stub), yet two artifacts must speak
//! JSON: the `BENCH_rns_ops.json` calibration file consumed by
//! `chet-lint --calibration` and CI, and `chet-lint --machine`'s
//! JSON-lines diagnostic stream. This module is the single shared
//! implementation — a strict subset of RFC 8259 sufficient for those uses:
//! objects, arrays, strings with `\uXXXX` escapes, finite numbers, bools,
//! and null. Non-finite floats serialize as `null` (JSON has no NaN).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use a [`BTreeMap`] so serialization is
/// deterministic (sorted keys) — the property CI diffs rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace, sorted object keys).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&render_num(*x)),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders a finite f64 the shortest way that round-trips; non-finite
/// values become `null`.
fn render_num(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without a fraction ("3" not "3.0"): python's
        // json module and this parser both accept either form.
        format!("{}", x as i64)
    } else {
        let s = format!("{x}");
        debug_assert!(s.parse::<f64>().map(|y| y == x).unwrap_or(false));
        s
    }
}

/// Appends `s` with JSON string escaping (quotes, backslash, control
/// characters) but without surrounding quotes.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON-escapes a string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError { at: p.pos, reason: "trailing characters after document" });
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError { at: self.pos, reason }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, reason: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", "expected 'true'").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false", "expected 'false'").map(|_| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00..\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.literal("\\u", "expected low surrogate")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // a char boundary is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = s.parse().map_err(|_| {
            self.pos = start;
            self.err("invalid number")
        })?;
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let src = r#"{"b":[1,2.5,-3e2,null,true],"a":{"nested":"va\"l\nue"},"empty":[],"zero":0}"#;
        let v = parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(v.get("b").and_then(|b| b.as_arr()).map(|a| a.len()), Some(5));
        assert_eq!(
            v.get("a").and_then(|a| a.get("nested")).and_then(|s| s.as_str()),
            Some("va\"l\nue")
        );
    }

    #[test]
    fn escapes_control_characters() {
        let s = "tab\there \"quote\" back\\slash\nnewline \u{1}ctl";
        let j = Json::Str(s.into());
        let rendered = j.render();
        assert!(rendered.contains("\\t") && rendered.contains("\\u0001"));
        assert_eq!(parse(&rendered).unwrap(), j);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "\"open", "{\"a\":}", "nul", "1 2", "{'a':1}", ""] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_roundtrip_bitwise() {
        for x in [0.0, -1.5, 3.0, 1e-9, 123456789.25, f64::MAX] {
            let rendered = Json::Num(x).render();
            match parse(&rendered).unwrap() {
                Json::Num(y) => assert_eq!(y.to_bits(), x.to_bits(), "{x}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
