//! Typed failure modes of HISA instructions.
//!
//! Backends historically panicked on contract violations (missing rotation
//! keys, exhausted modulus chains, mismatched operand scales). [`HisaError`]
//! names those failure modes so the runtime's fallible execution pipeline
//! (`chet_runtime::exec::try_infer`) can surface them as values instead of
//! aborting, and so the compiler's self-repair loop
//! (`chet_compiler::Compiler::compile_checked`) can dispatch on them.

use std::fmt;

/// A recoverable failure of a single HISA instruction.
///
/// Every variant carries enough context to diagnose the failing operation
/// without a backtrace: the offending value and the limit it violated.
#[derive(Debug, Clone, PartialEq)]
pub enum HisaError {
    /// A rotation step has no key and cannot be decomposed into the
    /// available key steps.
    MissingRotationKey {
        /// The (normalized, left) rotation step that was requested.
        step: usize,
        /// The rotation steps that do have keys.
        available: Vec<usize>,
    },
    /// A rescale was requested but the modulus chain (or modulus budget)
    /// cannot absorb it.
    LevelExhausted {
        /// Rescale capacity still available (chain levels for RNS-CKKS,
        /// modulus bits for power-of-two CKKS).
        remaining: f64,
        /// Capacity the operation needed, in the same unit as `remaining`.
        requested: f64,
    },
    /// A binary operation was applied to operands with different scales.
    ScaleMismatch {
        /// Scale of the left operand.
        left: f64,
        /// Scale of the right operand.
        right: f64,
    },
    /// An encode was given more values than the scheme has slots.
    SlotOverflow {
        /// Number of values supplied.
        len: usize,
        /// Slot capacity of the scheme.
        slots: usize,
    },
    /// A rescale divisor violated the backend's contract (not a power of
    /// two for CKKS, not a product of the next chain primes for RNS-CKKS).
    InvalidRescale {
        /// The offending divisor.
        divisor: f64,
        /// Backend-specific description of the violated contract.
        reason: String,
    },
}

impl fmt::Display for HisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HisaError::MissingRotationKey { step, available } => write!(
                f,
                "no rotation-key plan for step {step} (available key steps: {available:?})"
            ),
            HisaError::LevelExhausted { remaining, requested } => write!(
                f,
                "modulus exhausted: rescale needs {requested:.1} but only {remaining:.1} remain"
            ),
            HisaError::ScaleMismatch { left, right } => write!(
                f,
                "operand scales must match (got {left} vs {right}); rescale first"
            ),
            HisaError::SlotOverflow { len, slots } => {
                write!(f, "too many values for the slot count ({len} > {slots})")
            }
            HisaError::InvalidRescale { divisor, reason } => {
                write!(f, "invalid rescale divisor {divisor}: {reason}")
            }
        }
    }
}

impl std::error::Error for HisaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_panic_phrases() {
        // The fallible surface replaces panic sites whose messages existing
        // tests (and users) match on; the Display strings keep the phrases.
        let e = HisaError::MissingRotationKey { step: 3, available: vec![1, 2, 4] };
        assert!(e.to_string().contains("no rotation-key plan"));

        let e = HisaError::LevelExhausted { remaining: 0.0, requested: 1.0 };
        assert!(e.to_string().contains("modulus exhausted"));

        let e = HisaError::ScaleMismatch { left: 2.0, right: 4.0 };
        assert!(e.to_string().contains("scales must match"));

        let e = HisaError::SlotOverflow { len: 9, slots: 8 };
        assert!(e.to_string().contains("too many values"));

        let e = HisaError::InvalidRescale {
            divisor: 3.0,
            reason: "CKKS rescale divisor must be a power of two".into(),
        };
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn error_carries_offending_values() {
        let e = HisaError::SlotOverflow { len: 100, slots: 64 };
        let msg = e.to_string();
        assert!(msg.contains("100") && msg.contains("64"), "{msg}");
    }
}
