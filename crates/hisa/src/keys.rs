//! Rotation-key policies (paper §2.4 and §5.4).
//!
//! Rotating a ciphertext by `x` slots needs a public rotation key specific
//! to `x`. Generating a key per possible rotation is infeasible (there are
//! `N/2` of them), so FHE libraries default to keys for power-of-two
//! rotations and compose others from several rotations. CHET's rotation-key
//! selection pass instead records the exact set of rotation amounts a
//! circuit uses and generates precisely those keys.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Normalizes a signed rotation amount to a left-rotation step in
/// `[0, slots)`. Positive input means "rotate left", negative means
/// "rotate right".
///
/// # Panics
///
/// Panics if `slots == 0`.
pub fn normalize_rotation(step: i64, slots: usize) -> usize {
    assert!(slots > 0, "slot count must be positive");
    let m = slots as i64;
    (((step % m) + m) % m) as usize
}

/// Which rotation keys a scheme instance should generate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotationKeyPolicy {
    /// The library default: keys for every power-of-two left and right
    /// rotation (`2 log(N) − 2` keys). Arbitrary rotations are composed
    /// from several power-of-two rotations.
    PowersOfTwo,
    /// Exactly the given set of left-rotation steps (each in `[1, slots)`),
    /// as selected by the compiler's rotation-keys pass.
    Exact(BTreeSet<usize>),
}

impl Default for RotationKeyPolicy {
    fn default() -> Self {
        RotationKeyPolicy::PowersOfTwo
    }
}

impl RotationKeyPolicy {
    /// The concrete set of left-rotation steps to generate keys for, given
    /// the scheme's slot count.
    pub fn steps(&self, slots: usize) -> BTreeSet<usize> {
        match self {
            RotationKeyPolicy::PowersOfTwo => {
                let mut steps = BTreeSet::new();
                let mut p = 1usize;
                while p < slots {
                    steps.insert(p); // left by 2^k
                    steps.insert(slots - p); // right by 2^k == left by slots − 2^k
                    p <<= 1;
                }
                steps
            }
            RotationKeyPolicy::Exact(set) => set
                .iter()
                .map(|&s| normalize_rotation(s as i64, slots))
                .filter(|&s| s != 0)
                .collect(),
        }
    }

    /// Number of keys this policy will generate.
    pub fn key_count(&self, slots: usize) -> usize {
        self.steps(slots).len()
    }
}

/// Plans how to realize a left rotation by `step` using only the `available`
/// key steps: returns the sequence of left-rotation steps to apply.
///
/// Strategy mirrors the FHE libraries: use the key directly when present,
/// otherwise greedily compose from the largest available steps (which always
/// succeeds for the power-of-two key set). When the greedy pass fails — e.g.
/// an exact key set whose steps only reach the target *with* wrap-around —
/// a breadth-first search over residues modulo `slots` finds a shortest
/// composition if one exists. Returns `None` when the step cannot be
/// composed from the available keys at all.
pub fn plan_rotation(step: usize, available: &BTreeSet<usize>, slots: usize) -> Option<Vec<usize>> {
    let step = normalize_rotation(step as i64, slots);
    if step == 0 {
        return Some(Vec::new());
    }
    if available.contains(&step) {
        return Some(vec![step]);
    }
    greedy_plan(step, available, slots).or_else(|| bfs_plan(step, available, slots))
}

/// Greedy composition: repeatedly take the largest available step
/// `<= remaining`. Fast and optimal for power-of-two key sets.
fn greedy_plan(step: usize, available: &BTreeSet<usize>, slots: usize) -> Option<Vec<usize>> {
    let mut remaining = step;
    let mut plan = Vec::new();
    while remaining > 0 {
        let next = available.range(..=remaining).next_back().copied()?;
        plan.push(next);
        remaining -= next;
        if plan.len() > 2 * slots.trailing_zeros() as usize + 2 {
            // Defensive bound: with power-of-two keys the plan length is at
            // most log2(slots); anything longer means the set cannot span.
            return None;
        }
    }
    Some(plan)
}

/// Shortest composition of available steps reaching `step` modulo `slots`,
/// or `None` if `step` lies outside the subgroup the steps generate.
fn bfs_plan(step: usize, available: &BTreeSet<usize>, slots: usize) -> Option<Vec<usize>> {
    if available.is_empty() {
        return None;
    }
    // predecessor[r] = (previous residue, step taken); usize::MAX = unvisited.
    let mut pred: Vec<(usize, usize)> = vec![(usize::MAX, 0); slots];
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(at) = queue.pop_front() {
        for &s in available {
            let next = (at + s) % slots;
            if next != 0 && pred[next].0 == usize::MAX {
                pred[next] = (at, s);
                if next == step {
                    let mut plan = Vec::new();
                    let mut r = step;
                    while r != 0 {
                        let (prev, taken) = pred[r];
                        plan.push(taken);
                        r = prev;
                    }
                    plan.reverse();
                    return Some(plan);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_wraps_and_signs() {
        assert_eq!(normalize_rotation(3, 16), 3);
        assert_eq!(normalize_rotation(-3, 16), 13);
        assert_eq!(normalize_rotation(16, 16), 0);
        assert_eq!(normalize_rotation(35, 16), 3);
        assert_eq!(normalize_rotation(-35, 16), 13);
    }

    #[test]
    fn power_of_two_key_count_matches_paper() {
        // Paper §5.4: only 2 log(N) − 2 rotation keys are stored by default.
        // With slots = N/2 that is 2 log2(slots) − 1 distinct left steps
        // (left and right powers coincide at slots/2).
        let slots = 2048usize;
        let policy = RotationKeyPolicy::PowersOfTwo;
        assert_eq!(policy.key_count(slots), 2 * slots.trailing_zeros() as usize - 1);
    }

    #[test]
    fn exact_policy_normalizes_and_drops_zero() {
        let set: BTreeSet<usize> = [0usize, 5, 21].into_iter().collect();
        let policy = RotationKeyPolicy::Exact(set);
        let steps = policy.steps(16);
        assert_eq!(steps, [5usize].into_iter().collect()); // 21 % 16 == 5, 0 dropped
    }

    #[test]
    fn plan_uses_direct_key_when_available() {
        let avail: BTreeSet<usize> = [1usize, 2, 4, 6, 8].into_iter().collect();
        assert_eq!(plan_rotation(6, &avail, 16), Some(vec![6]));
    }

    #[test]
    fn plan_composes_from_powers_of_two() {
        let slots = 64usize;
        let avail = RotationKeyPolicy::PowersOfTwo.steps(slots);
        for step in 1..slots {
            let plan = plan_rotation(step, &avail, slots).expect("pow2 keys span everything");
            assert_eq!(plan.iter().sum::<usize>() % slots, step);
        }
    }

    #[test]
    fn plan_fails_when_unspannable() {
        let avail: BTreeSet<usize> = [4usize].into_iter().collect();
        assert_eq!(plan_rotation(3, &avail, 16), None);
    }

    #[test]
    fn plan_falls_back_to_wraparound_composition() {
        // Greedy fails (no step <= 8), but 12 + 12 ≡ 8 (mod 16).
        let avail: BTreeSet<usize> = [12usize].into_iter().collect();
        assert_eq!(plan_rotation(8, &avail, 16), Some(vec![12, 12]));

        // A generator of the full group reaches any residue eventually.
        let avail: BTreeSet<usize> = [3usize].into_iter().collect();
        let plan = plan_rotation(2, &avail, 16).expect("3 generates Z/16");
        assert_eq!(plan.iter().sum::<usize>() % 16, 2);
    }

    #[test]
    fn zero_rotation_is_empty_plan() {
        let avail = BTreeSet::new();
        assert_eq!(plan_rotation(0, &avail, 8), Some(vec![]));
        assert_eq!(plan_rotation(8, &avail, 8), Some(vec![]));
    }
}
