//! Cost model for HISA primitives (paper Table 1 + §5.3).
//!
//! The data-layout selection pass estimates circuit execution time by
//! summing per-op costs. Costs follow the asymptotic complexities of paper
//! Table 1, with per-op constants that can be tuned from microbenchmarks
//! ("we use a combination of theoretical and experimental analysis").

use crate::params::SchemeKind;
use serde::{Deserialize, Serialize};

/// The HISA primitive kinds that appear in circuit execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HisaOp {
    /// Ciphertext ± ciphertext (also covers the scalar-add flavors, which
    /// cost the same).
    Add,
    /// Ciphertext × scalar constant.
    MulScalar,
    /// Ciphertext × encoded plaintext vector.
    MulPlain,
    /// Ciphertext × ciphertext (includes relinearization).
    MulCipher,
    /// Slot rotation (either direction).
    Rotate,
    /// Rescaling.
    Rescale,
    /// Plaintext vector encoding (an NTT per RNS limb). Kernels encode
    /// weight vectors per call, so encoding is a first-class cost, not
    /// free setup. Appended last so the artifact codec's `ALL_OPS`-index
    /// tags for the original six ops stay stable.
    Encode,
    /// A rotation that shares a *hoisted* key-switch decomposition with an
    /// earlier rotation of the same ciphertext (nGraph-HE2 style batching,
    /// implemented by the RNS backend's `rot_left_many`). The gadget
    /// decomposition — the `O(N log N · r²)` base conversions and NTTs that
    /// dominate a full rotation — is paid once per source ciphertext; each
    /// extra rotation only pays the key inner product and modulus-down
    /// switch. Appended after `Encode` for the same tag-stability reason.
    RotateHoisted,
}

/// All [`HisaOp`] variants, for iteration in calibration and reports.
pub const ALL_OPS: [HisaOp; 8] = [
    HisaOp::Add,
    HisaOp::MulScalar,
    HisaOp::MulPlain,
    HisaOp::MulCipher,
    HisaOp::Rotate,
    HisaOp::Rescale,
    HisaOp::Encode,
    HisaOp::RotateHoisted,
];

impl std::fmt::Display for HisaOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HisaOp::Add => "add",
            HisaOp::MulScalar => "mulScalar",
            HisaOp::MulPlain => "mulPlain",
            HisaOp::MulCipher => "mul",
            HisaOp::Rotate => "rotate",
            HisaOp::Rescale => "rescale",
            HisaOp::Encode => "encode",
            HisaOp::RotateHoisted => "rotateHoisted",
        };
        f.write_str(s)
    }
}

/// Inverse of [`HisaOp`]'s `Display` names, for parsing calibration files.
pub fn op_from_name(name: &str) -> Option<HisaOp> {
    ALL_OPS.iter().copied().find(|op| op.to_string() == name)
}

/// Modulus state of a ciphertext at the point an op executes: costs grow
/// with the remaining modulus (`log Q` for CKKS, chain length `r` for
/// RNS-CKKS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelInfo {
    /// Remaining `log2 Q` of the operand ciphertext.
    pub log_q: f64,
    /// Remaining RNS chain length `r` (1 for the power-of-two variant).
    pub rns_len: usize,
}

/// Per-scheme cost model with tunable constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    kind: SchemeKind,
    add: f64,
    mul_scalar: f64,
    mul_plain: f64,
    mul_cipher: f64,
    rotate: f64,
    rescale: f64,
    encode: f64,
    /// Added after the original seven constants (appended last in
    /// [`ALL_OPS`] so older artifacts' op tags stay stable).
    rotate_hoisted: f64,
}

impl CostModel {
    /// Default constants for a scheme variant. The absolute magnitudes are
    /// arbitrary (the layout pass only compares alternatives); the *ratios*
    /// reflect microbenchmarks of the two backends in this repository — e.g.
    /// `mulPlain` is much more expensive than `mulScalar` under bigint CKKS
    /// but identical under RNS-CKKS, the asymmetry that drives the paper's
    /// HW-vs-CHW layout observations (§4.2, Tables 5/6).
    pub fn for_scheme(kind: SchemeKind) -> Self {
        match kind {
            SchemeKind::Ckks => CostModel {
                kind,
                add: 1.0,
                mul_scalar: 1.2,
                mul_plain: 1.0,
                mul_cipher: 2.2,
                rotate: 2.0,
                rescale: 0.6,
                encode: 0.8,
                rotate_hoisted: 2.0,
            },
            SchemeKind::RnsCkks => CostModel {
                kind,
                add: 1.0,
                mul_scalar: 1.1,
                mul_plain: 1.2,
                mul_cipher: 2.5,
                rotate: 2.2,
                rescale: 0.8,
                encode: 1.0,
                rotate_hoisted: 1.0,
            },
        }
    }

    /// The scheme variant this model describes.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Overrides a single constant (used by microbenchmark calibration).
    pub fn set_constant(&mut self, op: HisaOp, value: f64) {
        let slot = match op {
            HisaOp::Add => &mut self.add,
            HisaOp::MulScalar => &mut self.mul_scalar,
            HisaOp::MulPlain => &mut self.mul_plain,
            HisaOp::MulCipher => &mut self.mul_cipher,
            HisaOp::Rotate => &mut self.rotate,
            HisaOp::Rescale => &mut self.rescale,
            HisaOp::Encode => &mut self.encode,
            HisaOp::RotateHoisted => &mut self.rotate_hoisted,
        };
        *slot = value;
    }

    /// The tunable constant for one op (the value [`Self::set_constant`]
    /// writes), used by calibration reports.
    pub fn constant(&self, op: HisaOp) -> f64 {
        match op {
            HisaOp::Add => self.add,
            HisaOp::MulScalar => self.mul_scalar,
            HisaOp::MulPlain => self.mul_plain,
            HisaOp::MulCipher => self.mul_cipher,
            HisaOp::Rotate => self.rotate,
            HisaOp::Rescale => self.rescale,
            HisaOp::Encode => self.encode,
            HisaOp::RotateHoisted => self.rotate_hoisted,
        }
    }

    /// The op's cost with its constant factored out — the "unit work" that
    /// calibration fits a microsecond-per-unit constant against.
    pub fn unit_work(&self, op: HisaOp, n: usize, lvl: LevelInfo) -> f64 {
        self.op_cost(op, n, lvl) / self.constant(op)
    }

    /// Estimated cost of one op at ring degree `n` and modulus state `lvl`
    /// (paper Table 1 asymptotics).
    pub fn op_cost(&self, op: HisaOp, n: usize, lvl: LevelInfo) -> f64 {
        let nf = n as f64;
        let log_n = nf.log2();
        match self.kind {
            SchemeKind::Ckks => {
                // M(Q) = log^1.58 Q (HEAAN's large-integer multiply).
                let m_q = lvl.log_q.max(2.0).powf(1.58);
                match op {
                    HisaOp::Add => self.add * nf * lvl.log_q.max(1.0),
                    HisaOp::MulScalar => self.mul_scalar * nf * m_q,
                    HisaOp::MulPlain => self.mul_plain * nf * log_n * m_q,
                    HisaOp::MulCipher => self.mul_cipher * nf * log_n * m_q,
                    HisaOp::Rotate => self.rotate * nf * log_n * m_q,
                    HisaOp::Rescale => self.rescale * nf * lvl.log_q.max(1.0),
                    HisaOp::Encode => self.encode * nf * log_n * m_q,
                    // The bigint backend has no hoisting; price as a full
                    // rotation so mixed-scheme callers stay conservative.
                    HisaOp::RotateHoisted => self.rotate_hoisted * nf * log_n * m_q,
                }
            }
            SchemeKind::RnsCkks => {
                let r = lvl.rns_len.max(1) as f64;
                match op {
                    HisaOp::Add => self.add * nf * r,
                    HisaOp::MulScalar => self.mul_scalar * nf * r,
                    HisaOp::MulPlain => self.mul_plain * nf * r,
                    HisaOp::MulCipher => self.mul_cipher * nf * log_n * r * r,
                    HisaOp::Rotate => self.rotate * nf * log_n * r * r,
                    HisaOp::Rescale => self.rescale * nf * log_n * r,
                    // One negacyclic NTT per RNS limb.
                    HisaOp::Encode => self.encode * nf * log_n * r,
                    // Shares the O(N log N · r²) gadget decomposition with an
                    // earlier rotation of the same ciphertext: pays only the
                    // key inner product (N·r²) and the special-prime
                    // mod-down NTTs (N log N · r).
                    HisaOp::RotateHoisted => self.rotate_hoisted * nf * r * (r + log_n),
                }
            }
        }
    }
}

/// One microbenchmark observation: `op` ran at ring degree `n` and modulus
/// state `lvl` and took `measured_us` microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSample {
    pub op: HisaOp,
    pub n: usize,
    pub lvl: LevelInfo,
    pub measured_us: f64,
}

/// Per-op result of [`calibrate`]: the fitted microsecond constant and the
/// worst relative prediction error over that op's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpFit {
    pub op: HisaOp,
    /// Fitted constant (µs per unit of Table 1 work). 0.0 if no samples.
    pub constant: f64,
    /// Number of samples the fit used.
    pub samples: usize,
    /// max over samples of |predicted − measured| / measured.
    pub max_rel_err: f64,
}

/// Fits per-op microsecond constants to microbenchmark samples by
/// least-squares through the origin: for each op, with `u_i` the Table 1
/// unit work of sample `i` and `t_i` its measured microseconds, the
/// constant is `k = Σ(u_i·t_i) / Σ(u_i²)` — the scale that minimizes
/// Σ(k·u_i − t_i)². Ops with no samples keep the default constant (whose
/// absolute magnitude is then meaningless next to calibrated ones, so
/// calibration benchmarks should cover every op they want priced).
///
/// The returned model predicts *microseconds* from [`CostModel::op_cost`].
pub fn calibrate(kind: SchemeKind, samples: &[CostSample]) -> (CostModel, Vec<OpFit>) {
    let unit = CostModel::for_scheme(kind);
    let mut model = CostModel::for_scheme(kind);
    let mut fits = Vec::new();
    for op in ALL_OPS {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut n_samples = 0;
        for s in samples.iter().filter(|s| s.op == op) {
            let u = unit.unit_work(op, s.n, s.lvl);
            num += u * s.measured_us;
            den += u * u;
            n_samples += 1;
        }
        if n_samples == 0 || den == 0.0 {
            fits.push(OpFit { op, constant: 0.0, samples: 0, max_rel_err: 0.0 });
            continue;
        }
        let k = num / den;
        model.set_constant(op, k);
        let mut max_rel_err = 0.0f64;
        for s in samples.iter().filter(|s| s.op == op) {
            let predicted = model.op_cost(op, s.n, s.lvl);
            if s.measured_us > 0.0 {
                max_rel_err = max_rel_err.max((predicted - s.measured_us).abs() / s.measured_us);
            }
        }
        fits.push(OpFit { op, constant: k, samples: n_samples, max_rel_err });
    }
    (model, fits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lvl(log_q: f64, r: usize) -> LevelInfo {
        LevelInfo { log_q, rns_len: r }
    }

    #[test]
    fn rns_add_linear_in_chain_length() {
        let m = CostModel::for_scheme(SchemeKind::RnsCkks);
        let c1 = m.op_cost(HisaOp::Add, 8192, lvl(120.0, 2));
        let c2 = m.op_cost(HisaOp::Add, 8192, lvl(240.0, 4));
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rns_mul_quadratic_in_chain_length() {
        let m = CostModel::for_scheme(SchemeKind::RnsCkks);
        let c1 = m.op_cost(HisaOp::MulCipher, 8192, lvl(120.0, 2));
        let c2 = m.op_cost(HisaOp::MulCipher, 8192, lvl(240.0, 4));
        assert!((c2 / c1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ckks_scalar_cheaper_than_plain() {
        // The HW-layout convolution advantage under HEAAN (paper §4.2): a
        // mulScalar lacks the log N factor a mulPlain carries.
        let m = CostModel::for_scheme(SchemeKind::Ckks);
        let l = lvl(300.0, 1);
        assert!(
            m.op_cost(HisaOp::MulScalar, 16384, l) * 4.0
                < m.op_cost(HisaOp::MulPlain, 16384, l)
        );
    }

    #[test]
    fn rns_scalar_and_plain_comparable() {
        let m = CostModel::for_scheme(SchemeKind::RnsCkks);
        let l = lvl(300.0, 5);
        let s = m.op_cost(HisaOp::MulScalar, 16384, l);
        let p = m.op_cost(HisaOp::MulPlain, 16384, l);
        assert!(p / s < 2.0, "mulPlain and mulScalar should be within 2x in RNS");
    }

    #[test]
    fn costs_grow_with_degree() {
        for kind in [SchemeKind::Ckks, SchemeKind::RnsCkks] {
            let m = CostModel::for_scheme(kind);
            for op in ALL_OPS {
                let small = m.op_cost(op, 4096, lvl(100.0, 3));
                let large = m.op_cost(op, 32768, lvl(100.0, 3));
                assert!(large > small, "{op} cost must grow with N under {kind:?}");
            }
        }
    }

    #[test]
    fn calibrate_recovers_exact_constants() {
        // Samples generated from a known model must fit back to it exactly.
        let mut truth = CostModel::for_scheme(SchemeKind::RnsCkks);
        truth.set_constant(HisaOp::Rotate, 3.25e-3);
        truth.set_constant(HisaOp::Add, 1.5e-5);
        let mut samples = Vec::new();
        for r in [2usize, 4, 6] {
            for op in [HisaOp::Rotate, HisaOp::Add] {
                samples.push(CostSample {
                    op,
                    n: 8192,
                    lvl: lvl(60.0 * r as f64, r),
                    measured_us: truth.op_cost(op, 8192, lvl(60.0 * r as f64, r)),
                });
            }
        }
        let (fitted, fits) = calibrate(SchemeKind::RnsCkks, &samples);
        for op in [HisaOp::Rotate, HisaOp::Add] {
            assert!((fitted.constant(op) - truth.constant(op)).abs() / truth.constant(op) < 1e-9);
            let fit = fits.iter().find(|f| f.op == op).unwrap();
            assert_eq!(fit.samples, 3);
            assert!(fit.max_rel_err < 1e-9);
        }
        // Unsampled ops report a zero-sample fit and keep defaults.
        let enc = fits.iter().find(|f| f.op == HisaOp::Encode).unwrap();
        assert_eq!(enc.samples, 0);
    }

    #[test]
    fn op_names_roundtrip() {
        for op in ALL_OPS {
            assert_eq!(op_from_name(&op.to_string()), Some(op));
        }
        assert_eq!(op_from_name("nonsense"), None);
    }

    #[test]
    fn unit_work_factors_out_constant() {
        let m = CostModel::for_scheme(SchemeKind::RnsCkks);
        for op in ALL_OPS {
            let u = m.unit_work(op, 8192, lvl(120.0, 3));
            assert!((u * m.constant(op) - m.op_cost(op, 8192, lvl(120.0, 3))).abs() < 1e-9);
        }
    }

    #[test]
    fn set_constant_rescales_cost() {
        let mut m = CostModel::for_scheme(SchemeKind::RnsCkks);
        let before = m.op_cost(HisaOp::Rotate, 8192, lvl(100.0, 2));
        m.set_constant(HisaOp::Rotate, 4.4);
        let after = m.op_cost(HisaOp::Rotate, 8192, lvl(100.0, 2));
        assert!((after / before - 2.0).abs() < 1e-9);
    }
}
