//! # chet-hisa
//!
//! The **Homomorphic Instruction Set Architecture** (HISA) from the CHET
//! paper (PLDI 2019, Table 2): a scheme-agnostic interface between the CHET
//! runtime/compiler and concrete FHE backends.
//!
//! The crate provides:
//!
//! * [`Hisa`] — the instruction-set trait. Concrete schemes (RNS-CKKS,
//!   bigint CKKS, the plaintext simulator) implement it, and — crucially —
//!   so do the *compiler analyses*: CHET runs circuits under alternative
//!   interpretations of the ciphertext datatype to perform data-flow
//!   analysis without materializing a data-flow graph (paper §5.1).
//! * [`params`] — encryption parameters ([`EncryptionParams`],
//!   [`ModulusSpec`]) shared by schemes and the parameter-selection pass.
//! * [`security`] — the homomorphic-encryption-standard table mapping ring
//!   degree `N` to the maximum coefficient modulus for a security level
//!   (paper §2.3/§5.2).
//! * [`cost`] — the per-op cost model (paper Table 1 asymptotics with
//!   tunable constants) used by data-layout selection.
//! * [`keys`] — rotation-key policies: default power-of-two keys vs the
//!   exact key set chosen by the rotation-key-selection pass (paper §5.4).
//!
//! # Examples
//!
//! ```
//! use chet_hisa::security::{min_degree_for_modulus, SecurityLevel};
//!
//! // A circuit consuming 200 bits of modulus fits in N = 8192 at 128-bit
//! // security; 240 bits (Table 4, LeNet-5-small under HEAAN's relaxed
//! // security) needs N = 16384 at the full 128-bit level.
//! assert_eq!(min_degree_for_modulus(200, SecurityLevel::Bits128), Some(8192));
//! assert_eq!(min_degree_for_modulus(240, SecurityLevel::Bits128), Some(16384));
//! ```

pub mod cost;
pub mod error;
pub mod json;
pub mod keys;
pub mod params;
pub mod security;
pub mod serial;

pub use cost::{CostModel, HisaOp, LevelInfo};
pub use error::HisaError;
pub use keys::{normalize_rotation, RotationKeyPolicy};
pub use params::{EncryptionParams, ModulusSpec, SchemeKind};
pub use security::SecurityLevel;

use std::collections::BTreeSet;

/// The Homomorphic Instruction Set Architecture (paper Table 2).
///
/// `Ct` and `Pt` are the backend's ciphertext and plaintext types. For real
/// schemes they hold ring elements; for compiler analyses they hold
/// data-flow facts (consumed modulus, accumulated cost, rotation sets, …).
///
/// Semantics notes mirroring the paper:
///
/// * Vectors have [`Hisa::slots`] entries; rotations are cyclic.
/// * `mul_scalar(c, x, scale)` multiplies every slot by the real constant
///   `x` encoded at fixed-point `scale` (paper `P_u`); `mul_plain`
///   multiplies slot-wise by an encoded vector (paper `P_w` / `P_m`).
/// * `rescale(c, d)` divides the ciphertext scale by `d`; `d` must be a
///   value previously returned by [`Hisa::max_rescale`], which yields the
///   largest legal divisor `<= ub` (a power of two for CKKS, a product of
///   the next chain primes for RNS-CKKS, `1.0` if none).
/// * Binary ops require (approximately) matching operand scales; backends
///   internally align *levels* by modulus switching, as SEAL/HEAAN do.
///
/// All methods take `&mut self` because backends carry mutable state
/// (random number generators, lazily generated keys) and analyses accumulate
/// global facts.
///
/// `Hisa: Send` and `Ct/Pt: Send + Sync` exist for the runtime's parallel
/// execution layer: kernel fan-out moves forked backends onto pool threads
/// and shares borrowed ciphertexts across them. Every interpretation —
/// lattice schemes, the simulator, compiler analyses — is plain owned data,
/// so the bounds are satisfied structurally.
pub trait Hisa: Send {
    /// Ciphertext handle.
    type Ct: Clone + Send + Sync;
    /// Plaintext handle.
    type Pt: Clone + Send + Sync;

    /// Number of SIMD slots per ciphertext (`N/2` for CKKS-family schemes).
    fn slots(&self) -> usize;

    /// Encodes a vector of reals at the given fixed-point scale. Missing
    /// entries (beyond `values.len()`) are zero.
    ///
    /// # Panics
    ///
    /// Backends panic if `values.len() > self.slots()`.
    fn encode(&mut self, values: &[f64], scale: f64) -> Self::Pt;

    /// Decodes a plaintext back to a vector of reals (length [`Hisa::slots`]).
    fn decode(&mut self, p: &Self::Pt) -> Vec<f64>;

    /// Encrypts a plaintext.
    fn encrypt(&mut self, p: &Self::Pt) -> Self::Ct;

    /// Decrypts a ciphertext.
    fn decrypt(&mut self, c: &Self::Ct) -> Self::Pt;

    /// Explicit ciphertext copy (analyses may want to observe it).
    fn copy(&mut self, c: &Self::Ct) -> Self::Ct {
        c.clone()
    }

    /// Rotates slots left by `x` (slot `i` receives old slot `i + x`).
    fn rot_left(&mut self, c: &Self::Ct, x: usize) -> Self::Ct;

    /// Rotates slots right by `x`.
    fn rot_right(&mut self, c: &Self::Ct, x: usize) -> Self::Ct;

    /// Rotates the *same* ciphertext left by each step in `steps`,
    /// returning the results in step order.
    ///
    /// The default loops [`Hisa::rot_left`]; backends with an expensive
    /// per-ciphertext setup (key-switch decomposition) override this to
    /// *hoist* that setup across all requested rotations (nGraph-HE2's
    /// optimization). Implementations must produce results bit-identical
    /// to the single-rotation path.
    fn rot_left_many(&mut self, c: &Self::Ct, steps: &[usize]) -> Vec<Self::Ct> {
        steps.iter().map(|&x| self.rot_left(c, x)).collect()
    }

    /// Rotates the same ciphertext right by each step in `steps` (see
    /// [`Hisa::rot_left_many`]).
    fn rot_right_many(&mut self, c: &Self::Ct, steps: &[usize]) -> Vec<Self::Ct> {
        steps.iter().map(|&x| self.rot_right(c, x)).collect()
    }

    /// Ciphertext + ciphertext.
    fn add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct;
    /// Ciphertext + plaintext.
    fn add_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct;
    /// Ciphertext + scalar broadcast.
    fn add_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct;

    /// Ciphertext − ciphertext.
    fn sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct;
    /// Ciphertext − plaintext.
    fn sub_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct;
    /// Ciphertext − scalar broadcast.
    fn sub_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct;

    /// Ciphertext × ciphertext (with relinearization).
    fn mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct;
    /// Ciphertext × plaintext.
    fn mul_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct;
    /// Ciphertext × scalar constant encoded at `scale`.
    fn mul_scalar(&mut self, a: &Self::Ct, x: f64, scale: f64) -> Self::Ct;

    /// Divides the ciphertext scale by `divisor`, consuming modulus.
    ///
    /// `divisor` must come from [`Hisa::max_rescale`]; passing anything else
    /// is a contract violation and backends may panic.
    fn rescale(&mut self, c: &Self::Ct, divisor: f64) -> Self::Ct;

    /// Largest legal rescale divisor `<= ub` for this ciphertext (`1.0` when
    /// no rescaling is possible).
    fn max_rescale(&mut self, c: &Self::Ct, ub: f64) -> f64;

    /// Current fixed-point scale of a ciphertext.
    fn scale_of(&self, c: &Self::Ct) -> f64;

    // ---- Assign variants (paper lists them; default to the pure ops) ----

    /// In-place [`Hisa::rot_left`].
    fn rot_left_assign(&mut self, c: &mut Self::Ct, x: usize) {
        *c = self.rot_left(c, x);
    }
    /// In-place [`Hisa::rot_right`].
    fn rot_right_assign(&mut self, c: &mut Self::Ct, x: usize) {
        *c = self.rot_right(c, x);
    }
    /// In-place [`Hisa::add`].
    fn add_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        *a = self.add(a, b);
    }
    /// In-place [`Hisa::add_plain`].
    fn add_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        *a = self.add_plain(a, p);
    }
    /// In-place [`Hisa::add_scalar`].
    fn add_scalar_assign(&mut self, a: &mut Self::Ct, x: f64) {
        *a = self.add_scalar(a, x);
    }
    /// In-place [`Hisa::sub`].
    fn sub_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        *a = self.sub(a, b);
    }
    /// In-place [`Hisa::sub_plain`].
    fn sub_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        *a = self.sub_plain(a, p);
    }
    /// In-place [`Hisa::sub_scalar`].
    fn sub_scalar_assign(&mut self, a: &mut Self::Ct, x: f64) {
        *a = self.sub_scalar(a, x);
    }
    /// In-place [`Hisa::mul`].
    fn mul_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        *a = self.mul(a, b);
    }
    /// In-place [`Hisa::mul_plain`].
    fn mul_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        *a = self.mul_plain(a, p);
    }
    /// In-place [`Hisa::mul_scalar`].
    fn mul_scalar_assign(&mut self, a: &mut Self::Ct, x: f64, scale: f64) {
        *a = self.mul_scalar(a, x, scale);
    }
    /// In-place [`Hisa::rescale`].
    fn rescale_assign(&mut self, c: &mut Self::Ct, divisor: f64) {
        *c = self.rescale(c, divisor);
    }

    // ---- Fallible surface ----------------------------------------------
    //
    // Every instruction that can violate a backend contract has a `try_*`
    // twin returning `Result<_, HisaError>`. The defaults delegate to the
    // panicking methods, so interpretations that cannot fail (the compiler
    // analyses) need no changes; real backends override the `try_*` methods
    // with checked logic and implement the panicking methods on top of them
    // (`.unwrap_or_else(|e| panic!("{e}"))`), preserving the historical
    // panic messages while making every failure observable as a value.

    /// Fallible [`Hisa::encode`]: [`HisaError::SlotOverflow`] when
    /// `values.len() > self.slots()`.
    fn try_encode(&mut self, values: &[f64], scale: f64) -> Result<Self::Pt, HisaError> {
        Ok(self.encode(values, scale))
    }

    /// Fallible [`Hisa::rot_left`]: [`HisaError::MissingRotationKey`] when
    /// the step cannot be planned from the available keys.
    fn try_rot_left(&mut self, c: &Self::Ct, x: usize) -> Result<Self::Ct, HisaError> {
        Ok(self.rot_left(c, x))
    }

    /// Fallible [`Hisa::rot_right`].
    fn try_rot_right(&mut self, c: &Self::Ct, x: usize) -> Result<Self::Ct, HisaError> {
        Ok(self.rot_right(c, x))
    }

    /// Fallible [`Hisa::rot_left_many`]. Fails fast: the first rotation
    /// whose keys are missing aborts the batch.
    fn try_rot_left_many(
        &mut self,
        c: &Self::Ct,
        steps: &[usize],
    ) -> Result<Vec<Self::Ct>, HisaError> {
        steps.iter().map(|&x| self.try_rot_left(c, x)).collect()
    }

    /// Fallible [`Hisa::rot_right_many`].
    fn try_rot_right_many(
        &mut self,
        c: &Self::Ct,
        steps: &[usize],
    ) -> Result<Vec<Self::Ct>, HisaError> {
        steps.iter().map(|&x| self.try_rot_right(c, x)).collect()
    }

    /// Fallible [`Hisa::add`]: [`HisaError::ScaleMismatch`] on diverged
    /// operand scales.
    fn try_add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Result<Self::Ct, HisaError> {
        Ok(self.add(a, b))
    }

    /// Fallible [`Hisa::add_plain`].
    fn try_add_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Result<Self::Ct, HisaError> {
        Ok(self.add_plain(a, p))
    }

    /// Fallible [`Hisa::add_scalar`].
    fn try_add_scalar(&mut self, a: &Self::Ct, x: f64) -> Result<Self::Ct, HisaError> {
        Ok(self.add_scalar(a, x))
    }

    /// Fallible [`Hisa::sub`].
    fn try_sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Result<Self::Ct, HisaError> {
        Ok(self.sub(a, b))
    }

    /// Fallible [`Hisa::sub_plain`].
    fn try_sub_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Result<Self::Ct, HisaError> {
        Ok(self.sub_plain(a, p))
    }

    /// Fallible [`Hisa::sub_scalar`].
    fn try_sub_scalar(&mut self, a: &Self::Ct, x: f64) -> Result<Self::Ct, HisaError> {
        Ok(self.sub_scalar(a, x))
    }

    /// Fallible [`Hisa::mul`].
    fn try_mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Result<Self::Ct, HisaError> {
        Ok(self.mul(a, b))
    }

    /// Fallible [`Hisa::mul_plain`].
    fn try_mul_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Result<Self::Ct, HisaError> {
        Ok(self.mul_plain(a, p))
    }

    /// Fallible [`Hisa::mul_scalar`].
    fn try_mul_scalar(
        &mut self,
        a: &Self::Ct,
        x: f64,
        scale: f64,
    ) -> Result<Self::Ct, HisaError> {
        Ok(self.mul_scalar(a, x, scale))
    }

    /// Fallible [`Hisa::rescale`]: [`HisaError::LevelExhausted`] when the
    /// modulus cannot absorb the rescale, [`HisaError::InvalidRescale`] when
    /// the divisor violates the backend's contract.
    fn try_rescale(&mut self, c: &Self::Ct, divisor: f64) -> Result<Self::Ct, HisaError> {
        Ok(self.rescale(c, divisor))
    }

    /// The rotation steps this backend holds keys for, or `None` when the
    /// backend rotates freely (simulated/analysis interpretations without a
    /// key set). The runtime uses this to detect *degraded* rotations —
    /// steps served by composing several keyed rotations instead of one.
    fn available_rotations(&self) -> Option<BTreeSet<usize>> {
        None
    }

    // ---- Parallel fan-out ----------------------------------------------

    /// Forks an evaluation-equivalent child backend for parallel kernel
    /// fan-out, or `None` when this interpretation cannot fork (the
    /// default — fan-out then runs sequentially on `self`).
    ///
    /// Contract: the child must produce bit-identical evaluation results
    /// to the parent for every instruction, and forking must be
    /// deterministic in *program order* — any randomness the child carries
    /// is derived from the parent's state at fork time (e.g. a seed drawn
    /// from the parent RNG), never from thread identity or timing. The
    /// runtime forks one child per fan-out job, in job order, so results
    /// stay independent of the thread count.
    fn fork(&mut self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Merges a forked child back after its fan-out job completed: global
    /// facts the child accumulated (op counters, latched errors,
    /// degradation tallies) fold into the parent. Joins happen in job
    /// order. The default discards the child.
    fn join(&mut self, child: Self)
    where
        Self: Sized,
    {
        let _ = child;
    }

    /// Cooperative-cancellation hint checked by fan-out regions before each
    /// job launches: `true` means the caller has given up on this run
    /// (deadline expiry, client disconnect) and remaining jobs should be
    /// skipped. The default — no cancellation source — never trips.
    /// Interpretations that carry a cancellation token (the runtime's
    /// fallible pipeline) override this; forked children share the parent's
    /// token, so a trip mid-fan-out stops every thread at its next job
    /// boundary.
    fn cancel_requested(&self) -> bool {
        false
    }
}
