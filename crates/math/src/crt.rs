//! Residue number system (CRT) bases and Garner reconstruction.
//!
//! The HEAAN-style CKKS backend keeps ciphertext coefficients as big
//! integers modulo `Q = 2^L`. To multiply polynomials it maps coefficients
//! into a basis of NTT-friendly word-sized primes, convolves per prime, and
//! reconstructs the (possibly huge) integer coefficients with Garner's
//! mixed-radix algorithm before reducing modulo `Q`.

use crate::bigint::UBig;
use crate::modint::{inv_mod, mul_mod, sub_mod};

/// A CRT basis of distinct word-sized primes with Garner precomputations.
#[derive(Debug, Clone)]
pub struct CrtBasis {
    primes: Vec<u64>,
    /// `inv[i][j] = (p_j)^{-1} mod p_i` for `j < i`.
    inv: Vec<Vec<u64>>,
    /// `partial[i] = p_0 * … * p_{i-1}` (so `partial[0] = 1`).
    partial: Vec<UBig>,
    /// Product of all primes.
    product: UBig,
    /// `product / 2` (floor), used for centered reconstruction.
    half_product: UBig,
}

impl CrtBasis {
    /// Builds a basis from distinct primes.
    ///
    /// # Panics
    ///
    /// Panics if the primes are not pairwise coprime (e.g. duplicated).
    pub fn new(primes: Vec<u64>) -> Self {
        let k = primes.len();
        let mut inv = vec![Vec::new(); k];
        for i in 0..k {
            inv[i] = (0..i)
                .map(|j| {
                    inv_mod(primes[j] % primes[i], primes[i])
                        .expect("CRT primes must be pairwise coprime")
                })
                .collect();
        }
        let mut partial = Vec::with_capacity(k + 1);
        partial.push(UBig::one());
        for &p in &primes {
            let last = partial.last().unwrap().mul_u64(p);
            partial.push(last);
        }
        let product = partial.pop().unwrap();
        let half_product = product.shr_bits(1);
        CrtBasis { primes, inv, partial, product, half_product }
    }

    /// The primes of the basis.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Number of primes in the basis.
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// Whether the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// Product of all primes in the basis.
    pub fn product(&self) -> &UBig {
        &self.product
    }

    /// Reconstructs the unique `x in [0, P)` with `x ≡ residues[i] mod p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    pub fn reconstruct(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len(), "residue count must match basis size");
        // Garner: compute mixed-radix digits d_i.
        let k = self.len();
        let mut digits = vec![0u64; k];
        for i in 0..k {
            let p = self.primes[i];
            let mut x = residues[i] % p;
            // x = (r_i - (d_0 + d_1 p_0 + … )) * inv(p_0…p_{i-1}) computed
            // incrementally: repeatedly subtract digit and multiply by inverse.
            for j in 0..i {
                x = sub_mod(x, digits[j] % p, p);
                x = mul_mod(x, self.inv[i][j], p);
            }
            digits[i] = x;
        }
        let mut acc = UBig::zero();
        for i in 0..k {
            acc = acc.add(&self.partial[i].mul_u64(digits[i]));
        }
        acc
    }

    /// Reconstructs interpreting the value as centered in `(-P/2, P/2]`.
    ///
    /// Returns `(negative, magnitude)`.
    pub fn reconstruct_centered(&self, residues: &[u64]) -> (bool, UBig) {
        let v = self.reconstruct(residues);
        if v > self.half_product {
            (true, self.product.sub(&v))
        } else {
            (false, v)
        }
    }

    /// Reduces a signed magnitude into each prime of the basis.
    pub fn residues_of_signed(&self, negative: bool, magnitude: &UBig) -> Vec<u64> {
        self.primes
            .iter()
            .map(|&p| {
                let r = magnitude.rem_u64(p);
                if negative && r != 0 {
                    p - r
                } else {
                    r
                }
            })
            .collect()
    }

    /// Reduces a signed 128-bit integer into each prime of the basis.
    pub fn residues_of_i128(&self, v: i128) -> Vec<u64> {
        self.primes
            .iter()
            .map(|&p| {
                let r = (v % p as i128 + p as i128) as u128 % p as u128;
                r as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;

    fn basis() -> CrtBasis {
        CrtBasis::new(ntt_primes(40, 64, 4))
    }

    #[test]
    fn reconstruct_small_values() {
        let b = basis();
        for v in [0u64, 1, 42, 1 << 30] {
            let residues: Vec<u64> = b.primes().iter().map(|&p| v % p).collect();
            assert_eq!(b.reconstruct(&residues), UBig::from(v));
        }
    }

    #[test]
    fn reconstruct_large_value_roundtrip() {
        let b = basis();
        // v = 2^100 + 12345 < P (~160 bits)
        let v = UBig::pow2(100).add(&UBig::from(12345u64));
        let residues: Vec<u64> = b.primes().iter().map(|&p| v.rem_u64(p)).collect();
        assert_eq!(b.reconstruct(&residues), v);
    }

    #[test]
    fn centered_reconstruction_of_negative() {
        let b = basis();
        // Encode -7 as P - 7.
        let residues: Vec<u64> = b.primes().iter().map(|&p| p - 7).collect();
        let (neg, mag) = b.reconstruct_centered(&residues);
        assert!(neg);
        assert_eq!(mag, UBig::from(7u64));
    }

    #[test]
    fn signed_residues_roundtrip() {
        let b = basis();
        for v in [-12345i128, -1, 0, 1, 1 << 40] {
            let residues = b.residues_of_i128(v);
            let (neg, mag) = b.reconstruct_centered(&residues);
            let got = if neg { -(mag.to_f64()) } else { mag.to_f64() };
            assert_eq!(got as i128, v);
        }
    }

    #[test]
    fn residues_of_signed_magnitude() {
        let b = basis();
        let mag = UBig::from(99u64);
        let res = b.residues_of_signed(true, &mag);
        let (neg, m) = b.reconstruct_centered(&res);
        assert!(neg);
        assert_eq!(m, mag);
    }

    #[test]
    #[should_panic(expected = "residue count")]
    fn wrong_residue_count_panics() {
        basis().reconstruct(&[1, 2]);
    }
}
