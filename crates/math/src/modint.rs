//! 64-bit modular arithmetic.
//!
//! All moduli handled here are odd primes below `2^62`, which lets every
//! intermediate fit in `u128` and keeps lazy-reduction slack for the NTT
//! butterflies.

/// Adds `a + b mod q`. Inputs must already be reduced.
#[inline(always)]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `a - b mod q`. Inputs must already be reduced.
#[inline(always)]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates `a mod q`. Input must already be reduced.
#[inline(always)]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q);
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Multiplies `a * b mod q` using a 128-bit intermediate.
#[inline(always)]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Computes `base^exp mod q` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    if q == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo `q` via the extended Euclidean
/// algorithm.
///
/// Returns `None` when `gcd(a, q) != 1` (no inverse exists).
pub fn inv_mod(a: u64, q: u64) -> Option<u64> {
    if a == 0 {
        return None;
    }
    let (mut old_r, mut r) = (a as i128, q as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let quot = old_r / r;
        let tmp_r = old_r - quot * r;
        old_r = r;
        r = tmp_r;
        let tmp_s = old_s - quot * s;
        old_s = s;
        s = tmp_s;
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % q as i128;
    if inv < 0 {
        inv += q as i128;
    }
    Some(inv as u64)
}

/// A multiplier precomputed for Shoup's trick: repeated multiplications by a
/// fixed constant `w` modulo `q` cost one `mul_hi`, two wrapping multiplies
/// and one conditional subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    /// The constant operand, reduced modulo `q`.
    pub value: u64,
    /// `floor(value * 2^64 / q)`.
    pub quotient: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup quotient for the constant `value` modulo `q`.
    ///
    /// # Panics
    ///
    /// Panics if `value >= q`.
    pub fn new(value: u64, q: u64) -> Self {
        assert!(value < q, "shoup constant must be reduced");
        let quotient = (((value as u128) << 64) / q as u128) as u64;
        ShoupMul { value, quotient }
    }

    /// Computes `a * self.value mod q`.
    #[inline(always)]
    pub fn mul(&self, a: u64, q: u64) -> u64 {
        let hi = ((a as u128 * self.quotient as u128) >> 64) as u64;
        let r = a
            .wrapping_mul(self.value)
            .wrapping_sub(hi.wrapping_mul(q));
        if r >= q {
            r - q
        } else {
            r
        }
    }

    /// Lazy Shoup product: returns `a * self.value mod q` *plus possibly
    /// one extra `q`*, i.e. a value in `[0, 2q)` congruent to the product.
    ///
    /// Valid for **any** `a: u64` (not just reduced inputs): with
    /// `hi = ⌊a·quotient / 2^64⌋` and `quotient = ⌊value·2^64 / q⌋`, the
    /// estimate `hi` undershoots `⌊a·value / q⌋` by at most one, so the
    /// wrapping difference lands in `[0, 2q)`. Skipping the final
    /// conditional subtraction is the heart of the Harvey lazy-reduction
    /// butterflies (requires `q < 2^63` so `2q` fits in `u64`).
    #[inline(always)]
    pub fn mul_lazy(&self, a: u64, q: u64) -> u64 {
        let hi = ((a as u128 * self.quotient as u128) >> 64) as u64;
        a.wrapping_mul(self.value).wrapping_sub(hi.wrapping_mul(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = (1 << 61) - 1; // not prime, but fine for ring tests below 2^62

    #[test]
    fn add_sub_roundtrip() {
        let a = 123_456_789_u64;
        let b = Q - 5;
        let s = add_mod(a, b, Q);
        assert_eq!(sub_mod(s, b, Q), a);
    }

    #[test]
    fn neg_is_additive_inverse() {
        for a in [0u64, 1, 17, Q - 1] {
            assert_eq!(add_mod(a, neg_mod(a, Q), Q), 0);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let q = 1_000_000_007u64;
        let mut acc = 1u64;
        for e in 0..20u64 {
            assert_eq!(pow_mod(3, e, q), acc);
            acc = mul_mod(acc, 3, q);
        }
    }

    #[test]
    fn inverse_multiplies_to_one() {
        let q = 1_000_000_007u64;
        for a in [1u64, 2, 3, 999, q - 1] {
            let inv = inv_mod(a, q).unwrap();
            assert_eq!(mul_mod(a, inv, q), 1);
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert_eq!(inv_mod(0, 97), None);
    }

    #[test]
    fn inverse_of_non_coprime_is_none() {
        assert_eq!(inv_mod(6, 9), None);
    }

    #[test]
    fn shoup_matches_plain_mul() {
        let q = 4_611_686_018_427_322_369u64; // < 2^62
        let w = 1_234_567_890_123_456_789 % q;
        let shoup = ShoupMul::new(w, q);
        for a in [0u64, 1, 2, q / 2, q - 1] {
            assert_eq!(shoup.mul(a, q), mul_mod(a, w, q));
        }
    }

    #[test]
    fn shoup_lazy_congruent_and_bounded_for_unreduced_inputs() {
        let q = 4_611_686_018_427_322_369u64; // < 2^62
        for w in [0u64, 1, q / 3, q - 1] {
            let shoup = ShoupMul::new(w, q);
            // Inputs deliberately exceed q (up to just below 4q), as the
            // lazy NTT butterflies produce.
            for a in [0u64, 1, q - 1, q, 2 * q - 1, 2 * q, 4 * q - 1, u64::MAX] {
                let r = shoup.mul_lazy(a, q);
                assert!(r < 2 * q, "lazy result {r} out of [0, 2q)");
                assert_eq!(r % q, mul_mod(a % q, w, q), "a={a} w={w}");
            }
        }
    }
}
