//! Complex floating-point FFT for the CKKS canonical embedding.
//!
//! This is a plain iterative radix-2 Cooley–Tukey transform over `f64`
//! complex numbers. CKKS encoders in SEAL and HEAAN likewise use double
//! precision; the resulting encoding error is part of the scheme's
//! approximation noise and is accounted for by the fixed-point scale
//! selection pass.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from rectangular coordinates.
    pub fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{i theta}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64 { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 { re: -self.re, im: -self.im }
    }
}

/// In-place radix-2 FFT.
///
/// Computes `X_k = Σ_j x_j e^{-2πi jk/n}` when `inverse` is false, and the
/// unnormalized inverse (positive exponent) when `inverse` is true; divide by
/// `n` yourself if you need the true inverse.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let j = crate::ntt::bit_reverse(i, log_n);
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!(
            (a - b).norm_sqr().sqrt() < tol,
            "expected {b:?}, got {a:?}"
        );
    }

    #[test]
    fn fft_of_delta_is_flat() {
        let mut data = vec![Complex64::default(); 8];
        data[0] = Complex64::new(1.0, 0.0);
        fft_in_place(&mut data, false);
        for &x in &data {
            assert_close(x, Complex64::new(1.0, 0.0), 1e-12);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 256;
        let orig: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, &b) in data.iter().zip(&orig) {
            assert_close(a.scale(1.0 / n as f64), b, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let mut data: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(i as f64, -(i as f64) * 0.5)).collect();
        let time_energy: f64 = data.iter().map(|x| x.norm_sqr()).sum();
        fft_in_place(&mut data, false);
        let freq_energy: f64 = data.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn matches_naive_dft() {
        let n = 16;
        let input: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i * i) as f64 * 0.1, i as f64 * 0.3)).collect();
        let mut fast = input.clone();
        fft_in_place(&mut fast, false);
        for k in 0..n {
            let mut acc = Complex64::default();
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc = acc + x * Complex64::from_angle(ang);
            }
            assert_close(fast[k], acc, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut d = vec![Complex64::default(); 3];
        fft_in_place(&mut d, false);
    }
}
