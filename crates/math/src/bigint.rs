//! A compact arbitrary-precision unsigned integer.
//!
//! [`UBig`] is deliberately small: it supports exactly the operations the
//! HEAAN-style CKKS backend needs for coefficients modulo `Q = 2^L` —
//! addition, subtraction, shifts, masking, multiplication by a machine word,
//! remainder by a machine word, and conversion to `f64`. Polynomial products
//! are computed in an NTT/CRT basis (see [`crate::crt`]), so no general
//! big-integer multiplication is required.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer stored as little-endian 64-bit
/// limbs with no trailing zero limbs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Constructs `2^k`.
    pub fn pow2(k: u32) -> Self {
        let limb = (k / 64) as usize;
        let mut limbs = vec![0u64; limb + 1];
        limbs[limb] = 1u64 << (k % 64);
        UBig { limbs }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() as u32 - 1) + (64 - top.leading_zeros()),
        }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(self >= other, "UBig subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, u1) = self.limbs[i].overflowing_sub(b);
            let (d2, u2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (u1 as u64) + (u2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self * m` for a machine-word multiplier.
    pub fn mul_u64(&self, m: u64) -> UBig {
        if m == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * m as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self mod m` for a machine-word modulus.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert_ne!(m, 0, "division by zero");
        let mut r = 0u128;
        for &l in self.limbs.iter().rev() {
            r = ((r << 64) | l as u128) % m as u128;
        }
        r as u64
    }

    /// `self << k` (bit shift).
    pub fn shl_bits(&self, k: u32) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = (k / 64) as usize;
        let bit_shift = k % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self >> k` (bit shift, rounding toward zero).
    pub fn shr_bits(&self, k: u32) -> UBig {
        let limb_shift = (k / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = k % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&h| h << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `round(self / 2^k)` with round-half-up.
    pub fn shr_bits_round(&self, k: u32) -> UBig {
        if k == 0 {
            return self.clone();
        }
        let floor = self.shr_bits(k);
        if self.bit(k - 1) {
            floor.add(&UBig::one())
        } else {
            floor
        }
    }

    /// The `i`-th bit of the value.
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// `self mod 2^k`.
    pub fn mask_bits(&self, k: u32) -> UBig {
        let full = (k / 64) as usize;
        let rem = k % 64;
        let mut limbs: Vec<u64> = self.limbs.iter().copied().take(full + 1).collect();
        if limbs.len() > full {
            if rem == 0 {
                limbs.truncate(full);
            } else if limbs.len() == full + 1 {
                limbs[full] &= (1u64 << rem) - 1;
            }
        }
        let mut r = UBig { limbs };
        r.normalize();
        r
    }

    /// Lossy conversion to `f64` (round toward zero; may overflow to `inf`
    /// for values above `2^1024`).
    pub fn to_f64(&self) -> f64 {
        let bl = self.bit_len();
        if bl == 0 {
            return 0.0;
        }
        if bl <= 64 {
            return self.limbs[0] as f64;
        }
        // Take the top 64 bits as a mantissa and scale.
        let top = self.shr_bits(bl - 64);
        (top.limbs[0] as f64) * 2f64.powi(bl as i32 - 64)
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        let mut r = UBig { limbs: vec![v as u64, (v >> 64) as u64] };
        r.normalize();
        r
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl std::fmt::Display for UBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = UBig::pow2(130).add(&UBig::from(12345u64));
        let b = UBig::pow2(70).add(&UBig::from(999u64));
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = UBig::from(u64::MAX);
        let b = UBig::one();
        assert_eq!(a.add(&b), UBig::pow2(64));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = UBig::one().sub(&UBig::from(2u64));
    }

    #[test]
    fn shifts_are_inverse() {
        let a = UBig::from(0xdeadbeef_12345678u64);
        for k in [0u32, 1, 13, 64, 65, 200] {
            assert_eq!(a.shl_bits(k).shr_bits(k), a);
        }
    }

    #[test]
    fn mask_is_mod_pow2() {
        let a = UBig::from(0b1011_0110u64).add(&UBig::pow2(100));
        assert_eq!(a.mask_bits(4), UBig::from(0b0110u64));
        assert_eq!(a.mask_bits(101), a);
        assert_eq!(a.mask_bits(100), UBig::from(0b1011_0110u64));
    }

    #[test]
    fn rounding_shift() {
        assert_eq!(UBig::from(5u64).shr_bits_round(1), UBig::from(3u64)); // 2.5 -> 3
        assert_eq!(UBig::from(4u64).shr_bits_round(1), UBig::from(2u64));
        assert_eq!(UBig::from(7u64).shr_bits_round(2), UBig::from(2u64)); // 1.75 -> 2
    }

    #[test]
    fn mul_and_rem_u64() {
        let a = UBig::pow2(90); // 2^90
        let m = a.mul_u64(1000);
        // 2^90 * 1000 mod 997: compute via pow_mod
        let expect = crate::modint::mul_mod(crate::modint::pow_mod(2, 90, 997), 1000 % 997, 997);
        assert_eq!(m.rem_u64(997), expect);
    }

    #[test]
    fn bit_len_and_to_f64() {
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::one().bit_len(), 1);
        assert_eq!(UBig::pow2(100).bit_len(), 101);
        let v = UBig::pow2(100);
        let f = v.to_f64();
        assert!((f / 2f64.powi(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(UBig::pow2(64) > UBig::from(u64::MAX));
        assert!(UBig::from(3u64) < UBig::from(4u64));
        assert_eq!(UBig::pow2(10), UBig::from(1024u64));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", UBig::zero()), "0x0");
        assert_eq!(format!("{}", UBig::from(255u64)), "0xff");
    }
}
