//! # chet-math
//!
//! Number-theoretic and arithmetic substrate for the CHET reproduction.
//!
//! This crate provides everything the CKKS-family encryption schemes in
//! [`chet-ckks`] need, implemented from scratch:
//!
//! * [`modint`] — 64-bit modular arithmetic with Shoup multiplication.
//! * [`prime`] — Miller–Rabin primality testing and NTT-friendly prime
//!   generation (primes `p ≡ 1 mod 2N`).
//! * [`ntt`] — negacyclic number-theoretic transforms over prime fields,
//!   the workhorse of polynomial multiplication in `Z_q[X]/(X^N + 1)`.
//! * [`bigint`] — a small arbitrary-precision unsigned integer, used by the
//!   HEAAN-style CKKS variant whose coefficient modulus is a power of two.
//! * [`crt`] — residue number system (RNS) tools and Garner reconstruction,
//!   used to multiply big-coefficient polynomials via NTT over a CRT basis.
//! * [`fft`] — a complex floating-point FFT used by the CKKS canonical
//!   embedding (slot encoding).
//!
//! # Examples
//!
//! ```
//! use chet_math::prime::ntt_primes;
//! use chet_math::ntt::NttTable;
//!
//! // A 50-bit NTT-friendly prime for ring degree 1024.
//! let q = ntt_primes(50, 1024, 1)[0];
//! let table = NttTable::new(q, 1024).unwrap();
//! let mut a = vec![0u64; 1024];
//! a[1] = 1; // X
//! table.forward(&mut a);
//! table.inverse(&mut a);
//! assert_eq!(a[1], 1);
//! ```

//! * [`par`] — a small fixed thread pool for data-parallel regions
//!   (per-limb RNS arithmetic, per-ciphertext kernel fan-out), with a
//!   deterministic index-ordered merge contract.

pub mod bigint;
pub mod crt;
pub mod fft;
pub mod modint;
pub mod ntt;
pub mod par;
pub mod prime;

pub use bigint::UBig;
pub use crt::CrtBasis;
pub use fft::Complex64;
pub use ntt::NttTable;
