//! Negacyclic number-theoretic transforms over `Z_q[X]/(X^N + 1)`.
//!
//! The forward transform maps coefficient vectors to evaluations at the odd
//! powers of a primitive `2N`-th root of unity `ψ`, so that pointwise
//! multiplication of transformed vectors realizes *negacyclic* convolution —
//! exactly the polynomial product in the CKKS ciphertext ring.
//!
//! The butterflies use Shoup multiplication with precomputed twiddles in
//! bit-reversed order (the layout popularized by Harvey and used by SEAL),
//! with Harvey's *lazy reduction* discipline: butterfly outputs are only
//! kept below `4q` (forward) / `2q` (inverse) and a single conditional
//! subtraction pass at the end of each transform restores canonical
//! residues. This removes two compare-and-subtract reductions per
//! butterfly and requires `q < 2^62` so `4q` fits in a `u64`.

use crate::modint::{add_mod, inv_mod, sub_mod, ShoupMul};
use crate::prime::primitive_root_2n;

/// Reverses the lowest `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Precomputed tables for the negacyclic NTT of a fixed `(q, n)` pair.
#[derive(Debug, Clone)]
pub struct NttTable {
    q: u64,
    n: usize,
    log_n: u32,
    /// ψ^bitrev(i) with Shoup precomputation.
    psi_rev: Vec<ShoupMul>,
    /// ψ^{-bitrev(i)} with Shoup precomputation.
    psi_inv_rev: Vec<ShoupMul>,
    /// n^{-1} mod q.
    n_inv: ShoupMul,
}

/// Error returned when an [`NttTable`] cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NttError(String);

impl std::fmt::Display for NttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot build NTT table: {}", self.0)
    }
}

impl std::error::Error for NttError {}

impl NttTable {
    /// Builds NTT tables for modulus `q` and power-of-two degree `n`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or `q ≠ 1 mod 2n`.
    pub fn new(q: u64, n: usize) -> Result<Self, NttError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(NttError(format!("degree {n} is not a power of two >= 2")));
        }
        if (q - 1) % (2 * n as u64) != 0 {
            return Err(NttError(format!("modulus {q} is not 1 mod {}", 2 * n)));
        }
        if q >= 1u64 << 62 {
            return Err(NttError(format!(
                "modulus {q} >= 2^62 leaves no lazy-reduction headroom"
            )));
        }
        let log_n = n.trailing_zeros();
        let psi = primitive_root_2n(q, n);
        let psi_inv = inv_mod(psi, q).expect("psi is invertible mod prime q");

        let mut psi_pow = vec![0u64; n];
        let mut psi_inv_pow = vec![0u64; n];
        psi_pow[0] = 1;
        psi_inv_pow[0] = 1;
        for i in 1..n {
            psi_pow[i] = crate::modint::mul_mod(psi_pow[i - 1], psi, q);
            psi_inv_pow[i] = crate::modint::mul_mod(psi_inv_pow[i - 1], psi_inv, q);
        }
        let mut psi_rev = Vec::with_capacity(n);
        let mut psi_inv_rev = Vec::with_capacity(n);
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            psi_rev.push(ShoupMul::new(psi_pow[r], q));
            psi_inv_rev.push(ShoupMul::new(psi_inv_pow[r], q));
        }
        let n_inv = ShoupMul::new(inv_mod(n as u64, q).expect("n invertible"), q);
        Ok(NttTable { q, n, log_n, psi_rev, psi_inv_rev, n_inv })
    }

    /// The modulus this table was built for.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The transform length (ring degree).
    pub fn degree(&self) -> usize {
        self.n
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation domain).
    ///
    /// Internally the Cooley–Tukey butterflies run lazily: values stay in
    /// `[0, 4q)` across stages (inputs to each butterfly are brought below
    /// `2q` with one conditional subtraction, the Shoup product of the
    /// second operand lands in `[0, 2q)` without its final reduction, and
    /// the sum/difference are formed as `u + v` / `u + 2q − v`). A single
    /// two-step reduction pass at the end restores canonical `[0, q)`
    /// residues, so callers observe the exact modular transform.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.degree()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal the ring degree");
        let q = self.q;
        let two_q = 2 * q;
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                for j in j1..j2 {
                    // Invariant: a[*] < 4q on entry to every stage.
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = s.mul_lazy(a[j + t], q);
                    a[j] = u + v; // < 2q + 2q = 4q
                    a[j + t] = u + two_q - v; // < 4q, > 0
                }
            }
            m <<= 1;
        }
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient domain).
    ///
    /// The Gentleman–Sande butterflies keep values in `[0, 2q)` (the sum
    /// takes one conditional subtraction of `2q`, the difference is fed
    /// through a lazy Shoup product), the final `n^{-1}` multiplication is
    /// also lazy, and one conditional subtraction per coefficient restores
    /// canonical residues.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.degree()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal the ring degree");
        let q = self.q;
        let two_q = 2 * q;
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                for j in j1..j2 {
                    // Invariant: a[*] < 2q on entry to every stage.
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v; // < 4q
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = s.mul_lazy(u + two_q - v, q); // < 2q
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            let mut v = self.n_inv.mul_lazy(*x, q);
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// log2 of the transform length.
    pub fn log_degree(&self) -> u32 {
        self.log_n
    }
}

/// Reference negacyclic convolution in `O(n^2)`, for testing and tiny sizes.
pub fn negacyclic_convolution_naive(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = crate::modint::mul_mod(a[i], b[j], q);
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], prod, q);
            } else {
                out[k - n] = sub_mod(out[k - n], prod, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;

    fn table(n: usize) -> NttTable {
        let q = ntt_primes(50, n, 1)[0];
        NttTable::new(q, n).unwrap()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(256);
        let q = t.modulus();
        let mut a: Vec<u64> = (0..256).map(|i| (i as u64 * 7919) % q).collect();
        let orig = a.clone();
        t.forward(&mut a);
        assert_ne!(a, orig);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_product_is_negacyclic_convolution() {
        let n = 64;
        let t = table(n);
        let q = t.modulus();
        let a: Vec<u64> = (0..n).map(|i| (i as u64 * 31 + 5) % q).collect();
        let b: Vec<u64> = (0..n).map(|i| (i as u64 * 17 + 3) % q).collect();
        let expect = negacyclic_convolution_naive(&a, &b, q);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| crate::modint::mul_mod(x, y, q))
            .collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_pow_nminus1_is_minus_one() {
        // X * X^{n-1} = X^n = -1 in the negacyclic ring.
        let n = 32;
        let t = table(n);
        let q = t.modulus();
        let mut a = vec![0u64; n];
        a[1] = 1;
        let mut b = vec![0u64; n];
        b[n - 1] = 1;
        let c = negacyclic_convolution_naive(&a, &b, q);
        assert_eq!(c[0], q - 1);
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn rejects_bad_degree() {
        assert!(NttTable::new(97, 24).is_err());
    }

    #[test]
    fn rejects_non_ntt_modulus() {
        assert!(NttTable::new(97, 256).is_err());
    }

    #[test]
    fn bit_reverse_involution() {
        for bits in 1..12u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }

    /// Tiny deterministic generator for the property sweeps below.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn lazy_roundtrip_across_random_primes_and_degrees() {
        // Forward/inverse round-trip over a spread of degrees and prime
        // sizes, exercising the lazy-reduction invariants with random
        // reduced inputs.
        let mut rng = Lcg(0xDEC0DE);
        for &n in &[4usize, 16, 64, 256, 1024] {
            for &bits in &[20u32, 30, 40, 50, 59] {
                let q = ntt_primes(bits, n, 1)[0];
                let t = NttTable::new(q, n).unwrap();
                let mut a: Vec<u64> = (0..n).map(|_| rng.next() % q).collect();
                let orig = a.clone();
                t.forward(&mut a);
                assert!(a.iter().all(|&x| x < q), "forward output not canonical");
                t.inverse(&mut a);
                assert_eq!(a, orig, "roundtrip failed for n={n}, q={q}");
            }
        }
    }

    #[test]
    fn lazy_pointwise_product_matches_naive_across_primes() {
        let mut rng = Lcg(0xFACADE);
        for &n in &[8usize, 32, 128] {
            for &bits in &[24u32, 40, 59] {
                let q = ntt_primes(bits, n, 1)[0];
                let t = NttTable::new(q, n).unwrap();
                let a: Vec<u64> = (0..n).map(|_| rng.next() % q).collect();
                let b: Vec<u64> = (0..n).map(|_| rng.next() % q).collect();
                let expect = negacyclic_convolution_naive(&a, &b, q);
                let mut fa = a.clone();
                let mut fb = b.clone();
                t.forward(&mut fa);
                t.forward(&mut fb);
                let mut fc: Vec<u64> = fa
                    .iter()
                    .zip(&fb)
                    .map(|(&x, &y)| crate::modint::mul_mod(x, y, q))
                    .collect();
                t.inverse(&mut fc);
                assert_eq!(fc, expect, "n={n}, q={q}");
            }
        }
    }

    #[test]
    fn lazy_handles_boundary_residues() {
        // Adversarial inputs saturated at the residue boundaries: all
        // zeros, all q−1, and alternating 0 / q−1 — the patterns that
        // maximize the intermediate magnitudes in the lazy butterflies.
        for &n in &[16usize, 256, 1024] {
            for &bits in &[40u32, 59] {
                let q = ntt_primes(bits, n, 1)[0];
                let t = NttTable::new(q, n).unwrap();
                let patterns: [Vec<u64>; 3] = [
                    vec![0u64; n],
                    vec![q - 1; n],
                    (0..n).map(|i| if i % 2 == 0 { 0 } else { q - 1 }).collect(),
                ];
                for p in &patterns {
                    let mut a = p.clone();
                    t.forward(&mut a);
                    assert!(a.iter().all(|&x| x < q), "non-canonical forward output");
                    t.inverse(&mut a);
                    assert_eq!(&a, p);
                    // Squaring the saturated polynomial must agree with the
                    // naive reference too (stresses the inverse transform
                    // with non-trivial evaluation values).
                    let expect = negacyclic_convolution_naive(p, p, q);
                    let mut f = p.clone();
                    t.forward(&mut f);
                    let mut sq: Vec<u64> =
                        f.iter().map(|&x| crate::modint::mul_mod(x, x, q)).collect();
                    t.inverse(&mut sq);
                    assert_eq!(sq, expect);
                }
            }
        }
    }

    #[test]
    fn forward_output_order_is_bitrev_odd_powers() {
        // Pins the evaluation layout the RNS evaluator's NTT-domain
        // automorphism tables depend on: output slot `i` of the forward
        // transform holds `a(ψ^{2·bitrev(i)+1})`.
        let n = 32;
        let t = table(n);
        let q = t.modulus();
        let psi = crate::prime::primitive_root_2n(q, n);
        let a: Vec<u64> = (0..n).map(|i| (i as u64 * 131 + 7) % q).collect();
        let mut f = a.clone();
        t.forward(&mut f);
        let log_n = t.log_degree();
        for i in 0..n {
            let e = (2 * bit_reverse(i, log_n) as u64 + 1) % (2 * n as u64);
            let x = crate::modint::pow_mod(psi, e, q);
            // Naive evaluation of a at ψ^e.
            let mut acc = 0u64;
            let mut xp = 1u64;
            for &c in &a {
                acc = add_mod(acc, crate::modint::mul_mod(c, xp, q), q);
                xp = crate::modint::mul_mod(xp, x, q);
            }
            assert_eq!(f[i], acc, "slot {i}");
        }
    }
}
