//! Primality testing and NTT-friendly prime generation.

use crate::modint::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin primality test for `u64`.
///
/// Uses the witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`, which
/// is known to be deterministic for all 64-bit integers.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes of roughly `bits` bits, each congruent
/// to `1 mod 2 * degree` so that a negacyclic NTT of length `degree` exists.
///
/// Candidates are searched downward from `2^bits`, mirroring how SEAL
/// distributes its default coefficient-modulus primes. The result is sorted
/// descending (largest first).
///
/// # Panics
///
/// Panics if `degree` is not a power of two, if `bits` is outside `[20, 61]`,
/// or if not enough primes exist in the search window (never happens for the
/// parameter ranges used by the schemes).
pub fn ntt_primes(bits: u32, degree: usize, count: usize) -> Vec<u64> {
    assert!(degree.is_power_of_two(), "ring degree must be a power of two");
    assert!((20..=61).contains(&bits), "prime size must be in [20, 61] bits");
    let m = 2 * degree as u64; // primes must be 1 mod m
    let mut primes = Vec::with_capacity(count);
    // Largest candidate of the requested size that is 1 mod m.
    let top = (1u64 << bits) - 1;
    let mut candidate = top - ((top - 1) % m);
    while primes.len() < count {
        if candidate < (1u64 << (bits - 1)) {
            panic!("exhausted {bits}-bit prime search window for degree {degree}");
        }
        if is_prime(candidate) {
            primes.push(candidate);
        }
        candidate -= m;
    }
    primes
}

/// Finds a generator of the multiplicative group `Z_q^*` restricted to what
/// the NTT needs: a primitive `2n`-th root of unity modulo `q`.
///
/// # Panics
///
/// Panics if `q - 1` is not divisible by `2n` (i.e. `q` is not NTT-friendly
/// for degree `n`).
pub fn primitive_root_2n(q: u64, n: usize) -> u64 {
    let order = 2 * n as u64;
    assert_eq!((q - 1) % order, 0, "modulus is not NTT friendly for this degree");
    let cofactor = (q - 1) / order;
    // Try small candidates; g^cofactor has order dividing 2n. It has order
    // exactly 2n iff raising to n does not give 1.
    for g in 2u64.. {
        let root = pow_mod(g, cofactor, q);
        if root != 1 && pow_mod(root, n as u64, q) == q - 1 {
            return root;
        }
        if g > 1 << 20 {
            unreachable!("no primitive root found; modulus is not prime?");
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919, 1_000_000_007];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
    }

    #[test]
    fn composites_rejected() {
        for c in [0u64, 1, 4, 6, 9, 91, 1_000_000_006, 3_215_031_751] {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_prime(c), "Carmichael number {c} should be composite");
        }
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        let degree = 2048;
        let primes = ntt_primes(50, degree, 4);
        assert_eq!(primes.len(), 4);
        for &p in &primes {
            assert!(is_prime(p));
            assert_eq!((p - 1) % (2 * degree as u64), 0);
            assert!(p < 1 << 50 && p > 1 << 49);
        }
        // Distinct and descending.
        for w in primes.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn primitive_root_has_exact_order() {
        let n = 1024usize;
        let q = ntt_primes(45, n, 1)[0];
        let root = primitive_root_2n(q, n);
        assert_eq!(pow_mod(root, 2 * n as u64, q), 1);
        assert_eq!(pow_mod(root, n as u64, q), q - 1);
    }
}
