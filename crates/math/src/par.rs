//! A small fixed thread pool for data-parallel regions.
//!
//! This is the substrate of the runtime's parallel execution layer
//! (`chet-runtime::par`): per-limb RNS arithmetic and per-ciphertext kernel
//! fan-out both dispatch through [`parallel_for`]. The pool is deliberately
//! tiny — a handful of lazily spawned workers parked on a condvar — because
//! the regions it serves are short (one NTT per prime limb, one output
//! ciphertext per kernel job) and cannot amortize per-region thread spawns.
//!
//! # Determinism contract
//!
//! The pool never influences *what* is computed, only *when*: every job
//! index `0..count` runs exactly once, jobs may only write state disjoint
//! per index, and callers merge results in index order after the region
//! completes. Outputs are therefore bit-identical for any thread count,
//! including 1 — the property the determinism test suite pins down.
//!
//! # Configuration
//!
//! Thread count resolution order: [`set_threads`] (programmatic, e.g. from
//! `ServeConfig`), then the `CHET_THREADS` environment variable, then
//! `std::thread::available_parallelism()` capped at 8. Compiling without
//! the `parallel` feature forces every region inline on the calling thread.
//!
//! # Nesting
//!
//! Regions do not nest: a job that itself opens a region (a kernel fan-out
//! whose per-ciphertext work hits per-limb loops) runs the inner region
//! inline on its worker. A single global region guard enforces this — it
//! also serializes pool use across unrelated caller threads (e.g. two
//! serving workers), which keeps worst-case thread pressure at
//! `threads()` regardless of caller concurrency.

// The pool is part of the runtime failure model: it must not introduce
// unwrap/expect panic paths of its own (ci.sh extends the clippy gate to
// this module).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard upper bound on configured threads (sanity clamp, not a target).
pub const MAX_THREADS: usize = 64;

/// Programmatic override; 0 = unset (fall back to env / hardware).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

fn env_or_hardware_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("CHET_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, MAX_THREADS);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    })
}

/// The thread count parallel regions target: the [`set_threads`] override
/// if set, else `CHET_THREADS`, else hardware parallelism (capped at 8).
/// Always ≥ 1. With the `parallel` feature disabled this is still the
/// *configured* count; [`effective_threads`] is what regions obey.
pub fn threads() -> usize {
    match CONFIGURED.load(Ordering::Acquire) {
        0 => env_or_hardware_threads(),
        n => n,
    }
}

/// Overrides the thread count for subsequent parallel regions (clamped to
/// `1..=MAX_THREADS`). Takes precedence over `CHET_THREADS`.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_THREADS), Ordering::Release);
}

/// Helpers for tests (here and in downstream crates) that mutate the
/// process-global thread configuration.
pub mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that call [`super::set_threads`]: the override is
    /// process-global, so concurrent tests flipping it race each other.
    /// A poisoned lock is fine — the guard only orders access.
    pub fn config_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The thread count regions actually use: [`threads`] with the `parallel`
/// feature, 1 without it.
pub fn effective_threads() -> usize {
    if cfg!(feature = "parallel") {
        threads()
    } else {
        1
    }
}

/// One published region. `f` is a lifetime-erased pointer to the caller's
/// closure; the caller blocks until `completed == count`, so no worker can
/// observe it dangling (workers touch `f` only while holding a claimed
/// index, and every claimed index is counted into `completed`).
struct Region {
    f: *const (dyn Fn(usize) + Sync),
    count: usize,
    /// Next unclaimed job index.
    next: AtomicUsize,
    /// Jobs fully executed (success or caught panic).
    completed: AtomicUsize,
    /// Workers admitted so far; admission beyond `allowed` is refused so a
    /// larger-than-configured pool does not exceed the requested width.
    joined: AtomicUsize,
    /// Extra workers this region may admit (the caller participates too).
    allowed: usize,
    /// Set when any job panicked; the caller re-raises after the region.
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `f` is only dereferenced while the publishing caller is blocked
// in `run_region`, which outlives every dereference (see `completed`
// accounting above); all other fields are Sync primitives.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

struct PoolState {
    region: Option<Arc<Region>>,
    epoch: u64,
}

struct Pool {
    state: Mutex<PoolState>,
    wake: Condvar,
    spawned: AtomicUsize,
}

/// Guard making top-level regions mutually exclusive (see module docs).
static REGION_ACTIVE: AtomicBool = AtomicBool::new(false);

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { region: None, epoch: 0 }),
        wake: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

fn lock_state(p: &Pool) -> std::sync::MutexGuard<'_, PoolState> {
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(p: &'static Pool) {
    let mut seen_epoch = 0u64;
    loop {
        let region = {
            let mut guard = lock_state(p);
            loop {
                match &guard.region {
                    Some(r) if guard.epoch != seen_epoch => {
                        seen_epoch = guard.epoch;
                        break Arc::clone(r);
                    }
                    _ => {
                        guard = p.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        };
        if region.joined.fetch_add(1, Ordering::AcqRel) >= region.allowed {
            continue; // region already has its configured width
        }
        run_jobs(&region);
    }
}

/// Claims and runs job indices until the region is exhausted.
fn run_jobs(region: &Region) {
    loop {
        let i = region.next.fetch_add(1, Ordering::Relaxed);
        if i >= region.count {
            return;
        }
        // SAFETY: the publisher blocks until `completed == count`; this
        // dereference happens strictly before our `completed` increment
        // for index `i`.
        let f = unsafe { &*region.f };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            region.panicked.store(true, Ordering::Release);
        }
        if region.completed.fetch_add(1, Ordering::AcqRel) + 1 == region.count {
            let mut done = region.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = true;
            region.done_cv.notify_all();
        }
    }
}

fn ensure_workers(p: &'static Pool, want: usize) {
    loop {
        let have = p.spawned.load(Ordering::Acquire);
        if have >= want {
            return;
        }
        if p
            .spawned
            .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let spawned = std::thread::Builder::new()
                .name(format!("chet-par-{have}"))
                .spawn(move || worker_loop(p));
            if spawned.is_err() {
                // Could not get a worker: give the slot back and run with
                // whatever width we have (possibly inline-only).
                p.spawned.fetch_sub(1, Ordering::AcqRel);
                return;
            }
        }
    }
}

fn run_region(count: usize, width: usize, f: &(dyn Fn(usize) + Sync)) {
    // SAFETY: erase the closure lifetime for storage in the shared region;
    // this function does not return until every claimed index has
    // completed, so the pointer never outlives the referent's borrow.
    let f_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
    let region = Arc::new(Region {
        f: f_static,
        count,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        joined: AtomicUsize::new(0),
        allowed: width - 1,
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    let p = pool();
    ensure_workers(p, width - 1);
    {
        let mut guard = lock_state(p);
        guard.epoch = guard.epoch.wrapping_add(1);
        guard.region = Some(Arc::clone(&region));
        p.wake.notify_all();
    }
    // The caller is a full participant, not just a coordinator.
    run_jobs(&region);
    {
        let mut done = region.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = region.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
    {
        let mut guard = lock_state(p);
        guard.region = None;
    }
    if region.panicked.load(Ordering::Acquire) {
        resume_unwind(Box::new("job panicked inside a chet-par region"));
    }
}

/// Runs `f(i)` once for every `i in 0..count`, using up to
/// [`effective_threads`] threads. Falls back to an inline sequential loop
/// when the count or thread budget is 1, or when called from inside
/// another region (no nesting). `f` must confine its writes to per-index
/// state; the caller merges in index order, so results are independent of
/// the thread count.
pub fn parallel_for(count: usize, f: &(dyn Fn(usize) + Sync)) {
    let width = effective_threads().min(count);
    if count == 0 {
        return;
    }
    if width <= 1 || REGION_ACTIVE.swap(true, Ordering::Acquire) {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| run_region(count, width, f)));
    REGION_ACTIVE.store(false, Ordering::Release);
    if let Err(payload) = outcome {
        resume_unwind(payload);
    }
}

/// Disjoint-index write window over a slice, for collecting per-job
/// results from a region.
struct Slots<T>(*mut T);
// SAFETY: each index is written by exactly one job (the pool hands out
// each index once), so concurrent access is disjoint.
unsafe impl<T: Send> Send for Slots<T> {}
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// Raw pointer to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds; dereference only while no other job
    /// accesses the same index.
    unsafe fn at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Parallel map over `0..count`: returns `vec![f(0), f(1), ...]` with the
/// same ordering guarantees as a sequential map.
pub fn par_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    {
        let slots = Slots(out.as_mut_ptr());
        parallel_for(count, &|i| {
            let v = f(i);
            // SAFETY: index `i` is claimed exactly once (see `Slots`).
            unsafe { *slots.at(i) = Some(v) };
        });
    }
    out.into_iter()
        .map(|o| match o {
            Some(v) => v,
            // A missing slot is impossible unless the job panicked, and a
            // panic already propagated out of `parallel_for`.
            None => unreachable!("parallel_for completed with an unfilled slot"),
        })
        .collect()
}

/// Parallel in-place update of each slice element (one job per element).
pub fn par_iter_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let slots = Slots(items.as_mut_ptr());
    parallel_for(n, &|i| {
        // SAFETY: index `i` is claimed exactly once (see `Slots`).
        let item = unsafe { &mut *slots.at(i) };
        f(i, item);
    });
}

/// Parallel in-place update over two equal-length slices, pairing
/// `a[i]` with `b[i]` (one job per index). Used for limb/table pairs.
pub fn par_zip_mut<T, U, F>(a: &mut [T], b: &mut [U], f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T, &mut U) + Sync,
{
    let n = a.len().min(b.len());
    let sa = Slots(a.as_mut_ptr());
    let sb = Slots(b.as_mut_ptr());
    parallel_for(n, &|i| {
        // SAFETY: index `i` is claimed exactly once (see `Slots`).
        let (x, y) = unsafe { (&mut *sa.at(i), &mut *sb.at(i)) };
        f(i, x, y);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    use super::test_support::config_lock;

    #[test]
    fn thread_count_resolution_clamps() {
        let _g = config_lock();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(MAX_THREADS + 10);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(4);
        assert_eq!(threads(), 4);
    }

    #[test]
    fn parallel_for_runs_every_index_once() {
        let _g = config_lock();
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_preserves_index_order() {
        let _g = config_lock();
        set_threads(4);
        let out = par_map(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_each_element() {
        let _g = config_lock();
        set_threads(4);
        let mut v: Vec<u64> = (0..50).collect();
        par_iter_mut(&mut v, |i, x| *x += i as u64);
        assert_eq!(v, (0..50).map(|i| 2 * i).collect::<Vec<u64>>());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _g = config_lock();
        let run = |threads: usize| {
            set_threads(threads);
            par_map(123, |i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        let one = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), one, "thread count {t} changed results");
        }
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        let _g = config_lock();
        set_threads(4);
        let total = AtomicU64::new(0);
        parallel_for(8, &|_| {
            // Inner region must run inline on this worker.
            let inner = par_map(8, |j| j as u64);
            total.fetch_add(inner.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn empty_and_single_regions_are_inline() {
        let _g = config_lock();
        set_threads(4);
        parallel_for(0, &|_| panic!("must not run"));
        let out = par_map(1, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn job_panics_propagate_to_the_caller() {
        let _g = config_lock();
        set_threads(2);
        let caught = std::panic::catch_unwind(|| {
            parallel_for(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // The pool must stay usable after a panicked region.
        assert_eq!(par_map(4, |i| i), vec![0, 1, 2, 3]);
    }
}
