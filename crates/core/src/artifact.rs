//! Binary (de)serialization of [`CompiledCircuit`] — the payload format of
//! the serving tier's crash-safe artifact store.
//!
//! The encoding builds on `chet_hisa::serial`: deterministic little-endian
//! layout, one-byte enum tags, length prefixes validated before
//! allocation, and a leading format-version byte so future layout changes
//! fail loudly ([`CodecError::BadTag`]) instead of misparsing. Floating
//! point travels as IEEE-754 bit patterns, so encode→decode is exact and
//! `encode(decode(bytes)) == bytes` — the property that makes checksums
//! over the encoding trustworthy.
//!
//! Corruption anywhere in the byte stream surfaces as a typed
//! [`CodecError`]; the store layer additionally wraps every record in a
//! checksum, so decode errors here are the second line of defence (they
//! catch logic-level corruption like an undefined enum tag even if a
//! checksum were to collide).

use crate::compiler::CompiledCircuit;
use crate::layout::{LayoutPolicy, ALL_POLICIES};
use crate::params::AnalysisOutcome;
use chet_hisa::cost::ALL_OPS;
use chet_hisa::serial::{
    get_params, get_rotation_keys, put_params, put_rotation_keys, CodecError, Reader, Writer,
};
use chet_runtime::exec::ExecPlan;
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::layout::LayoutKind;
use std::collections::{BTreeSet, HashMap};

/// Format version written at the head of every encoded artifact. Bump on
/// any layout change; decoders refuse versions they don't know.
///
/// Version history: v1 = original layout; v2 appends the pruned-rotation
/// list (the `CHET-N002` provenance). v1 payloads still decode (with an
/// empty list), so stores written before the bump remain readable.
pub const ARTIFACT_FORMAT_VERSION: u8 = 2;

fn put_scales(w: &mut Writer, s: &ScaleConfig) {
    w.put_f64(s.input);
    w.put_f64(s.weight_plain);
    w.put_f64(s.weight_scalar);
    w.put_f64(s.mask);
}

fn get_scales(r: &mut Reader<'_>) -> Result<ScaleConfig, CodecError> {
    Ok(ScaleConfig {
        input: r.get_f64("ScaleConfig.input")?,
        weight_plain: r.get_f64("ScaleConfig.weight_plain")?,
        weight_scalar: r.get_f64("ScaleConfig.weight_scalar")?,
        mask: r.get_f64("ScaleConfig.mask")?,
    })
}

/// Encodes the four fixed-point scales. Public because the serve store
/// persists the service's working scales next to the artifact.
pub fn encode_scales(s: &ScaleConfig) -> Vec<u8> {
    let mut w = Writer::new();
    put_scales(&mut w, s);
    w.into_bytes()
}

/// Decodes [`encode_scales`] output.
pub fn decode_scales(bytes: &[u8]) -> Result<ScaleConfig, CodecError> {
    let mut r = Reader::new(bytes);
    let s = get_scales(&mut r)?;
    r.finish()?;
    Ok(s)
}

fn put_plan(w: &mut Writer, plan: &ExecPlan) {
    w.put_u32(plan.layouts.len() as u32);
    for k in &plan.layouts {
        w.put_u8(match k {
            LayoutKind::HW => 0,
            LayoutKind::CHW => 1,
        });
    }
    put_scales(w, &plan.scales);
    w.put_usize(plan.margin);
}

fn get_plan(r: &mut Reader<'_>) -> Result<ExecPlan, CodecError> {
    let at = r.position();
    let len = r.get_u32("ExecPlan.layouts")? as usize;
    if len > r.remaining() {
        return Err(CodecError::BadLength { at, what: "ExecPlan.layouts", len });
    }
    let mut layouts = Vec::with_capacity(len);
    for _ in 0..len {
        let at = r.position();
        layouts.push(match r.get_u8("LayoutKind")? {
            0 => LayoutKind::HW,
            1 => LayoutKind::CHW,
            tag => return Err(CodecError::BadTag { at, what: "LayoutKind", tag }),
        });
    }
    Ok(ExecPlan { layouts, scales: get_scales(r)?, margin: r.get_usize("ExecPlan.margin")? })
}

fn policy_tag(p: LayoutPolicy) -> u8 {
    // ALL_POLICIES is the paper-ordered canonical list; its index is the tag.
    ALL_POLICIES.iter().position(|&q| q == p).unwrap_or(0) as u8
}

fn get_policy(r: &mut Reader<'_>) -> Result<LayoutPolicy, CodecError> {
    let at = r.position();
    let tag = r.get_u8("LayoutPolicy")?;
    ALL_POLICIES
        .get(tag as usize)
        .copied()
        .ok_or(CodecError::BadTag { at, what: "LayoutPolicy", tag })
}

fn put_outcome(w: &mut Writer, o: &AnalysisOutcome) {
    put_params(w, &o.params);
    w.put_u32(o.rotations.len() as u32);
    for &s in &o.rotations {
        w.put_usize(s);
    }
    w.put_f64(o.consumed_log2);
    w.put_f64(o.output_scale);
    // op_counts in canonical ALL_OPS order (HashMap iteration order is not
    // deterministic; the encoding must be).
    let counted: Vec<(u8, u64)> = ALL_OPS
        .iter()
        .enumerate()
        .filter_map(|(i, op)| o.op_counts.get(op).map(|&n| (i as u8, n)))
        .collect();
    w.put_u32(counted.len() as u32);
    for (tag, n) in counted {
        w.put_u8(tag);
        w.put_u64(n);
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<AnalysisOutcome, CodecError> {
    let params = get_params(r)?;
    let at = r.position();
    let len = r.get_u32("AnalysisOutcome.rotations")? as usize;
    if len.saturating_mul(8) > r.remaining() {
        return Err(CodecError::BadLength { at, what: "AnalysisOutcome.rotations", len });
    }
    let mut rotations = BTreeSet::new();
    for _ in 0..len {
        rotations.insert(r.get_usize("AnalysisOutcome.rotations")?);
    }
    let consumed_log2 = r.get_f64("AnalysisOutcome.consumed_log2")?;
    let output_scale = r.get_f64("AnalysisOutcome.output_scale")?;
    let at = r.position();
    let len = r.get_u32("AnalysisOutcome.op_counts")? as usize;
    if len.saturating_mul(9) > r.remaining() {
        return Err(CodecError::BadLength { at, what: "AnalysisOutcome.op_counts", len });
    }
    let mut op_counts = HashMap::new();
    for _ in 0..len {
        let at = r.position();
        let tag = r.get_u8("HisaOp")?;
        let op = *ALL_OPS
            .get(tag as usize)
            .ok_or(CodecError::BadTag { at, what: "HisaOp", tag })?;
        op_counts.insert(op, r.get_u64("AnalysisOutcome.op_counts")?);
    }
    Ok(AnalysisOutcome { params, rotations, consumed_log2, output_scale, op_counts })
}

/// Encodes a [`CompiledCircuit`] into the versioned artifact byte format.
pub fn encode_compiled(c: &CompiledCircuit) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(ARTIFACT_FORMAT_VERSION);
    put_plan(&mut w, &c.plan);
    put_params(&mut w, &c.params);
    put_rotation_keys(&mut w, &c.rotation_keys);
    w.put_u8(policy_tag(c.policy));
    w.put_f64(c.estimated_cost);
    put_outcome(&mut w, &c.outcome);
    w.put_f64(c.output_precision);
    w.put_u32(c.pruned_rotations.len() as u32);
    for &s in &c.pruned_rotations {
        w.put_usize(s);
    }
    w.into_bytes()
}

/// Decodes [`encode_compiled`] output, rejecting unknown format versions,
/// truncation, and undefined enum tags as typed [`CodecError`]s.
pub fn decode_compiled(bytes: &[u8]) -> Result<CompiledCircuit, CodecError> {
    let mut r = Reader::new(bytes);
    let at = r.position();
    let version = r.get_u8("artifact format version")?;
    if version == 0 || version > ARTIFACT_FORMAT_VERSION {
        return Err(CodecError::BadTag { at, what: "artifact format version", tag: version });
    }
    let mut c = CompiledCircuit {
        plan: get_plan(&mut r)?,
        params: get_params(&mut r)?,
        rotation_keys: get_rotation_keys(&mut r)?,
        policy: get_policy(&mut r)?,
        estimated_cost: r.get_f64("CompiledCircuit.estimated_cost")?,
        outcome: get_outcome(&mut r)?,
        output_precision: r.get_f64("CompiledCircuit.output_precision")?,
        pruned_rotations: Vec::new(),
    };
    if version >= 2 {
        let at = r.position();
        let len = r.get_u32("CompiledCircuit.pruned_rotations")? as usize;
        if len.saturating_mul(8) > r.remaining() {
            return Err(CodecError::BadLength {
                at,
                what: "CompiledCircuit.pruned_rotations",
                len,
            });
        }
        for _ in 0..len {
            c.pruned_rotations.push(r.get_usize("CompiledCircuit.pruned_rotations")?);
        }
    }
    r.finish()?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use chet_hisa::params::SchemeKind;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;
    use chet_tensor::Tensor;

    fn compiled() -> CompiledCircuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 6, 6]);
        let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
        let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
        let a = b.activation(c, 0.2, 0.9);
        let g = b.global_avg_pool(a);
        let circuit = b.build(g);
        let scales = ScaleConfig::from_log2(25, 12, 12, 10);
        let (compiled, _) = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(2f64.powi(20))
            .compile_checked(&circuit, &scales)
            .expect("test circuit compiles");
        compiled
    }

    #[test]
    fn artifact_roundtrip_is_exact() {
        let c = compiled();
        let bytes = encode_compiled(&c);
        let back = decode_compiled(&bytes).expect("decode");
        // Field-by-field equality (CompiledCircuit has no PartialEq).
        assert_eq!(back.plan.layouts, c.plan.layouts);
        assert_eq!(back.plan.margin, c.plan.margin);
        assert_eq!(back.plan.scales.input.to_bits(), c.plan.scales.input.to_bits());
        assert_eq!(back.params, c.params);
        assert_eq!(back.rotation_keys, c.rotation_keys);
        assert_eq!(back.policy, c.policy);
        assert_eq!(back.estimated_cost.to_bits(), c.estimated_cost.to_bits());
        assert_eq!(back.outcome.rotations, c.outcome.rotations);
        assert_eq!(back.outcome.op_counts, c.outcome.op_counts);
        assert_eq!(back.output_precision.to_bits(), c.output_precision.to_bits());
        assert_eq!(back.pruned_rotations, c.pruned_rotations);
        // Canonical form: re-encoding reproduces the identical bytes.
        assert_eq!(encode_compiled(&back), bytes);
    }

    #[test]
    fn pruned_rotations_roundtrip() {
        let mut c = compiled();
        c.pruned_rotations = vec![3, 7, 1024];
        let back = decode_compiled(&encode_compiled(&c)).expect("decode");
        assert_eq!(back.pruned_rotations, vec![3, 7, 1024]);
    }

    #[test]
    fn version_1_artifacts_still_decode() {
        // A v1 payload is a v2 payload minus the trailing pruned-rotation
        // list (4-byte empty length prefix), with the version byte at 1.
        let c = compiled();
        assert!(c.pruned_rotations.is_empty(), "compiler output prunes nothing");
        let mut bytes = encode_compiled(&c);
        bytes[0] = 1;
        bytes.truncate(bytes.len() - 4);
        let back = decode_compiled(&bytes).expect("v1 decode");
        assert_eq!(back.rotation_keys, c.rotation_keys);
        assert!(back.pruned_rotations.is_empty());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_compiled(&compiled());
        for cut in 0..bytes.len() {
            assert!(
                decode_compiled(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn unknown_format_version_is_rejected() {
        let mut bytes = encode_compiled(&compiled());
        bytes[0] = 0xEE;
        assert!(matches!(
            decode_compiled(&bytes),
            Err(CodecError::BadTag { what: "artifact format version", .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_compiled(&compiled());
        bytes.push(0);
        assert!(matches!(decode_compiled(&bytes), Err(CodecError::TrailingBytes { .. })));
    }
}
