//! Encryption-parameter selection (paper §5.2).
//!
//! Runs the circuit under the modulus-tracking interpretation to find the
//! modulus each variant needs, then picks the smallest ring degree whose
//! security budget admits it.

use crate::analysis::{Analyzer, RescaleModel};
use chet_hisa::cost::HisaOp;
use chet_hisa::params::{EncryptionParams, ModulusSpec, SchemeKind};
use chet_hisa::security::{max_log_q, SecurityLevel, DEGREES};
use chet_math::prime::ntt_primes;
use chet_runtime::exec::{encrypt_input, run_encrypted, ExecPlan};
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::layout::LayoutKind;
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Headroom bits reserved above the output scale for message magnitude.
const HEADROOM_BITS: f64 = 10.0;

/// Everything the parameter-selection analysis learns about a circuit under
/// one layout plan.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The selected encryption parameters.
    pub params: EncryptionParams,
    /// Rotation steps the circuit requests (input to key selection).
    pub rotations: BTreeSet<usize>,
    /// Total modulus consumed (log2).
    pub consumed_log2: f64,
    /// Scale of the circuit output ciphertext.
    pub output_scale: f64,
    /// HISA op counts.
    pub op_counts: HashMap<HisaOp, u64>,
}

/// Why compilation (parameter / layout / scale selection, or the
/// post-compile validation loop) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// No supported ring degree can hold the circuit.
    NoParameters {
        /// Scheme/security context of the failed search.
        detail: String,
    },
    /// The circuit uses a shape the toolchain cannot compile (e.g. multiple
    /// encrypted inputs) — rejected up front, before any analysis runs.
    UnsupportedCircuit {
        /// What made the circuit unsupported.
        reason: String,
    },
    /// No layout policy admits valid encryption parameters.
    NoLayout,
    /// Profile-guided scale selection could not meet the tolerance.
    ScaleSearchFailed {
        /// What the search could not achieve.
        detail: String,
    },
    /// `compile_checked`'s bounded repair loop ran out of attempts.
    RepairFailed {
        /// Attempts spent (initial compile + retries).
        attempts: usize,
        /// The failure observed on the last attempt.
        last_error: String,
    },
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::NoParameters { detail } => {
                write!(f, "parameter selection failed: {detail}")
            }
            SelectError::UnsupportedCircuit { reason } => {
                write!(f, "unsupported circuit: {reason}")
            }
            SelectError::NoLayout => {
                write!(f, "parameter selection failed: no layout policy admits valid parameters")
            }
            SelectError::ScaleSearchFailed { detail } => {
                write!(f, "parameter selection failed: {detail}")
            }
            SelectError::RepairFailed { attempts, last_error } => {
                write!(f, "automatic repair failed after {attempts} attempts: {last_error}")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Generates the candidate rescaling primes for the RNS variant, sized to
/// the working scale (all ≡ 1 mod 2·32768, hence NTT-friendly for every
/// supported degree).
pub fn candidate_primes(scales: &ScaleConfig) -> Arc<Vec<u64>> {
    // Primes must be ≡ 1 mod 65536; below ~30 bits too few exist, so the
    // candidate size floors there even for smaller working scales.
    let bits = (scales.input.log2().round() as u32).clamp(30, 59);
    Arc::new(ntt_primes(bits, 32768, 40))
}

/// Quick structural check that a circuit's tensors fit `slots`-wide vectors
/// under a margin, before running the full analysis.
pub fn circuit_fits(circuit: &Circuit, margin: usize, slots: usize) -> bool {
    let shapes = circuit.shapes();
    for (i, op) in circuit.ops().iter().enumerate() {
        match op {
            Op::Input { shape } => {
                let [_, h, w] = shape[..] else { return false };
                if (w + margin) * (h + margin) > slots {
                    return false;
                }
            }
            Op::MatMul { .. } => {
                if shapes[i][0] > slots {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

/// Runs the modulus/rotation analysis for a fixed slot count.
fn analyze(
    circuit: &Circuit,
    layouts: &[LayoutKind],
    scales: &ScaleConfig,
    margin: usize,
    slots: usize,
    model: RescaleModel,
) -> Analyzer {
    let mut az = Analyzer::new(slots, model);
    let plan = ExecPlan { layouts: layouts.to_vec(), scales: *scales, margin };
    // Invariant: CircuitBuilder cannot produce an input-free circuit.
    #[allow(clippy::expect_used)]
    let input_shape = circuit
        .ops()
        .iter()
        .find_map(|op| match op {
            Op::Input { shape } => Some(shape.clone()),
            _ => None,
        })
        .expect("circuit has an input");
    let image = Tensor::zeros(input_shape);
    let enc = encrypt_input(&mut az, circuit, &plan, &image);
    let _out = run_encrypted(&mut az, circuit, &plan, enc);
    az
}

/// Selects encryption parameters for a circuit under a layout assignment
/// (paper §5.2): the smallest `Q` that evaluates the circuit at the desired
/// output precision, and the smallest `N` whose security budget admits it.
///
/// For the CKKS (HEAAN-style) variant the security check follows the
/// paper's Table 4 practice and constrains `log Q` alone; for RNS-CKKS the
/// full `Q·P` is checked against the HE-standard table.
///
/// # Errors
///
/// Returns an error when even `N = 32768` cannot hold the circuit.
pub fn select_parameters(
    circuit: &Circuit,
    layouts: &[LayoutKind],
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
) -> Result<AnalysisOutcome, SelectError> {
    select_parameters_with_margin(circuit, layouts, scales, kind, security, output_precision, 0)
}

/// [`select_parameters`] with `extra_levels` spare rescaling levels beyond
/// what the analysis measured — the knob `compile_checked`'s repair loop
/// turns when the simulated probe exhausts the modulus early (e.g. noise or
/// scheduling effects the static analysis underestimates).
#[allow(clippy::too_many_arguments)]
pub fn select_parameters_with_margin(
    circuit: &Circuit,
    layouts: &[LayoutKind],
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    extra_levels: usize,
) -> Result<AnalysisOutcome, SelectError> {
    let margin = chet_runtime::exec::required_margin_for(circuit);
    let candidates = match kind {
        SchemeKind::RnsCkks => Some(candidate_primes(scales)),
        SchemeKind::Ckks => None,
    };
    for &n in &DEGREES {
        let slots = n / 2;
        if !circuit_fits(circuit, margin, slots) {
            continue;
        }
        let model = match &candidates {
            Some(c) => RescaleModel::Chain(c.clone()),
            None => RescaleModel::PowerOfTwo,
        };
        let az = analyze(circuit, layouts, scales, margin, slots, model);
        // The ciphertext must hold output_value·output_scale plus headroom
        // after consuming `consumed` bits of modulus. The live output scale
        // can exceed the requested precision; budget for the larger.
        let residual_bits = az.last_scale.log2().max(output_precision.log2());
        let params = match kind {
            SchemeKind::Ckks => {
                let margin_bits = extra_levels as f64 * scales.input.log2().ceil();
                let log_q = (az.max_consumed_log2 + residual_bits + HEADROOM_BITS + margin_bits)
                    .ceil() as u32;
                if log_q > max_log_q(n, security) {
                    continue;
                }
                let mut p = EncryptionParams::ckks(n, log_q);
                // HEAAN-style relaxed check (documented in DESIGN.md):
                // skip the Q·P validation by marking the level explicitly.
                p.security = security;
                p
            }
            SchemeKind::RnsCkks => {
                // Invariant: `candidates` is `Some` exactly for RnsCkks —
                // constructed a few lines above from the same `kind`.
                #[allow(clippy::expect_used)]
                let cands = candidates.as_ref().expect("chain candidates");
                // Base primes cover the residual value.
                let base_bits = 60u32;
                let base_count =
                    ((residual_bits + HEADROOM_BITS) / (base_bits as f64 - 0.5)).ceil() as usize;
                let mut pool = ntt_primes(base_bits, 32768, base_count + 1);
                let special = pool.remove(0);
                // Chain order: rescaling pops from the back, so the first-
                // consumed candidate goes last.
                let mut primes = pool;
                let take = (az.max_chain_idx + extra_levels).min(cands.len());
                let consumed: Vec<u64> = cands[..take].iter().rev().copied().collect();
                primes.extend(consumed);
                let spec = ModulusSpec::PrimeChain { primes, special };
                if spec.total_log_q() > max_log_q(n, security) as f64 {
                    continue;
                }
                EncryptionParams {
                    degree: n,
                    modulus: spec,
                    security,
                    error_stddev: EncryptionParams::DEFAULT_ERROR_STDDEV,
                }
            }
        };
        return Ok(AnalysisOutcome {
            params,
            rotations: az.rotations,
            consumed_log2: az.max_consumed_log2,
            output_scale: az.last_scale,
            op_counts: az.op_counts,
        });
    }
    Err(SelectError::NoParameters {
        detail: format!(
            "no supported ring degree admits this circuit under {kind} at {security:?}"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;

    fn small_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 8, 8]);
        let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] + i[3]) as f64 * 0.1 - 0.1);
        let c = b.conv2d(x, w, None, 1, Padding::Valid);
        let a = b.activation(c, 0.25, 0.5);
        let f = b.flatten(a);
        let wfc = Tensor::from_fn(vec![3, 72], |i| (i[1] % 3) as f64 * 0.1);
        let m = b.matmul(f, wfc, None);
        b.build(m)
    }

    #[test]
    fn selects_rns_parameters_for_small_circuit() {
        let c = small_circuit();
        let layouts = vec![LayoutKind::CHW; c.ops().len()];
        let out = select_parameters(
            &c,
            &layouts,
            &ScaleConfig::default(),
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(30),
        )
        .unwrap();
        assert_eq!(out.params.kind(), SchemeKind::RnsCkks);
        assert!(out.params.validate().is_ok(), "{:?}", out.params.validate());
        assert!(out.consumed_log2 > 0.0, "circuit must consume modulus");
        assert!(!out.rotations.is_empty(), "conv/fc must rotate");
    }

    #[test]
    fn selects_ckks_parameters_for_small_circuit() {
        let c = small_circuit();
        let layouts = vec![LayoutKind::HW; c.ops().len()];
        let out = select_parameters(
            &c,
            &layouts,
            &ScaleConfig::default(),
            SchemeKind::Ckks,
            SecurityLevel::Bits128,
            2f64.powi(30),
        )
        .unwrap();
        match out.params.modulus {
            ModulusSpec::PowerOfTwo { log_q, .. } => {
                assert!(log_q as f64 >= out.consumed_log2 + 30.0);
            }
            _ => panic!("expected power-of-two modulus"),
        }
    }

    #[test]
    fn deeper_circuits_need_more_modulus() {
        let shallow = small_circuit();
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 8, 8]);
        let w = Tensor::from_fn(vec![1, 1, 3, 3], |_| 0.1);
        let mut node = x;
        for _ in 0..3 {
            node = b.conv2d(node, w.clone(), None, 1, Padding::Same);
            node = b.activation(node, 0.1, 1.0);
        }
        let deep = b.build(node);
        let scales = ScaleConfig::default();
        let l1 = vec![LayoutKind::CHW; shallow.ops().len()];
        let l2 = vec![LayoutKind::CHW; deep.ops().len()];
        let s = select_parameters(&shallow, &l1, &scales, SchemeKind::Ckks, SecurityLevel::Bits128, 2f64.powi(30)).unwrap();
        let d = select_parameters(&deep, &l2, &scales, SchemeKind::Ckks, SecurityLevel::Bits128, 2f64.powi(30)).unwrap();
        assert!(d.consumed_log2 > s.consumed_log2);
        assert!(d.params.modulus.log_q() > s.params.modulus.log_q());
    }

    #[test]
    fn degree_grows_with_image_size() {
        // A big image forces a bigger ring regardless of depth.
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 90, 90]);
        let p = b.avg_pool2d(x, 2, 2);
        let c = b.build(p);
        let layouts = vec![LayoutKind::HW; c.ops().len()];
        let out = select_parameters(
            &c,
            &layouts,
            &ScaleConfig::default(),
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(30),
        )
        .unwrap();
        assert!(out.params.degree >= 16384, "90x90 image needs >= 8100 slots");
    }

    #[test]
    fn fits_check_rejects_oversized() {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 200, 200]);
        let p = b.avg_pool2d(x, 2, 2);
        let c = b.build(p);
        assert!(!circuit_fits(&c, 0, 16384));
        assert!(circuit_fits(&c, 0, 65536));
    }
}
