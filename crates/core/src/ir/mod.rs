//! The whole-circuit HISA intermediate representation (ROADMAP #5).
//!
//! The paper's compiler deliberately never materializes a data-flow graph
//! (§5.1): every analysis is an on-the-fly interpretation of the circuit.
//! That works for *local* facts (scales, levels, key sets) but cannot see
//! whole-program structure — duplicate rotations across kernels, common
//! subexpressions, dead computation — and cannot *predict* latency. This
//! module adds the missing substrate without giving up the §5.1 mechanism:
//! the IR is extracted *by* an interpretation. [`TraceInterp`] implements
//! [`Hisa`] with symbolic ciphertexts (an SSA id plus the scale/level fact
//! the simulator would carry) and records every instruction the standard
//! executor and kernels issue, producing an [`IrGraph`] — the exact HISA
//! instruction stream of one inference, in program order.
//!
//! Three consumers ride on the graph:
//!
//! * [`analyze`](crate::ir::analyze) — the rotation/CSE analyzer emitting
//!   the stable `CHET-P0xx` performance lints.
//! * [`cost`](crate::ir::cost) — the calibrated static cost model: per-op
//!   microsecond predictions summed over the instruction stream.
//! * [`try_replay_ir`] — a faithful re-interpreter: replaying the graph on
//!   a backend reproduces the original execution bit-for-bit (the property
//!   [`crate::equiv`] turns into a translation validator).
//!
//! Fidelity contract: [`TraceInterp`] mirrors the `SimCkks` reference
//! backend's *decision surface* exactly — `scale_of`, `max_rescale`, the
//! rescale chain-pop loop, rotation normalization/planning, and every error
//! condition. Kernels branch only on that surface (never on slot values),
//! so the recorded instruction stream is the one any value-level backend
//! executes, and replay is bit-identical to direct inference.

pub mod analyze;
pub mod cost;

use crate::compiler::CompiledCircuit;
use crate::verify::OpSpan;
use chet_hisa::keys::{normalize_rotation, plan_rotation};
use chet_hisa::params::{ModulusSpec, SchemeKind};
use chet_hisa::serial::fnv1a64;
use chet_hisa::{Hisa, HisaError, LevelInfo};
use chet_runtime::ciphertensor::{decrypt_tensor, try_encrypt_tensor, CipherTensor};
use chet_runtime::exec::{
    try_encrypt_input, try_run_encrypted_with, ExecControl, ExecError, ExecObserver,
};
use chet_runtime::layout::Layout;
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Sentinel plaintext id for input-phase encodes (client-side plaintexts
/// that become [`IrOp::Input`] nodes, never operands).
const INPUT_PT: usize = usize::MAX;

/// How much of the trace to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractMode {
    /// Keep encoded plaintext values — required for [`try_replay_ir`].
    Full,
    /// Drop plaintext values (ids and hashes only) — enough for the lint
    /// and cost analyses, at a fraction of the memory.
    Metadata,
}

/// One HISA instruction in the graph. Operands are node ids (SSA: every
/// instruction defines exactly one new value); `pt` operands index
/// [`IrGraph::plains`].
#[derive(Debug, Clone, PartialEq)]
pub enum IrOp {
    /// The `ct`-th ciphertext of the encrypted input tensor.
    Input { ct: usize },
    /// Ciphertext + ciphertext.
    Add { a: usize, b: usize },
    /// Ciphertext − ciphertext.
    Sub { a: usize, b: usize },
    /// Ciphertext × ciphertext.
    Mul { a: usize, b: usize },
    /// Ciphertext + encoded plaintext.
    AddPlain { a: usize, pt: usize },
    /// Ciphertext − encoded plaintext.
    SubPlain { a: usize, pt: usize },
    /// Ciphertext × encoded plaintext.
    MulPlain { a: usize, pt: usize },
    /// Ciphertext + scalar broadcast (subtraction records a negated `x`,
    /// exactly as the reference backend computes it).
    AddScalar { a: usize, x: f64 },
    /// Ciphertext × scalar encoded at `scale`.
    MulScalar { a: usize, x: f64, scale: f64 },
    /// Cyclic left rotation by a normalized step in `[1, slots)` (right
    /// rotations are recorded as their left-normalized equivalent).
    RotLeft { a: usize, step: usize },
    /// Scale division by `divisor` (> 1), consuming modulus.
    Rescale { a: usize, divisor: f64 },
}

impl IrOp {
    /// Ciphertext operand node ids.
    pub fn operands(&self) -> impl Iterator<Item = usize> + '_ {
        let (a, b) = match self {
            IrOp::Input { .. } => (None, None),
            IrOp::Add { a, b } | IrOp::Sub { a, b } | IrOp::Mul { a, b } => {
                (Some(*a), Some(*b))
            }
            IrOp::AddPlain { a, .. }
            | IrOp::SubPlain { a, .. }
            | IrOp::MulPlain { a, .. }
            | IrOp::AddScalar { a, .. }
            | IrOp::MulScalar { a, .. }
            | IrOp::RotLeft { a, .. }
            | IrOp::Rescale { a, .. } => (Some(*a), None),
        };
        a.into_iter().chain(b)
    }

    /// Short mnemonic for dumps and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            IrOp::Input { .. } => "input",
            IrOp::Add { .. } => "add",
            IrOp::Sub { .. } => "sub",
            IrOp::Mul { .. } => "mul",
            IrOp::AddPlain { .. } => "addPlain",
            IrOp::SubPlain { .. } => "subPlain",
            IrOp::MulPlain { .. } => "mulPlain",
            IrOp::AddScalar { .. } => "addScalar",
            IrOp::MulScalar { .. } => "mulScalar",
            IrOp::RotLeft { .. } => "rotLeft",
            IrOp::Rescale { .. } => "rescale",
        }
    }
}

/// One SSA node: the instruction plus the metadata every analysis needs —
/// the circuit span it executed under, the result's fixed-point scale, and
/// the *operand's* modulus state (cost grows with the operand modulus).
#[derive(Debug, Clone, PartialEq)]
pub struct IrNode {
    /// The instruction.
    pub op: IrOp,
    /// The circuit node (tensor op) whose kernel issued this instruction.
    pub span: Option<OpSpan>,
    /// Fixed-point scale of the result.
    pub scale: f64,
    /// Modulus state of the (first) ciphertext operand at execution time.
    pub level: LevelInfo,
}

/// An interned encoded plaintext. The pool is deduplicated by content hash,
/// so repeated weight encodings share one entry; [`IrGraph::encodes`]
/// separately records every *encode call* (each call costs, even when the
/// resulting plaintext is a duplicate).
#[derive(Debug, Clone, PartialEq)]
pub struct IrPlain {
    /// The encoded values ([`ExtractMode::Metadata`] drops them).
    pub values: Option<Vec<f64>>,
    /// Encoding scale.
    pub scale: f64,
    /// Number of values encoded.
    pub len: usize,
    /// FNV-1a over the value bit patterns and the scale (the dedup key).
    pub hash: u64,
}

/// One `encode` call the traced execution issued (server-side only — the
/// client's input encodes are not part of circuit latency).
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeEvent {
    /// The interned plaintext the call produced.
    pub pt: usize,
    /// The circuit span the call executed under.
    pub span: Option<OpSpan>,
}

/// The extracted dataflow graph of one compiled circuit's HISA execution.
#[derive(Debug, Clone, PartialEq)]
pub struct IrGraph {
    /// Scheme variant the artifact targets.
    pub scheme: SchemeKind,
    /// Ring degree `N`.
    pub degree: usize,
    /// SIMD slots per ciphertext.
    pub slots: usize,
    /// RNS prime chain in the artifact's order (empty for CKKS).
    pub chain: Vec<u64>,
    /// Total modulus bits.
    pub log_q: f64,
    /// Rotation steps the artifact holds keys for.
    pub keyed_steps: BTreeSet<usize>,
    /// Input encryption scale (the plan's `scales.input`).
    pub input_scale: f64,
    /// Physical layout the input tensor is encrypted under.
    pub input_layout: Layout,
    /// Physical layout of the output ciphertext tensor.
    pub output_layout: Layout,
    /// Logical shape of the circuit output (for the executor's 1-D
    /// flattening convention).
    pub output_shape: Vec<usize>,
    /// The instruction stream, in program order (ids are indices).
    pub nodes: Vec<IrNode>,
    /// Node ids of the [`IrOp::Input`] nodes, in ciphertext order.
    pub inputs: Vec<usize>,
    /// Node ids of the output tensor's ciphertexts, in layout order.
    pub outputs: Vec<usize>,
    /// Deduplicated encoded-plaintext pool.
    pub plains: Vec<IrPlain>,
    /// Every server-side encode call, in program order.
    pub encodes: Vec<EncodeEvent>,
}

impl IrGraph {
    /// Rotation steps the instruction stream requests (normalized).
    pub fn requested_rotations(&self) -> BTreeSet<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n.op {
                IrOp::RotLeft { step, .. } => Some(step),
                _ => None,
            })
            .collect()
    }

    /// Nodes reachable from the outputs (the live computation).
    pub fn live_nodes(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if live[id] {
                continue;
            }
            live[id] = true;
            stack.extend(self.nodes[id].op.operands());
        }
        live
    }

    /// Human-readable dump (the `chet-lint --ir-dump` format): one line per
    /// node with span, scale and level metadata.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ir: {:?} N={} slots={} nodes={} plains={} encodes={} inputs={} outputs={}\n",
            self.scheme,
            self.degree,
            self.slots,
            self.nodes.len(),
            self.plains.len(),
            self.encodes.len(),
            self.inputs.len(),
            self.outputs.len(),
        ));
        for (id, n) in self.nodes.iter().enumerate() {
            let span = n
                .span
                .as_ref()
                .map(|s| format!("op#{}:{}", s.op_index, s.kernel))
                .unwrap_or_else(|| "-".into());
            let detail = match &n.op {
                IrOp::Input { ct } => format!("ct[{ct}]"),
                IrOp::Add { a, b } | IrOp::Sub { a, b } | IrOp::Mul { a, b } => {
                    format!("%{a}, %{b}")
                }
                IrOp::AddPlain { a, pt }
                | IrOp::SubPlain { a, pt }
                | IrOp::MulPlain { a, pt } => format!("%{a}, pt[{pt}]"),
                IrOp::AddScalar { a, x } => format!("%{a}, {x}"),
                IrOp::MulScalar { a, x, scale } => {
                    format!("%{a}, {x} @2^{:.1}", scale.log2())
                }
                IrOp::RotLeft { a, step } => format!("%{a}, <<{step}"),
                IrOp::Rescale { a, divisor } => format!("%{a}, /2^{:.1}", divisor.log2()),
            };
            out.push_str(&format!(
                "%{id} = {} {detail}  ; scale=2^{:.1} r={} [{span}]\n",
                n.op.mnemonic(),
                n.scale.log2(),
                n.level.rns_len,
            ));
        }
        out
    }
}

/// Modulus state of a symbolic ciphertext — the reference backend's
/// `Remaining` model, verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Level {
    Pow2 { log_q: f64 },
    Chain { level: usize },
}

/// Symbolic ciphertext: SSA id plus the decision-surface facts.
#[derive(Debug, Clone)]
pub struct TraceCt {
    id: usize,
    scale: f64,
    level: Level,
}

/// Symbolic plaintext: pool id plus encoding metadata.
#[derive(Debug, Clone)]
pub struct TracePt {
    pid: usize,
    scale: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Client-side input encryption: encodes are not circuit work and
    /// encrypts become [`IrOp::Input`] nodes.
    Input,
    /// Server-side circuit execution: everything is recorded.
    Body,
}

/// The recording [`Hisa`] interpretation. Create via [`TraceInterp::new`],
/// run the standard executor over it, then [`TraceInterp::finish`].
///
/// The interpretation never forks (`fork() → None`), so kernel fan-out runs
/// sequentially on `self` in job order and the recorded stream is the
/// deterministic program-order trace — the same order every thread count
/// produces values in (the PR 4 determinism contract).
pub struct TraceInterp {
    slots: usize,
    chain: Vec<u64>,
    /// Prefix sums of `log2(chain[..i])` for [`LevelInfo`] conversion.
    chain_log2: Vec<f64>,
    pow2_log_q: f64,
    rns: bool,
    keys: BTreeSet<usize>,
    phase: Phase,
    span: Arc<Mutex<Option<OpSpan>>>,
    mode: ExtractMode,
    nodes: Vec<IrNode>,
    inputs: Vec<usize>,
    plains: Vec<IrPlain>,
    plain_buckets: HashMap<u64, Vec<usize>>,
    encodes: Vec<EncodeEvent>,
}

impl TraceInterp {
    /// A recorder for a compiled artifact's parameters and key set.
    pub fn new(compiled: &CompiledCircuit, mode: ExtractMode) -> Self {
        let slots = compiled.params.slots();
        let (chain, pow2_log_q, rns) = match &compiled.params.modulus {
            ModulusSpec::PrimeChain { primes, .. } => (primes.clone(), 0.0, true),
            ModulusSpec::PowerOfTwo { log_q, .. } => (Vec::new(), *log_q as f64, false),
        };
        let mut chain_log2 = Vec::with_capacity(chain.len() + 1);
        let mut acc = 0.0;
        chain_log2.push(acc);
        for &p in &chain {
            acc += (p as f64).log2();
            chain_log2.push(acc);
        }
        TraceInterp {
            slots,
            chain,
            chain_log2,
            pow2_log_q,
            rns,
            keys: compiled.rotation_keys.steps(slots),
            phase: Phase::Input,
            span: Arc::new(Mutex::new(None)),
            mode,
            nodes: Vec::new(),
            inputs: Vec::new(),
            plains: Vec::new(),
            plain_buckets: HashMap::new(),
            encodes: Vec::new(),
        }
    }

    /// Switches from input capture to circuit recording (call after the
    /// input tensor is encrypted).
    pub fn begin_body(&mut self) {
        self.phase = Phase::Body;
    }

    /// The span cell the executor observer writes into.
    fn span_cell(&self) -> Arc<Mutex<Option<OpSpan>>> {
        Arc::clone(&self.span)
    }

    fn fresh_level(&self) -> Level {
        if self.rns {
            Level::Chain { level: self.chain.len() }
        } else {
            Level::Pow2 { log_q: self.pow2_log_q }
        }
    }

    fn level_info(&self, level: Level) -> LevelInfo {
        match level {
            Level::Pow2 { log_q } => LevelInfo { log_q, rns_len: 1 },
            Level::Chain { level } => LevelInfo {
                log_q: self.chain_log2.get(level).copied().unwrap_or(0.0),
                rns_len: level,
            },
        }
    }

    fn meet(a: Level, b: Level) -> Level {
        match (a, b) {
            (Level::Pow2 { log_q: x }, Level::Pow2 { log_q: y }) => {
                Level::Pow2 { log_q: x.min(y) }
            }
            (Level::Chain { level: x }, Level::Chain { level: y }) => {
                Level::Chain { level: x.min(y) }
            }
            // One modulus model per artifact — unreachable by construction.
            _ => a,
        }
    }

    fn current_span(&self) -> Option<OpSpan> {
        self.span.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn record(&mut self, op: IrOp, scale: f64, operand_level: Level, result_level: Level) -> TraceCt {
        let id = self.nodes.len();
        self.nodes.push(IrNode {
            op,
            span: self.current_span(),
            scale,
            level: self.level_info(operand_level),
        });
        TraceCt { id, scale, level: result_level }
    }

    fn intern_plain(&mut self, values: &[f64], scale: f64) -> usize {
        let mut bytes = Vec::with_capacity(values.len() * 8 + 8);
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&scale.to_bits().to_le_bytes());
        let hash = fnv1a64(&bytes);
        if let Some(bucket) = self.plain_buckets.get(&hash) {
            for &pid in bucket {
                let p = &self.plains[pid];
                if p.scale.to_bits() == scale.to_bits() && p.len == values.len() && p.hash == hash
                {
                    return pid;
                }
            }
        }
        let pid = self.plains.len();
        self.plains.push(IrPlain {
            values: match self.mode {
                ExtractMode::Full => Some(values.to_vec()),
                ExtractMode::Metadata => None,
            },
            scale,
            len: values.len(),
            hash,
        });
        self.plain_buckets.entry(hash).or_default().push(pid);
        pid
    }

    fn check_scales(a: f64, b: f64) -> Result<(), HisaError> {
        if (a / b - 1.0).abs() < 1e-6 {
            Ok(())
        } else {
            Err(HisaError::ScaleMismatch { left: a, right: b })
        }
    }

    /// Consumes the recorder into a graph. `outputs` / `output_layout` come
    /// from the traced output tensor; the circuit metadata from the caller.
    fn finish(
        self,
        compiled: &CompiledCircuit,
        input_layout: Layout,
        output_layout: Layout,
        output_shape: Vec<usize>,
        outputs: Vec<usize>,
    ) -> IrGraph {
        IrGraph {
            scheme: compiled.params.kind(),
            degree: compiled.params.degree,
            slots: self.slots,
            log_q: if self.rns {
                self.chain_log2.last().copied().unwrap_or(0.0)
            } else {
                self.pow2_log_q
            },
            chain: self.chain,
            keyed_steps: self.keys,
            input_scale: compiled.plan.scales.input,
            input_layout,
            output_layout,
            output_shape,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs,
            plains: self.plains,
            encodes: self.encodes,
        }
    }
}

impl Hisa for TraceInterp {
    type Ct = TraceCt;
    type Pt = TracePt;

    fn slots(&self) -> usize {
        self.slots
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> TracePt {
        self.try_encode(values, scale).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_encode(&mut self, values: &[f64], scale: f64) -> Result<TracePt, HisaError> {
        if values.len() > self.slots {
            return Err(HisaError::SlotOverflow { len: values.len(), slots: self.slots });
        }
        let pid = match self.phase {
            Phase::Input => INPUT_PT,
            Phase::Body => {
                let pid = self.intern_plain(values, scale);
                let span = self.current_span();
                self.encodes.push(EncodeEvent { pt: pid, span });
                pid
            }
        };
        Ok(TracePt { pid, scale })
    }

    fn decode(&mut self, _p: &TracePt) -> Vec<f64> {
        vec![0.0; self.slots]
    }

    fn encrypt(&mut self, p: &TracePt) -> TraceCt {
        let ct = self.inputs.len();
        let level = self.fresh_level();
        let node = self.record(IrOp::Input { ct }, p.scale, level, level);
        self.inputs.push(node.id);
        node
    }

    fn decrypt(&mut self, c: &TraceCt) -> TracePt {
        TracePt { pid: INPUT_PT, scale: c.scale }
    }

    fn rot_left(&mut self, c: &TraceCt, x: usize) -> TraceCt {
        self.try_rot_left(c, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rot_left(&mut self, c: &TraceCt, x: usize) -> Result<TraceCt, HisaError> {
        let step = normalize_rotation(x as i64, self.slots);
        if step == 0 {
            return Ok(c.clone());
        }
        if plan_rotation(step, &self.keys, self.slots).is_none() {
            return Err(HisaError::MissingRotationKey {
                step,
                available: self.keys.iter().copied().collect(),
            });
        }
        Ok(self.record(IrOp::RotLeft { a: c.id, step }, c.scale, c.level, c.level))
    }

    fn rot_right(&mut self, c: &TraceCt, x: usize) -> TraceCt {
        self.try_rot_right(c, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rot_right(&mut self, c: &TraceCt, x: usize) -> Result<TraceCt, HisaError> {
        let step = normalize_rotation(-(x as i64), self.slots);
        self.try_rot_left(c, step)
    }

    fn add(&mut self, a: &TraceCt, b: &TraceCt) -> TraceCt {
        self.try_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add(&mut self, a: &TraceCt, b: &TraceCt) -> Result<TraceCt, HisaError> {
        Self::check_scales(a.scale, b.scale)?;
        let level = Self::meet(a.level, b.level);
        Ok(self.record(IrOp::Add { a: a.id, b: b.id }, a.scale, level, level))
    }

    fn add_plain(&mut self, a: &TraceCt, p: &TracePt) -> TraceCt {
        self.try_add_plain(a, p).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add_plain(&mut self, a: &TraceCt, p: &TracePt) -> Result<TraceCt, HisaError> {
        Self::check_scales(a.scale, p.scale)?;
        Ok(self.record(IrOp::AddPlain { a: a.id, pt: p.pid }, a.scale, a.level, a.level))
    }

    fn add_scalar(&mut self, a: &TraceCt, x: f64) -> TraceCt {
        self.record(IrOp::AddScalar { a: a.id, x }, a.scale, a.level, a.level)
    }

    fn sub(&mut self, a: &TraceCt, b: &TraceCt) -> TraceCt {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_sub(&mut self, a: &TraceCt, b: &TraceCt) -> Result<TraceCt, HisaError> {
        Self::check_scales(a.scale, b.scale)?;
        let level = Self::meet(a.level, b.level);
        Ok(self.record(IrOp::Sub { a: a.id, b: b.id }, a.scale, level, level))
    }

    fn sub_plain(&mut self, a: &TraceCt, p: &TracePt) -> TraceCt {
        self.try_sub_plain(a, p).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_sub_plain(&mut self, a: &TraceCt, p: &TracePt) -> Result<TraceCt, HisaError> {
        Self::check_scales(a.scale, p.scale)?;
        Ok(self.record(IrOp::SubPlain { a: a.id, pt: p.pid }, a.scale, a.level, a.level))
    }

    fn sub_scalar(&mut self, a: &TraceCt, x: f64) -> TraceCt {
        // The reference backend computes sub_scalar as add_scalar(−x).
        self.add_scalar(a, -x)
    }

    fn mul(&mut self, a: &TraceCt, b: &TraceCt) -> TraceCt {
        let level = Self::meet(a.level, b.level);
        self.record(IrOp::Mul { a: a.id, b: b.id }, a.scale * b.scale, level, level)
    }

    fn mul_plain(&mut self, a: &TraceCt, p: &TracePt) -> TraceCt {
        self.record(IrOp::MulPlain { a: a.id, pt: p.pid }, a.scale * p.scale, a.level, a.level)
    }

    fn mul_scalar(&mut self, a: &TraceCt, x: f64, scale: f64) -> TraceCt {
        assert!(scale >= 1.0, "scalar scale must be >= 1");
        self.record(IrOp::MulScalar { a: a.id, x, scale }, a.scale * scale, a.level, a.level)
    }

    fn rescale(&mut self, c: &TraceCt, divisor: f64) -> TraceCt {
        self.try_rescale(c, divisor).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rescale(&mut self, c: &TraceCt, divisor: f64) -> Result<TraceCt, HisaError> {
        if divisor <= 1.0 {
            return Ok(c.clone());
        }
        let result = match c.level {
            Level::Pow2 { log_q } => {
                let consumed = divisor.log2();
                let left = log_q - consumed;
                if left < 1.0 {
                    return Err(HisaError::LevelExhausted {
                        remaining: log_q - 1.0,
                        requested: consumed,
                    });
                }
                Level::Pow2 { log_q: left }
            }
            Level::Chain { level } => {
                let mut lvl = level;
                let mut d = divisor;
                while d > 1.5 {
                    if lvl <= 1 {
                        return Err(HisaError::LevelExhausted {
                            remaining: (level - 1) as f64,
                            requested: (level - lvl + 1) as f64,
                        });
                    }
                    lvl -= 1;
                    d /= self.chain[lvl] as f64;
                }
                Level::Chain { level: lvl }
            }
        };
        Ok(self.record(
            IrOp::Rescale { a: c.id, divisor },
            c.scale / divisor,
            c.level,
            result,
        ))
    }

    fn max_rescale(&mut self, c: &TraceCt, ub: f64) -> f64 {
        if ub < 2.0 {
            return 1.0;
        }
        match c.level {
            Level::Pow2 { log_q } => {
                let k = ub.log2().floor().min(log_q - 1.0);
                if k < 1.0 {
                    1.0
                } else {
                    2f64.powi(k as i32)
                }
            }
            Level::Chain { level } => {
                let mut prod = 1.0f64;
                let mut lvl = level;
                while lvl > 1 {
                    let p = self.chain[lvl - 1] as f64;
                    if prod * p > ub {
                        break;
                    }
                    prod *= p;
                    lvl -= 1;
                }
                prod
            }
        }
    }

    fn scale_of(&self, c: &TraceCt) -> f64 {
        c.scale
    }
}

/// Why extraction failed: the traced execution itself rejected the
/// artifact (the same failures a real run would surface).
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The executor failed while walking the circuit under the recorder.
    Exec(ExecError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Exec(e) => write!(f, "IR extraction failed: {e}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Stamps the recorder's span cell with the executing circuit node.
struct SpanTracker(Arc<Mutex<Option<OpSpan>>>);

impl ExecObserver for SpanTracker {
    fn on_op(&mut self, op_index: usize, op: &str) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = Some(OpSpan::new(op_index, op));
    }
}

/// Extracts the HISA dataflow graph of one inference of `circuit` under
/// `compiled`, by running the standard executor over [`TraceInterp`] with a
/// zero input image (the instruction stream is input-independent — kernels
/// branch on metadata and the decision surface, never on slot values).
pub fn extract_ir(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    mode: ExtractMode,
) -> Result<IrGraph, ExtractError> {
    let Some(input_shape) = circuit.ops().iter().find_map(|op| match op {
        Op::Input { shape } => Some(shape.clone()),
        _ => None,
    }) else {
        return Err(ExtractError::Exec(ExecError::UnsupportedCircuit {
            reason: "circuit has no encrypted input".into(),
        }));
    };
    let mut interp = TraceInterp::new(compiled, mode);
    let image = Tensor::zeros(input_shape);
    let enc = try_encrypt_input(&mut interp, circuit, &compiled.plan, &image)
        .map_err(ExtractError::Exec)?;
    let input_layout = enc.layout.clone();
    interp.begin_body();
    let mut observer = SpanTracker(interp.span_cell());
    let mut ctrl = ExecControl { cancel: None, observer: Some(&mut observer) };
    let (out, _report) =
        try_run_encrypted_with(&mut interp, circuit, &compiled.plan, enc, &mut ctrl)
            .map_err(ExtractError::Exec)?;
    let outputs: Vec<usize> = out.cts.iter().map(|c| c.id).collect();
    let output_layout = out.layout.clone();
    let output_shape = circuit.shapes()[circuit.output()].clone();
    Ok(interp.finish(compiled, input_layout, output_layout, output_shape, outputs))
}

/// Why an IR replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A HISA instruction failed at the given node.
    Hisa {
        /// Failing node id.
        node: usize,
        /// The instruction failure.
        source: HisaError,
    },
    /// The graph is internally inconsistent (or was extracted in
    /// [`ExtractMode::Metadata`], which cannot replay).
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The decrypted output contains non-finite slots (mirrors the direct
    /// executor's precision check).
    NonFinite,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Hisa { node, source } => write!(f, "IR node %{node}: {source}"),
            ReplayError::Malformed { detail } => write!(f, "malformed IR: {detail}"),
            ReplayError::NonFinite => {
                write!(f, "replayed output contains non-finite slots")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays an extracted graph on a concrete backend: encrypts `image`
/// under the recorded layout/scale, interprets the instruction stream, and
/// decrypts the output. On the reference simulator this reproduces direct
/// [`chet_runtime::exec::try_infer`] bit-for-bit — the property
/// [`crate::equiv`] validates.
///
/// Requires an [`ExtractMode::Full`] graph (plaintext values present).
pub fn try_replay_ir<H: Hisa>(
    h: &mut H,
    ir: &IrGraph,
    image: &Tensor,
) -> Result<Tensor, ReplayError> {
    if h.slots() != ir.slots {
        return Err(ReplayError::Malformed {
            detail: format!("backend has {} slots, graph expects {}", h.slots(), ir.slots),
        });
    }
    let enc = try_encrypt_tensor(h, image, &ir.input_layout, ir.input_scale)
        .map_err(|source| ReplayError::Hisa { node: 0, source })?;
    if enc.cts.len() != ir.inputs.len() {
        return Err(ReplayError::Malformed {
            detail: format!(
                "input encrypts to {} ciphertexts, graph recorded {}",
                enc.cts.len(),
                ir.inputs.len()
            ),
        });
    }

    // Last consumer per node, for freeing (graphs run to hundreds of
    // thousands of nodes; holding every intermediate would be quadratic in
    // memory).
    let n = ir.nodes.len();
    let mut last_use = vec![0usize; n];
    for (id, node) in ir.nodes.iter().enumerate() {
        for dep in node.op.operands() {
            last_use[dep] = last_use[dep].max(id);
        }
    }
    for &out in &ir.outputs {
        last_use[out] = n;
    }

    // Encoded-plaintext cache: each pool entry encodes once (encoding is
    // deterministic, so reuse is value-identical to re-encoding).
    let mut plains: Vec<Option<H::Pt>> = (0..ir.plains.len()).map(|_| None).collect();
    let mut values: Vec<Option<H::Ct>> = (0..n).map(|_| None).collect();

    fn operand<C: Clone>(
        values: &[Option<C>],
        id: usize,
        at: usize,
    ) -> Result<C, ReplayError> {
        values.get(id).and_then(|v| v.clone()).ok_or_else(|| ReplayError::Malformed {
            detail: format!("node %{at} references undefined value %{id}"),
        })
    }

    fn plain<'p, H2: Hisa>(
        h: &mut H2,
        ir: &IrGraph,
        plains: &'p mut [Option<H2::Pt>],
        pid: usize,
        at: usize,
    ) -> Result<&'p H2::Pt, ReplayError> {
        if pid >= ir.plains.len() {
            return Err(ReplayError::Malformed {
                detail: format!("node %{at} references undefined plaintext pt[{pid}]"),
            });
        }
        if plains[pid].is_none() {
            let p = &ir.plains[pid];
            let Some(vals) = &p.values else {
                return Err(ReplayError::Malformed {
                    detail: "metadata-only graph (no plaintext values) cannot replay".into(),
                });
            };
            let encoded = h
                .try_encode(vals, p.scale)
                .map_err(|source| ReplayError::Hisa { node: at, source })?;
            plains[pid] = Some(encoded);
        }
        #[allow(clippy::unwrap_used)] // just populated above
        Ok(plains[pid].as_ref().unwrap())
    }

    for (id, node) in ir.nodes.iter().enumerate() {
        let hisa = |source| ReplayError::Hisa { node: id, source };
        let v = match &node.op {
            IrOp::Input { ct } => enc
                .cts
                .get(*ct)
                .cloned()
                .ok_or_else(|| ReplayError::Malformed {
                    detail: format!("node %{id} references missing input ct[{ct}]"),
                })?,
            IrOp::Add { a, b } => {
                let (x, y) = (operand(&values, *a, id)?, operand(&values, *b, id)?);
                h.try_add(&x, &y).map_err(hisa)?
            }
            IrOp::Sub { a, b } => {
                let (x, y) = (operand(&values, *a, id)?, operand(&values, *b, id)?);
                h.try_sub(&x, &y).map_err(hisa)?
            }
            IrOp::Mul { a, b } => {
                let (x, y) = (operand(&values, *a, id)?, operand(&values, *b, id)?);
                h.try_mul(&x, &y).map_err(hisa)?
            }
            IrOp::AddPlain { a, pt } => {
                let x = operand(&values, *a, id)?;
                let p = plain(h, ir, &mut plains, *pt, id)?.clone();
                h.try_add_plain(&x, &p).map_err(hisa)?
            }
            IrOp::SubPlain { a, pt } => {
                let x = operand(&values, *a, id)?;
                let p = plain(h, ir, &mut plains, *pt, id)?.clone();
                h.try_sub_plain(&x, &p).map_err(hisa)?
            }
            IrOp::MulPlain { a, pt } => {
                let x = operand(&values, *a, id)?;
                let p = plain(h, ir, &mut plains, *pt, id)?.clone();
                h.try_mul_plain(&x, &p).map_err(hisa)?
            }
            IrOp::AddScalar { a, x } => {
                let v = operand(&values, *a, id)?;
                h.try_add_scalar(&v, *x).map_err(hisa)?
            }
            IrOp::MulScalar { a, x, scale } => {
                let v = operand(&values, *a, id)?;
                h.try_mul_scalar(&v, *x, *scale).map_err(hisa)?
            }
            IrOp::RotLeft { a, step } => {
                let v = operand(&values, *a, id)?;
                h.try_rot_left(&v, *step).map_err(hisa)?
            }
            IrOp::Rescale { a, divisor } => {
                let v = operand(&values, *a, id)?;
                h.try_rescale(&v, *divisor).map_err(hisa)?
            }
        };
        values[id] = Some(v);
        for dep in ir.nodes[id].op.operands() {
            if last_use[dep] <= id {
                values[dep] = None;
            }
        }
    }

    let mut cts = Vec::with_capacity(ir.outputs.len());
    for &out in &ir.outputs {
        cts.push(values.get(out).and_then(|v| v.clone()).ok_or_else(|| {
            ReplayError::Malformed { detail: format!("output references undefined value %{out}") }
        })?);
    }
    let out = CipherTensor { layout: ir.output_layout.clone(), cts };
    let dec = decrypt_tensor(h, &out);
    if dec.data().iter().any(|v| !v.is_finite()) {
        return Err(ReplayError::NonFinite);
    }
    // The executor's 1-D flattening convention for dense outputs.
    if ir.output_shape.len() == 1 && dec.shape() != &ir.output_shape[..] {
        Ok(dec.reshape(ir.output_shape.clone()))
    } else {
        Ok(dec)
    }
}
