//! The calibrated static cost model over an extracted [`IrGraph`]:
//! per-instruction microsecond predictions from [`chet_hisa::cost`]'s
//! analytic model, summed over the whole instruction stream and attributed
//! back to circuit spans.
//!
//! The analytic model prices one *elementary* HISA op at a given ring
//! degree and modulus state; this pass supplies what only the whole-stream
//! view knows — how many elementary ops one inference actually issues:
//! composed rotations expand to their key-switch plan length, server-side
//! encodes are counted per call (not per interned plaintext), and every
//! instruction is priced at the modulus state it executes under.

use super::{EncodeEvent, IrGraph, IrNode, IrOp};
use crate::verify::OpSpan;
use chet_hisa::cost::{CostModel, HisaOp, LevelInfo};
use chet_hisa::keys::plan_rotation;
use chet_hisa::params::SchemeKind;
use std::collections::{BTreeMap, BTreeSet};

/// Predicted cost of one (op kind, count) bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCost {
    /// The elementary HISA op.
    pub op: HisaOp,
    /// Elementary executions (rotations counted per plan element).
    pub count: u64,
    /// Predicted microseconds across all executions.
    pub us: f64,
}

/// Predicted cost attributed to one circuit node (tensor op).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanCost {
    /// The circuit node, when the work executed under one.
    pub span: Option<OpSpan>,
    /// Elementary HISA executions attributed to the span.
    pub ops: u64,
    /// Predicted microseconds.
    pub us: f64,
}

/// The full latency prediction for one inference of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Total predicted microseconds.
    pub total_us: f64,
    /// Per-elementary-op totals, in [`chet_hisa::cost::ALL_OPS`] order.
    pub by_op: Vec<OpCost>,
    /// Per-circuit-node totals, hottest first.
    pub by_span: Vec<SpanCost>,
}

impl CostBreakdown {
    /// The `k` hottest circuit nodes.
    pub fn hottest(&self, k: usize) -> &[SpanCost] {
        &self.by_span[..k.min(self.by_span.len())]
    }

    /// Renders the breakdown as the `chet-lint --cost` report body.
    pub fn render_text(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("predicted latency: {:.1} us\n", self.total_us));
        out.push_str("per-op breakdown:\n");
        for oc in &self.by_op {
            if oc.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:>10}  x{:<8} {:>12.1} us  ({:>5.1}%)\n",
                oc.op.to_string(),
                oc.count,
                oc.us,
                100.0 * oc.us / self.total_us.max(f64::MIN_POSITIVE),
            ));
        }
        out.push_str(&format!("hottest {} circuit nodes:\n", top.min(self.by_span.len())));
        for sc in self.hottest(top) {
            let span = sc
                .span
                .as_ref()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "(no span)".into());
            out.push_str(&format!(
                "  {:>12.1} us  ({:>5.1}%)  {} HISA ops  at {span}\n",
                sc.us,
                100.0 * sc.us / self.total_us.max(f64::MIN_POSITIVE),
                sc.ops,
            ));
        }
        out
    }
}

/// The elementary op an IR instruction executes as, plus its multiplicity
/// (rotations expand to the key-switch plan the backend would run).
fn elementary(node: &IrNode) -> Option<(HisaOp, u64)> {
    Some(match node.op {
        IrOp::Input { .. } | IrOp::RotLeft { .. } => return None,
        IrOp::Add { .. }
        | IrOp::Sub { .. }
        | IrOp::AddPlain { .. }
        | IrOp::SubPlain { .. }
        | IrOp::AddScalar { .. } => (HisaOp::Add, 1),
        IrOp::Mul { .. } => (HisaOp::MulCipher, 1),
        IrOp::MulPlain { .. } => (HisaOp::MulPlain, 1),
        IrOp::MulScalar { .. } => (HisaOp::MulScalar, 1),
        IrOp::Rescale { .. } => (HisaOp::Rescale, 1),
    })
}

/// Full-chain modulus state (server-side encodes run at the top level).
fn fresh_level(ir: &IrGraph) -> LevelInfo {
    LevelInfo { log_q: ir.log_q, rns_len: ir.chain.len().max(1) }
}

/// Predicts one inference's latency under `model`, with per-op and
/// per-span attribution.
pub fn estimate(ir: &IrGraph, model: &CostModel) -> CostBreakdown {
    let n = ir.degree;
    let mut by_op: BTreeMap<HisaOp, (u64, f64)> = BTreeMap::new();
    // Span buckets keyed by op_index (None = outside any circuit node).
    let mut by_span: BTreeMap<Option<usize>, SpanCost> = BTreeMap::new();
    let mut total = 0.0;

    {
        let mut charge = |op: HisaOp, count: u64, lvl: LevelInfo, span: &Option<OpSpan>| {
            let us = model.op_cost(op, n, lvl) * count as f64;
            total += us;
            let e = by_op.entry(op).or_insert((0, 0.0));
            e.0 += count;
            e.1 += us;
            let key = span.as_ref().map(|s| s.op_index);
            let bucket = by_span
                .entry(key)
                .or_insert_with(|| SpanCost { span: span.clone(), ops: 0, us: 0.0 });
            bucket.ops += count;
            bucket.us += us;
        };

        // Rotation pricing mirrors the RNS backend's hoisted key switching:
        // the runtime kernels batch rotations of one source ciphertext
        // through `rot_left_many`, which computes the gadget decomposition
        // once and reuses it for every rotation in the batch. In the IR
        // those batches appear as multiple `RotLeft` nodes sharing a source
        // id, so the first rotation of each source is priced as a full
        // `Rotate` (it pays the decomposition) and the rest as
        // `RotateHoisted`. Composed multi-hop rotations hoist only their
        // first hop; later hops rotate fresh intermediates at full price.
        let hoisting = model.kind() == SchemeKind::RnsCkks;
        let mut rotated_sources: BTreeSet<usize> = BTreeSet::new();
        for node in &ir.nodes {
            if let IrOp::RotLeft { a, step } = node.op {
                let plan_len = plan_rotation(step, &ir.keyed_steps, ir.slots)
                    .map(|plan| plan.len().max(1))
                    .unwrap_or(1) as u64;
                if hoisting && !rotated_sources.insert(a) {
                    charge(HisaOp::RotateHoisted, 1, node.level, &node.span);
                    if plan_len > 1 {
                        charge(HisaOp::Rotate, plan_len - 1, node.level, &node.span);
                    }
                } else {
                    charge(HisaOp::Rotate, plan_len, node.level, &node.span);
                }
                continue;
            }
            if let Some((op, count)) = elementary(node) {
                charge(op, count, node.level, &node.span);
            }
        }
        let fresh = fresh_level(ir);
        for EncodeEvent { span, .. } in &ir.encodes {
            charge(HisaOp::Encode, 1, fresh, span);
        }
    }

    let by_op = chet_hisa::cost::ALL_OPS
        .iter()
        .map(|&op| {
            let (count, us) = by_op.get(&op).copied().unwrap_or((0, 0.0));
            OpCost { op, count, us }
        })
        .collect();
    let mut by_span: Vec<SpanCost> = by_span.into_values().collect();
    by_span.sort_by(|a, b| b.us.total_cmp(&a.us));
    CostBreakdown { total_us: total, by_op, by_span }
}
