//! The rotation/CSE analyzer: whole-program performance lints over an
//! extracted [`IrGraph`] (the `CHET-P` family).
//!
//! These are exactly the findings §5.1's on-the-fly interpretation cannot
//! make: each needs the *whole* instruction stream at once — duplicate
//! rotations issued by different kernels, common subexpressions across
//! tensor ops, computation that never reaches the output, and keyed steps
//! no instruction requests. All `CHET-P` findings are advisory
//! (warn/note): they flag optimization opportunities, never correctness.
//! They are deliberately kept out of [`crate::verify::verify_compiled`] so
//! the deny-gating surface of the publish path is unchanged.

use super::{IrGraph, IrOp};
use crate::verify::{Diagnostic, LintCode, OpSpan};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Whole-circuit findings over one IR graph, in code order
/// (P001 → P005), deduplicated per (code, span) like the verifier's sink.
pub fn analyze(ir: &IrGraph) -> Vec<Diagnostic> {
    let mut out = Emitter::default();
    duplicate_rotations(ir, &mut out);
    hoistable_rotations(ir, &mut out);
    common_subexpressions(ir, &mut out);
    dead_ciphertexts(ir, &mut out);
    unused_keyed_steps(ir, &mut out);
    out.diags
}

#[derive(Default)]
struct Emitter {
    diags: Vec<Diagnostic>,
    seen: BTreeSet<(&'static str, Option<usize>)>,
}

impl Emitter {
    fn emit(&mut self, code: LintCode, span: Option<OpSpan>, message: String) {
        let key = (code.code(), span.as_ref().map(|s| s.op_index));
        if self.seen.insert(key) {
            self.diags.push(Diagnostic { code, span, message });
        }
    }
}

/// CHET-P001: the same ciphertext rotated by the same step more than once.
/// Every repeat is a full (decompose + key-switch + permute) rotation whose
/// result already exists.
fn duplicate_rotations(ir: &IrGraph, out: &mut Emitter) {
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (id, node) in ir.nodes.iter().enumerate() {
        if let IrOp::RotLeft { a, step } = node.op {
            groups.entry((a, step)).or_default().push(id);
        }
    }
    for ((a, step), nodes) in groups {
        if nodes.len() < 2 {
            continue;
        }
        // Attribute the finding to the first *redundant* occurrence.
        let dup = nodes[1];
        out.emit(
            LintCode::DuplicateRotation,
            ir.nodes[dup].span.clone(),
            format!(
                "ciphertext %{a} is rotated by step {step} {} times ({} redundant \
                 rotation{}); first at %{}, duplicate at %{dup}",
                nodes.len(),
                nodes.len() - 1,
                if nodes.len() > 2 { "s" } else { "" },
                nodes[0],
            ),
        );
    }
}

/// CHET-P002: one ciphertext rotated by several distinct steps. Each
/// rotation repeats the same key-switch decomposition of the source; a
/// hoisting rewrite (decompose once, apply every step to the shared
/// decomposition) would pay it once.
fn hoistable_rotations(ir: &IrGraph, out: &mut Emitter) {
    let mut steps_by_src: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut first_rot: BTreeMap<usize, usize> = BTreeMap::new();
    for (id, node) in ir.nodes.iter().enumerate() {
        if let IrOp::RotLeft { a, step } = node.op {
            steps_by_src.entry(a).or_default().insert(step);
            first_rot.entry(a).or_insert(id);
        }
    }
    for (src, steps) in steps_by_src {
        if steps.len() < 2 {
            continue;
        }
        let at = first_rot[&src];
        let preview: Vec<String> = steps.iter().take(6).map(|s| s.to_string()).collect();
        out.emit(
            LintCode::HoistableRotation,
            ir.nodes[at].span.clone(),
            format!(
                "ciphertext %{src} is rotated by {} distinct steps ({}{}); the \
                 key-switch decomposition can be hoisted and shared across them",
                steps.len(),
                preview.join(", "),
                if steps.len() > 6 { ", …" } else { "" },
            ),
        );
    }
}

/// A structural key identifying an instruction's value: opcode, operand
/// ids, and immediate bit patterns. Two nodes with equal keys compute the
/// same ciphertext (SSA ids are stable, encodes are interned by content).
fn value_key(op: &IrOp) -> Option<(u8, usize, usize, u64, u64)> {
    Some(match *op {
        // Inputs are definitions, rotations are P001's business.
        IrOp::Input { .. } | IrOp::RotLeft { .. } => return None,
        IrOp::Add { a, b } => (1, a.min(b), a.max(b), 0, 0),
        IrOp::Sub { a, b } => (2, a, b, 0, 0),
        IrOp::Mul { a, b } => (3, a.min(b), a.max(b), 0, 0),
        IrOp::AddPlain { a, pt } => (4, a, pt, 0, 0),
        IrOp::SubPlain { a, pt } => (5, a, pt, 0, 0),
        IrOp::MulPlain { a, pt } => (6, a, pt, 0, 0),
        IrOp::AddScalar { a, x } => (7, a, 0, x.to_bits(), 0),
        IrOp::MulScalar { a, x, scale } => (8, a, 0, x.to_bits(), scale.to_bits()),
        IrOp::Rescale { a, divisor } => (9, a, 0, divisor.to_bits(), 0),
    })
}

/// CHET-P003: two identical instructions (same opcode, operands and
/// immediates) — the second is a common subexpression a rewriter could
/// replace with the first's result.
fn common_subexpressions(ir: &IrGraph, out: &mut Emitter) {
    let mut seen: HashMap<(u8, usize, usize, u64, u64), usize> = HashMap::new();
    for (id, node) in ir.nodes.iter().enumerate() {
        let Some(key) = value_key(&node.op) else { continue };
        match seen.get(&key) {
            None => {
                seen.insert(key, id);
            }
            Some(&first) => {
                out.emit(
                    LintCode::CommonSubexpression,
                    node.span.clone(),
                    format!(
                        "%{id} recomputes {} already produced by %{first}",
                        node.op.mnemonic(),
                    ),
                );
            }
        }
    }
}

/// CHET-P004: instructions whose results never reach an output ciphertext.
fn dead_ciphertexts(ir: &IrGraph, out: &mut Emitter) {
    let live = ir.live_nodes();
    let dead: Vec<usize> = (0..ir.nodes.len()).filter(|&id| !live[id]).collect();
    if dead.is_empty() {
        return;
    }
    // One finding per span (kernel site), carrying the count.
    let mut by_span: BTreeMap<Option<usize>, (Option<OpSpan>, usize, usize)> = BTreeMap::new();
    for &id in &dead {
        let span = ir.nodes[id].span.clone();
        let key = span.as_ref().map(|s| s.op_index);
        let entry = by_span.entry(key).or_insert((span, 0, id));
        entry.1 += 1;
    }
    for (_, (span, count, first)) in by_span {
        out.emit(
            LintCode::DeadCiphertext,
            span,
            format!(
                "{count} HISA instruction{} (first: %{first}) never reach the output",
                if count > 1 { "s" } else { "" },
            ),
        );
    }
}

/// CHET-P005: keyed rotation steps the instruction stream never requests,
/// directly or through composition. Complements the verifier's CHET-W002
/// (which audits the analysis outcome, not the realized trace).
fn unused_keyed_steps(ir: &IrGraph, out: &mut Emitter) {
    let requested = ir.requested_rotations();
    // Steps consumed by composing un-keyed requests also count as used.
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for step in requested {
        match chet_hisa::keys::plan_rotation(step, &ir.keyed_steps, ir.slots) {
            Some(plan) => used.extend(plan),
            None => {
                used.insert(step);
            }
        }
    }
    let unused: Vec<usize> = ir.keyed_steps.difference(&used).copied().collect();
    if unused.is_empty() {
        return;
    }
    let preview: Vec<String> = unused.iter().take(8).map(|s| s.to_string()).collect();
    out.emit(
        LintCode::UnusedKeyedStep,
        None,
        format!(
            "{} rotation key{} never used by the instruction stream (steps {}{})",
            unused.len(),
            if unused.len() > 1 { "s are" } else { " is" },
            preview.join(", "),
            if unused.len() > 8 { ", …" } else { "" },
        ),
    );
}
