//! The data-flow analysis interpreter (paper §5.1).
//!
//! CHET analyses circuits *without building a data-flow graph*: it executes
//! the homomorphic tensor circuit under a different interpretation of the
//! ciphertext datatype. [`Analyzer`] is that interpretation — an
//! implementation of [`Hisa`] whose "ciphertexts" carry data-flow facts:
//!
//! * the fixed-point **scale** and the **modulus consumed** by rescaling
//!   (→ encryption-parameter selection, §5.2),
//! * the set of **rotation steps** requested (→ rotation-key selection,
//!   §5.4),
//! * accumulated **cost** under the Table 1 cost model (→ data-layout
//!   selection, §5.3), plus per-op counters.
//!
//! Rescaling semantics mirror the target variant exactly: powers of two for
//! CKKS, prefixes of a pre-generated candidate prime list for RNS-CKKS
//! (paper's footnote: "a list of 60-bit primes distributed in SEAL" — here
//! the compiler sizes candidates to the working scale).

use chet_hisa::cost::{CostModel, HisaOp, LevelInfo};
use chet_hisa::keys::normalize_rotation;
use chet_hisa::Hisa;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// How `max_rescale`/`rescale` behave during analysis.
#[derive(Debug, Clone)]
pub enum RescaleModel {
    /// CKKS: any power of two divides.
    PowerOfTwo,
    /// RNS-CKKS: divisors are products of the next candidate primes.
    Chain(Arc<Vec<u64>>),
}

/// Abstract ciphertext: scale + modulus consumption state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ACt {
    /// Current fixed-point scale.
    pub scale: f64,
    /// log2 of the modulus consumed so far on this value's path.
    pub consumed_log2: f64,
    /// Number of candidate chain primes consumed (RNS only).
    pub chain_idx: usize,
}

/// Abstract plaintext: just a scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct APt {
    /// Fixed-point scale the plaintext was encoded at.
    pub scale: f64,
}

/// The analysis backend. Construct with [`Analyzer::new`], execute the
/// circuit against it (via `chet_runtime::exec::run_encrypted` — kernels
/// are generic over `Hisa`), then read the accumulated facts.
#[derive(Debug)]
pub struct Analyzer {
    slots: usize,
    model: RescaleModel,
    /// Cost model + ring degree + initial modulus state for the cost pass
    /// (`None` during the parameter-selection pass, when `Q` is unknown).
    cost: Option<(CostModel, usize, LevelInfo)>,
    /// All rotation steps requested by the circuit (normalized left steps).
    pub rotations: BTreeSet<usize>,
    /// Total estimated cost (cost pass only).
    pub total_cost: f64,
    /// Largest modulus consumption seen on any value.
    pub max_consumed_log2: f64,
    /// Largest candidate-prime count consumed (RNS).
    pub max_chain_idx: usize,
    /// Scale of the most recently produced ciphertext (the circuit output
    /// once execution finishes).
    pub last_scale: f64,
    /// Per-op execution counts.
    pub op_counts: HashMap<HisaOp, u64>,
}

impl Analyzer {
    /// Analysis interpreter for the parameter/rotation passes (no cost).
    pub fn new(slots: usize, model: RescaleModel) -> Self {
        Analyzer {
            slots,
            model,
            cost: None,
            rotations: BTreeSet::new(),
            total_cost: 0.0,
            max_consumed_log2: 0.0,
            max_chain_idx: 0,
            last_scale: 1.0,
            op_counts: HashMap::new(),
        }
    }

    /// Enables cost accounting against a model, ring degree and the chosen
    /// initial modulus (remaining `log Q` / chain length).
    pub fn with_cost(mut self, model: CostModel, degree: usize, initial: LevelInfo) -> Self {
        self.cost = Some((model, degree, initial));
        self
    }

    fn track(&mut self, ct: &ACt) -> ACt {
        self.max_consumed_log2 = self.max_consumed_log2.max(ct.consumed_log2);
        self.max_chain_idx = self.max_chain_idx.max(ct.chain_idx);
        self.last_scale = ct.scale;
        *ct
    }

    fn charge(&mut self, op: HisaOp, at: &ACt) {
        *self.op_counts.entry(op).or_insert(0) += 1;
        if let Some((model, degree, initial)) = &self.cost {
            let lvl = LevelInfo {
                log_q: (initial.log_q - at.consumed_log2).max(1.0),
                rns_len: initial.rns_len.saturating_sub(at.chain_idx).max(1),
            };
            self.total_cost += model.op_cost(op, *degree, lvl);
        }
    }

    fn meet(a: &ACt, b: &ACt) -> ACt {
        ACt {
            scale: a.scale,
            consumed_log2: a.consumed_log2.max(b.consumed_log2),
            chain_idx: a.chain_idx.max(b.chain_idx),
        }
    }
}

impl Hisa for Analyzer {
    type Ct = ACt;
    type Pt = APt;

    fn slots(&self) -> usize {
        self.slots
    }

    fn encode(&mut self, _values: &[f64], scale: f64) -> APt {
        APt { scale }
    }

    fn decode(&mut self, _p: &APt) -> Vec<f64> {
        vec![0.0; self.slots]
    }

    fn encrypt(&mut self, p: &APt) -> ACt {
        let ct = ACt { scale: p.scale, consumed_log2: 0.0, chain_idx: 0 };
        self.track(&ct)
    }

    fn decrypt(&mut self, c: &ACt) -> APt {
        APt { scale: c.scale }
    }

    fn rot_left(&mut self, c: &ACt, x: usize) -> ACt {
        let step = normalize_rotation(x as i64, self.slots);
        if step != 0 {
            self.rotations.insert(step);
            self.charge(HisaOp::Rotate, c);
        }
        self.track(c)
    }

    fn rot_right(&mut self, c: &ACt, x: usize) -> ACt {
        let step = normalize_rotation(-(x as i64), self.slots);
        if step != 0 {
            self.rotations.insert(step);
            self.charge(HisaOp::Rotate, c);
        }
        self.track(c)
    }

    fn add(&mut self, a: &ACt, b: &ACt) -> ACt {
        self.charge(HisaOp::Add, a);
        let m = Self::meet(a, b);
        self.track(&m)
    }

    fn add_plain(&mut self, a: &ACt, _p: &APt) -> ACt {
        self.charge(HisaOp::Add, a);
        self.track(a)
    }

    fn add_scalar(&mut self, a: &ACt, _x: f64) -> ACt {
        self.charge(HisaOp::Add, a);
        self.track(a)
    }

    fn sub(&mut self, a: &ACt, b: &ACt) -> ACt {
        self.add(a, b)
    }

    fn sub_plain(&mut self, a: &ACt, p: &APt) -> ACt {
        self.add_plain(a, p)
    }

    fn sub_scalar(&mut self, a: &ACt, x: f64) -> ACt {
        self.add_scalar(a, x)
    }

    fn mul(&mut self, a: &ACt, b: &ACt) -> ACt {
        self.charge(HisaOp::MulCipher, a);
        let mut m = Self::meet(a, b);
        m.scale = a.scale * b.scale;
        self.track(&m)
    }

    fn mul_plain(&mut self, a: &ACt, p: &APt) -> ACt {
        self.charge(HisaOp::MulPlain, a);
        let m = ACt { scale: a.scale * p.scale, ..*a };
        self.track(&m)
    }

    fn mul_scalar(&mut self, a: &ACt, _x: f64, scale: f64) -> ACt {
        self.charge(HisaOp::MulScalar, a);
        let m = ACt { scale: a.scale * scale, ..*a };
        self.track(&m)
    }

    fn rescale(&mut self, c: &ACt, divisor: f64) -> ACt {
        if divisor <= 1.0 {
            return self.track(c);
        }
        self.charge(HisaOp::Rescale, c);
        let mut out = *c;
        out.scale /= divisor;
        out.consumed_log2 += divisor.log2();
        if let RescaleModel::Chain(primes) = &self.model {
            let mut d = divisor;
            while d > 1.5 {
                // Invariant: `candidate_primes` sizes the list well beyond
                // any circuit depth parameter selection accepts.
                #[allow(clippy::expect_used)]
                let p = *primes
                    .get(out.chain_idx)
                    .expect("candidate prime list exhausted; enlarge it");
                d /= p as f64;
                out.chain_idx += 1;
            }
        }
        self.track(&out)
    }

    fn max_rescale(&mut self, c: &ACt, ub: f64) -> f64 {
        if ub < 2.0 {
            return 1.0;
        }
        match &self.model {
            // The analysis computes the required Q, so the remaining-modulus
            // restriction of a live scheme does not apply here.
            RescaleModel::PowerOfTwo => 2f64.powi(ub.log2().floor() as i32),
            RescaleModel::Chain(primes) => {
                let mut prod = 1.0f64;
                let mut idx = c.chain_idx;
                while let Some(&p) = primes.get(idx) {
                    if prod * p as f64 > ub {
                        break;
                    }
                    prod *= p as f64;
                    idx += 1;
                }
                prod
            }
        }
    }

    fn scale_of(&self, c: &ACt) -> f64 {
        c.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_hisa::params::SchemeKind;

    fn chain() -> Arc<Vec<u64>> {
        Arc::new(chet_math::prime::ntt_primes(40, 65536, 8))
    }

    #[test]
    fn modulus_consumption_tracks_rescales() {
        let mut a = Analyzer::new(4096, RescaleModel::PowerOfTwo);
        let pt = a.encode(&[], 2f64.powi(30));
        let ct = a.encrypt(&pt);
        let prod = a.mul_scalar(&ct, 2.0, 2f64.powi(15));
        let d = a.max_rescale(&prod, 2f64.powi(15));
        assert_eq!(d, 2f64.powi(15));
        let out = a.rescale(&prod, d);
        assert_eq!(out.consumed_log2, 15.0);
        assert_eq!(a.max_consumed_log2, 15.0);
    }

    #[test]
    fn chain_model_consumes_candidates() {
        let primes = chain();
        let p0 = primes[0] as f64;
        let mut a = Analyzer::new(4096, RescaleModel::Chain(primes));
        let pt = a.encode(&[], 2f64.powi(30));
        let ct = a.encrypt(&pt);
        let prod = a.mul_plain(&ct, &APt { scale: 2f64.powi(30) });
        // ub 2^45 fits exactly one ~40-bit candidate.
        let d = a.max_rescale(&prod, 2f64.powi(45));
        assert_eq!(d, p0);
        let out = a.rescale(&prod, d);
        assert_eq!(out.chain_idx, 1);
        assert_eq!(a.max_chain_idx, 1);
    }

    #[test]
    fn rotations_are_recorded_normalized() {
        let mut a = Analyzer::new(64, RescaleModel::PowerOfTwo);
        let ct = ACt { scale: 1.0, consumed_log2: 0.0, chain_idx: 0 };
        a.rot_left(&ct, 5);
        a.rot_right(&ct, 3);
        a.rot_left(&ct, 64); // full turn: no key needed
        let steps: Vec<usize> = a.rotations.iter().copied().collect();
        assert_eq!(steps, vec![5, 61]);
    }

    #[test]
    fn cost_grows_with_lower_levels_in_rns() {
        let model = CostModel::for_scheme(SchemeKind::RnsCkks);
        let mut a = Analyzer::new(4096, RescaleModel::Chain(chain()))
            .with_cost(model, 8192, LevelInfo { log_q: 240.0, rns_len: 6 });
        let fresh = ACt { scale: 2f64.powi(30), consumed_log2: 0.0, chain_idx: 0 };
        a.mul(&fresh, &fresh);
        let hi = a.total_cost;
        a.total_cost = 0.0;
        let deep = ACt { scale: 2f64.powi(30), consumed_log2: 160.0, chain_idx: 4 };
        a.mul(&deep, &deep);
        assert!(a.total_cost < hi, "ops at lower levels must be cheaper");
    }

    #[test]
    fn meet_takes_worst_consumption() {
        let a = ACt { scale: 1.0, consumed_log2: 30.0, chain_idx: 1 };
        let b = ACt { scale: 1.0, consumed_log2: 45.0, chain_idx: 2 };
        let m = Analyzer::meet(&a, &b);
        assert_eq!(m.consumed_log2, 45.0);
        assert_eq!(m.chain_idx, 2);
    }

    #[test]
    fn op_counts_accumulate() {
        let mut a = Analyzer::new(64, RescaleModel::PowerOfTwo);
        let ct = ACt { scale: 4.0, consumed_log2: 0.0, chain_idx: 0 };
        a.add(&ct, &ct);
        a.add(&ct, &ct);
        a.mul(&ct, &ct);
        assert_eq!(a.op_counts[&HisaOp::Add], 2);
        assert_eq!(a.op_counts[&HisaOp::MulCipher], 1);
    }
}
