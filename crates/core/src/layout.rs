//! Data-layout selection (paper §5.3).
//!
//! CHET prunes the exponential layout space to four policies with
//! domain-specific heuristics, prices each with the cost model, and keeps
//! the cheapest.

use crate::analysis::{Analyzer, RescaleModel};
use crate::params::{
    candidate_primes, select_parameters_with_margin, AnalysisOutcome, SelectError,
};
use chet_hisa::cost::{CostModel, LevelInfo};
use chet_hisa::params::SchemeKind;
use chet_hisa::security::SecurityLevel;
use chet_runtime::exec::{encrypt_input, required_margin_for, run_encrypted, ExecPlan};
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::layout::LayoutKind;
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The four pruned layout policies (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutPolicy {
    /// Every tensor in HW.
    Hw,
    /// Every tensor in CHW.
    Chw,
    /// Convolutions (and their producers) in HW, everything else in CHW.
    HwConvChwRest,
    /// HW until the first fully connected layer, CHW afterwards.
    ChwFcHwBefore,
}

/// All four policies, in the paper's order.
pub const ALL_POLICIES: [LayoutPolicy; 4] = [
    LayoutPolicy::Hw,
    LayoutPolicy::Chw,
    LayoutPolicy::HwConvChwRest,
    LayoutPolicy::ChwFcHwBefore,
];

impl std::fmt::Display for LayoutPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayoutPolicy::Hw => "HW",
            LayoutPolicy::Chw => "CHW",
            LayoutPolicy::HwConvChwRest => "HW-conv, CHW-rest",
            LayoutPolicy::ChwFcHwBefore => "CHW-fc, HW-before",
        };
        f.write_str(s)
    }
}

/// Expands a policy into a per-node layout assignment.
pub fn policy_layouts(circuit: &Circuit, policy: LayoutPolicy) -> Vec<LayoutKind> {
    let n = circuit.ops().len();
    match policy {
        LayoutPolicy::Hw => vec![LayoutKind::HW; n],
        LayoutPolicy::Chw => vec![LayoutKind::CHW; n],
        LayoutPolicy::HwConvChwRest => {
            let mut kinds = vec![LayoutKind::CHW; n];
            // Convs and every node feeding a conv run in HW, so the conv
            // sees HW inputs and emits HW outputs.
            for (i, op) in circuit.ops().iter().enumerate() {
                if let Op::Conv2d { input, .. } = op {
                    kinds[i] = LayoutKind::HW;
                    kinds[*input] = LayoutKind::HW;
                }
            }
            kinds
        }
        LayoutPolicy::ChwFcHwBefore => {
            let first_fc = circuit
                .ops()
                .iter()
                .position(|op| matches!(op, Op::MatMul { .. }))
                .unwrap_or(n);
            (0..n)
                .map(|i| if i < first_fc { LayoutKind::HW } else { LayoutKind::CHW })
                .collect()
        }
    }
}

/// A fully priced layout choice.
#[derive(Debug, Clone)]
pub struct LayoutChoice {
    /// The policy this choice came from.
    pub policy: LayoutPolicy,
    /// The executable plan (layouts + scales + margin).
    pub plan: ExecPlan,
    /// The analysis outcome (parameters, rotations, consumption).
    pub outcome: AnalysisOutcome,
    /// Estimated execution cost under the scheme's cost model.
    pub estimated_cost: f64,
}

/// Estimates the cost of executing a circuit under a plan at the given
/// parameters (paper §5.3's cost-estimation pass).
pub fn estimate_cost(
    circuit: &Circuit,
    plan: &ExecPlan,
    outcome: &AnalysisOutcome,
    cost_model: &CostModel,
) -> f64 {
    let params = &outcome.params;
    let slots = params.slots();
    let model = match params.kind() {
        SchemeKind::Ckks => RescaleModel::PowerOfTwo,
        SchemeKind::RnsCkks => RescaleModel::Chain(candidate_primes(&plan.scales)),
    };
    let initial = LevelInfo {
        log_q: params.modulus.log_q(),
        rns_len: params.modulus.chain_len(),
    };
    let mut az =
        Analyzer::new(slots, model).with_cost(cost_model.clone(), params.degree, initial);
    // Invariant: CircuitBuilder cannot produce an input-free circuit.
    #[allow(clippy::expect_used)]
    let input_shape = circuit
        .ops()
        .iter()
        .find_map(|op| match op {
            Op::Input { shape } => Some(shape.clone()),
            _ => None,
        })
        .expect("circuit has an input");
    let image = Tensor::zeros(input_shape);
    let enc = encrypt_input(&mut az, circuit, plan, &image);
    let _ = run_encrypted(&mut az, circuit, plan, enc);
    az.total_cost
}

/// Searches the four layout policies and returns each priced choice,
/// cheapest first (paper §5.3: two passes per choice — parameter selection
/// then cost estimation).
///
/// # Errors
///
/// Returns an error if no policy admits valid encryption parameters.
pub fn enumerate_layouts(
    circuit: &Circuit,
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    cost_model: &CostModel,
) -> Result<Vec<LayoutChoice>, SelectError> {
    enumerate_layouts_with_margin(
        circuit,
        scales,
        kind,
        security,
        output_precision,
        cost_model,
        0,
    )
}

/// [`enumerate_layouts`] with `extra_levels` spare rescaling levels per
/// candidate (see `select_parameters_with_margin`).
#[allow(clippy::too_many_arguments)]
pub fn enumerate_layouts_with_margin(
    circuit: &Circuit,
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    cost_model: &CostModel,
    extra_levels: usize,
) -> Result<Vec<LayoutChoice>, SelectError> {
    let margin = required_margin_for(circuit);
    let mut choices = Vec::new();
    for policy in ALL_POLICIES {
        let layouts = policy_layouts(circuit, policy);
        let outcome = match select_parameters_with_margin(
            circuit,
            &layouts,
            scales,
            kind,
            security,
            output_precision,
            extra_levels,
        ) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let plan = ExecPlan { layouts, scales: *scales, margin };
        let estimated_cost = estimate_cost(circuit, &plan, &outcome, cost_model);
        choices.push(LayoutChoice { policy, plan, outcome, estimated_cost });
    }
    if choices.is_empty() {
        return Err(SelectError::NoLayout);
    }
    // Invariant: cost estimates are sums of finite model constants.
    #[allow(clippy::expect_used)]
    choices.sort_by(|a, b| {
        a.estimated_cost.partial_cmp(&b.estimated_cost).expect("costs are finite")
    });
    Ok(choices)
}

/// Picks the cheapest layout policy (the paper's data-layout selection).
///
/// # Errors
///
/// Propagates [`enumerate_layouts`] failures.
pub fn select_data_layout(
    circuit: &Circuit,
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    cost_model: &CostModel,
) -> Result<LayoutChoice, SelectError> {
    select_data_layout_with_margin(
        circuit,
        scales,
        kind,
        security,
        output_precision,
        cost_model,
        0,
    )
}

/// [`select_data_layout`] with `extra_levels` spare rescaling levels (the
/// repair loop's level-exhaustion knob).
#[allow(clippy::too_many_arguments)]
pub fn select_data_layout_with_margin(
    circuit: &Circuit,
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    cost_model: &CostModel,
    extra_levels: usize,
) -> Result<LayoutChoice, SelectError> {
    Ok(enumerate_layouts_with_margin(
        circuit,
        scales,
        kind,
        security,
        output_precision,
        cost_model,
        extra_levels,
    )?
    .remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;

    fn cnn(channels: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![channels, 12, 12]);
        let w1 = Tensor::from_fn(vec![4, channels, 3, 3], |_| 0.1);
        let c1 = b.conv2d(x, w1, None, 1, Padding::Valid);
        let a1 = b.activation(c1, 0.2, 0.9);
        let p1 = b.avg_pool2d(a1, 2, 2);
        let w2 = Tensor::from_fn(vec![4, 4, 3, 3], |_| 0.05);
        let c2 = b.conv2d(p1, w2, None, 1, Padding::Valid);
        let f = b.flatten(c2);
        let wfc = Tensor::from_fn(vec![5, 4 * 3 * 3], |_| 0.1);
        let m = b.matmul(f, wfc, None);
        b.build(m)
    }

    #[test]
    fn policies_expand_as_expected() {
        let c = cnn(2);
        let hw = policy_layouts(&c, LayoutPolicy::Hw);
        assert!(hw.iter().all(|&k| k == LayoutKind::HW));
        let chw = policy_layouts(&c, LayoutPolicy::Chw);
        assert!(chw.iter().all(|&k| k == LayoutKind::CHW));
        let hybrid = policy_layouts(&c, LayoutPolicy::HwConvChwRest);
        assert!(hybrid.contains(&LayoutKind::HW) && hybrid.contains(&LayoutKind::CHW));
        let fc = policy_layouts(&c, LayoutPolicy::ChwFcHwBefore);
        let first_fc = c.ops().iter().position(|op| matches!(op, Op::MatMul { .. })).unwrap();
        assert!(fc[..first_fc].iter().all(|&k| k == LayoutKind::HW));
        assert!(fc[first_fc..].iter().all(|&k| k == LayoutKind::CHW));
    }

    #[test]
    fn enumerates_and_ranks_all_policies() {
        let c = cnn(2);
        let choices = enumerate_layouts(
            &c,
            &ScaleConfig::default(),
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(30),
            &CostModel::for_scheme(SchemeKind::RnsCkks),
        )
        .unwrap();
        assert_eq!(choices.len(), 4);
        for w in choices.windows(2) {
            assert!(w[0].estimated_cost <= w[1].estimated_cost);
        }
    }

    #[test]
    fn best_choice_has_positive_cost_and_valid_params() {
        let c = cnn(2);
        let best = select_data_layout(
            &c,
            &ScaleConfig::default(),
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(30),
            &CostModel::for_scheme(SchemeKind::RnsCkks),
        )
        .unwrap();
        assert!(best.estimated_cost > 0.0);
        assert!(best.outcome.params.validate().is_ok());
    }

    #[test]
    fn chw_beats_hw_on_many_channels_rns() {
        // With many channels, HW pays C·R·S rotations per conv while CHW
        // shares them — the cost model must reflect that (paper Table 5).
        let c = cnn(8);
        let choices = enumerate_layouts(
            &c,
            &ScaleConfig::default(),
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(30),
            &CostModel::for_scheme(SchemeKind::RnsCkks),
        )
        .unwrap();
        let cost_of = |p: LayoutPolicy| {
            choices.iter().find(|ch| ch.policy == p).map(|ch| ch.estimated_cost).unwrap()
        };
        assert!(
            cost_of(LayoutPolicy::Chw) < cost_of(LayoutPolicy::Hw),
            "CHW should win on channel-heavy nets under RNS-CKKS"
        );
    }
}
