//! The fixpoint-free forward walker: a [`Hisa`] interpretation whose
//! ciphertexts carry abstract-domain facts.
//!
//! This is the paper's §5.1 trick turned into a verifier: the circuit
//! executes through the *standard* runtime executor and kernels, but every
//! HISA instruction becomes a domain transfer instead of ring arithmetic.
//! The interpretation is infallible — contract violations surface as
//! diagnostics in the shared [`DiagSink`], stamped with the executing
//! node's span by the executor observer — so one walk covers the whole
//! circuit no matter how broken the artifact is.

use super::domain::{
    AbstractDomain, AbstractOp, LevelDomain, RotationDomain, ScaleDomain, SlotDomain,
};
use super::{DiagSink, LintCode};
use crate::compiler::CompiledCircuit;
use chet_hisa::keys::normalize_rotation;
use chet_hisa::Hisa;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Abstract ciphertext: the product-domain fact.
#[derive(Debug, Clone)]
pub struct VCt<F> {
    /// The domain fact for this value.
    pub fact: F,
}

/// Abstract plaintext: encoding scale + encoded length.
#[derive(Debug, Clone, Copy)]
pub struct VPt {
    /// Fixed-point scale the plaintext was encoded at.
    pub scale: f64,
    /// Number of values encoded.
    pub len: usize,
}

/// The verifier's domain stack: scales × levels × slots × rotations.
pub type StandardDomain = ((ScaleDomain, LevelDomain), (SlotDomain, RotationDomain));

/// The verifying interpretation of the HISA over a pluggable domain.
pub struct VerifyInterp<D: AbstractDomain> {
    slots: usize,
    /// The domain under interpretation (public so callers can read
    /// accumulated facts after the walk).
    pub domain: D,
    sink: Arc<Mutex<DiagSink>>,
}

impl VerifyInterp<StandardDomain> {
    /// The standard verifier stack for a compiled artifact.
    pub fn new(compiled: &CompiledCircuit, sink: Arc<Mutex<DiagSink>>) -> Self {
        let slots = compiled.params.slots();
        let domain = (
            (
                ScaleDomain::new(compiled.plan.scales.input),
                LevelDomain::new(&compiled.params.modulus),
            ),
            (
                SlotDomain::new(slots),
                RotationDomain::new(slots, compiled.rotation_keys.steps(slots)),
            ),
        );
        VerifyInterp { slots, domain, sink }
    }

    /// Rotation steps the walked trace requested (feeds the `CHET-W002`
    /// unused-key audit).
    pub fn used_rotations(&self) -> BTreeSet<usize> {
        self.domain.1 .1.used.clone()
    }
}

impl<D: AbstractDomain> VerifyInterp<D> {
    /// A custom-domain walker (for tests or additional lint stacks).
    pub fn with_domain(slots: usize, domain: D, sink: Arc<Mutex<DiagSink>>) -> Self {
        VerifyInterp { slots, domain, sink }
    }

    /// The scale the domain tracks for a ciphertext (`1.0` when no domain
    /// in the stack models scales).
    pub fn fact_scale(&self, c: &VCt<D::Fact>) -> f64 {
        self.domain.scale_of(&c.fact).unwrap_or(1.0)
    }

    fn step(&mut self, op: AbstractOp, a: &VCt<D::Fact>, b: Option<&VCt<D::Fact>>) -> VCt<D::Fact> {
        // Disjoint field borrows: the domain mutates while emitting into
        // the shared sink (which the executor observer stamps with spans).
        let sink = &self.sink;
        let mut emit = |code: LintCode, msg: String| {
            sink.lock().unwrap_or_else(|e| e.into_inner()).emit(code, msg)
        };
        VCt { fact: self.domain.transfer(&op, &a.fact, b.map(|x| &x.fact), &mut emit) }
    }

    fn rotate(&mut self, c: &VCt<D::Fact>, signed_step: i64) -> VCt<D::Fact> {
        let step = normalize_rotation(signed_step, self.slots);
        if step == 0 {
            return c.clone();
        }
        self.step(AbstractOp::Rotate { step }, c, None)
    }
}

impl<D: AbstractDomain> Hisa for VerifyInterp<D> {
    type Ct = VCt<D::Fact>;
    type Pt = VPt;

    fn slots(&self) -> usize {
        self.slots
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> VPt {
        if values.len() > self.slots {
            self.sink.lock().unwrap_or_else(|e| e.into_inner()).emit(
                LintCode::SlotOverflow,
                format!("encoding {} values into {} slots", values.len(), self.slots),
            );
        }
        VPt { scale, len: values.len().min(self.slots) }
    }

    fn decode(&mut self, _p: &VPt) -> Vec<f64> {
        vec![0.0; self.slots]
    }

    fn encrypt(&mut self, p: &VPt) -> Self::Ct {
        VCt { fact: self.domain.fresh(p.scale, p.len) }
    }

    fn decrypt(&mut self, c: &Self::Ct) -> VPt {
        VPt { scale: self.fact_scale(c), len: self.slots }
    }

    fn rot_left(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.rotate(c, x as i64)
    }

    fn rot_right(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.rotate(c, -(x as i64))
    }

    fn add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.step(AbstractOp::Add, a, Some(b))
    }

    fn add_plain(&mut self, a: &Self::Ct, p: &VPt) -> Self::Ct {
        self.step(AbstractOp::AddPlain { scale: p.scale }, a, None)
    }

    fn add_scalar(&mut self, a: &Self::Ct, _x: f64) -> Self::Ct {
        self.step(AbstractOp::AddScalar, a, None)
    }

    fn sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.step(AbstractOp::Add, a, Some(b))
    }

    fn sub_plain(&mut self, a: &Self::Ct, p: &VPt) -> Self::Ct {
        self.step(AbstractOp::AddPlain { scale: p.scale }, a, None)
    }

    fn sub_scalar(&mut self, a: &Self::Ct, _x: f64) -> Self::Ct {
        self.step(AbstractOp::AddScalar, a, None)
    }

    fn mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.step(AbstractOp::Mul, a, Some(b))
    }

    fn mul_plain(&mut self, a: &Self::Ct, p: &VPt) -> Self::Ct {
        self.step(AbstractOp::MulPlain { scale: p.scale }, a, None)
    }

    fn mul_scalar(&mut self, a: &Self::Ct, _x: f64, scale: f64) -> Self::Ct {
        self.step(AbstractOp::MulScalar { scale }, a, None)
    }

    fn rescale(&mut self, c: &Self::Ct, divisor: f64) -> Self::Ct {
        if divisor <= 1.0 {
            return c.clone();
        }
        self.step(AbstractOp::Rescale { divisor }, c, None)
    }

    fn max_rescale(&mut self, c: &Self::Ct, ub: f64) -> f64 {
        if ub < 2.0 {
            return 1.0;
        }
        self.domain
            .max_rescale(&c.fact, ub)
            .unwrap_or_else(|| 2f64.powi(ub.log2().floor() as i32))
    }

    fn scale_of(&self, c: &Self::Ct) -> f64 {
        self.fact_scale(c)
    }
}
