//! Abstract domains for the static verifier.
//!
//! Each domain tracks one per-ciphertext fact family over the HISA trace;
//! the [`AbstractDomain`] trait makes them pluggable and the tuple impl
//! composes them into products, so the walker runs every registered lint in
//! a single forward pass. Circuits are DAGs executed in topological order,
//! so no fixpoint iteration is needed — one transfer per HISA instruction.

use super::LintCode;
use chet_hisa::keys::plan_rotation;
use chet_hisa::params::ModulusSpec;
use std::collections::BTreeSet;

/// The HISA instruction alphabet the domains interpret, with only the
/// operands that matter to any fact family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbstractOp {
    /// Ciphertext + ciphertext (also subtraction — same scale contract).
    Add,
    /// Ciphertext + plaintext encoded at `scale`.
    AddPlain {
        /// The plaintext operand's encoding scale.
        scale: f64,
    },
    /// Ciphertext + scalar broadcast (no scale contract in this scheme).
    AddScalar,
    /// Ciphertext × ciphertext.
    Mul,
    /// Ciphertext × plaintext encoded at `scale`.
    MulPlain {
        /// The plaintext operand's encoding scale.
        scale: f64,
    },
    /// Ciphertext × scalar encoded at `scale`.
    MulScalar {
        /// The scalar's encoding scale.
        scale: f64,
    },
    /// Cyclic left rotation by a normalized nonzero step.
    Rotate {
        /// The normalized left step in `[1, slots)`.
        step: usize,
    },
    /// Scale division consuming modulus.
    Rescale {
        /// The divisor (`> 1`).
        divisor: f64,
    },
}

/// One pluggable fact family. `transfer` is the forward transfer function:
/// it consumes the operand fact(s), may emit diagnostics through `emit`,
/// and returns the result fact. It must be *total* — a domain reports
/// violations as lints and keeps walking, never fails.
/// (`Send` because the walker is a [`chet_hisa::Hisa`] interpretation and
/// the HISA is `Send` for the parallel runtime; domains are plain data.)
pub trait AbstractDomain: Send {
    /// The per-ciphertext fact.
    type Fact: Clone + std::fmt::Debug + Send + Sync;

    /// Fact for a freshly encrypted ciphertext (`scale` = encoding scale,
    /// `len` = encoded value count).
    fn fresh(&mut self, scale: f64, len: usize) -> Self::Fact;

    /// Forward transfer for one instruction. `b` is the second ciphertext
    /// operand fact for [`AbstractOp::Add`] / [`AbstractOp::Mul`].
    fn transfer(
        &mut self,
        op: &AbstractOp,
        a: &Self::Fact,
        b: Option<&Self::Fact>,
        emit: &mut dyn FnMut(LintCode, String),
    ) -> Self::Fact;

    /// The fixed-point scale this domain tracks for a fact, if it does.
    fn scale_of(&self, _f: &Self::Fact) -> Option<f64> {
        None
    }

    /// The largest rescale divisor `<= ub` this domain can answer for a
    /// fact, if it models the modulus.
    fn max_rescale(&self, _f: &Self::Fact, _ub: f64) -> Option<f64> {
        None
    }
}

/// Product combinator: runs two domains side by side over shared traces.
/// Nest tuples for bigger products.
impl<A: AbstractDomain, B: AbstractDomain> AbstractDomain for (A, B) {
    type Fact = (A::Fact, B::Fact);

    fn fresh(&mut self, scale: f64, len: usize) -> Self::Fact {
        (self.0.fresh(scale, len), self.1.fresh(scale, len))
    }

    fn transfer(
        &mut self,
        op: &AbstractOp,
        a: &Self::Fact,
        b: Option<&Self::Fact>,
        emit: &mut dyn FnMut(LintCode, String),
    ) -> Self::Fact {
        (
            self.0.transfer(op, &a.0, b.map(|f| &f.0), emit),
            self.1.transfer(op, &a.1, b.map(|f| &f.1), emit),
        )
    }

    fn scale_of(&self, f: &Self::Fact) -> Option<f64> {
        self.0.scale_of(&f.0).or_else(|| self.1.scale_of(&f.1))
    }

    fn max_rescale(&self, f: &Self::Fact, ub: f64) -> Option<f64> {
        self.0.max_rescale(&f.0, ub).or_else(|| self.1.max_rescale(&f.1, ub))
    }
}

/// Tracks the fixed-point scale of every ciphertext and checks the binary-op
/// alignment contract (`CHET-E001`) plus rescale usefulness (`CHET-W001`).
///
/// Mirrors the simulator's semantics exactly: additions require operand
/// scales within relative `1e-6`; multiplications multiply scales; rescales
/// divide. `add_scalar` has no contract (backends re-encode at the
/// ciphertext's own scale).
#[derive(Debug)]
pub struct ScaleDomain {
    /// The working scale kernels settle toward (`P_c`).
    working: f64,
}

impl ScaleDomain {
    /// Domain for a plan whose working scale is `working`.
    pub fn new(working: f64) -> Self {
        ScaleDomain { working }
    }

    fn aligned(a: f64, b: f64) -> bool {
        (a / b - 1.0).abs() < 1e-6
    }
}

impl AbstractDomain for ScaleDomain {
    type Fact = f64;

    fn fresh(&mut self, scale: f64, _len: usize) -> f64 {
        scale
    }

    fn transfer(
        &mut self,
        op: &AbstractOp,
        a: &f64,
        b: Option<&f64>,
        emit: &mut dyn FnMut(LintCode, String),
    ) -> f64 {
        match op {
            AbstractOp::Add => {
                let b = b.copied().unwrap_or(*a);
                if !Self::aligned(*a, b) {
                    emit(
                        LintCode::ScaleMismatch,
                        format!(
                            "operand scales diverged: 2^{:.2} vs 2^{:.2}",
                            a.log2(),
                            b.log2()
                        ),
                    );
                }
                *a
            }
            AbstractOp::AddPlain { scale } => {
                if !Self::aligned(*a, *scale) {
                    emit(
                        LintCode::ScaleMismatch,
                        format!(
                            "ciphertext scale 2^{:.2} vs plaintext scale 2^{:.2}",
                            a.log2(),
                            scale.log2()
                        ),
                    );
                }
                *a
            }
            AbstractOp::AddScalar | AbstractOp::Rotate { .. } => *a,
            AbstractOp::Mul => a * b.copied().unwrap_or(*a),
            AbstractOp::MulPlain { scale } | AbstractOp::MulScalar { scale } => a * scale,
            AbstractOp::Rescale { divisor } => {
                if *divisor > 1.0 && *a <= self.working * 1.5 {
                    emit(
                        LintCode::RedundantRescale,
                        format!(
                            "rescale by 2^{:.1} on a ciphertext already at the working \
                             scale (2^{:.2} <= 1.5 × 2^{:.2})",
                            divisor.log2(),
                            a.log2(),
                            self.working.log2()
                        ),
                    );
                }
                a / divisor
            }
        }
    }

    fn scale_of(&self, f: &f64) -> Option<f64> {
        Some(*f)
    }
}

/// Modulus budget state of one ciphertext.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelFact {
    /// log2 of the modulus consumed on this value's path.
    pub consumed_log2: f64,
    /// Chain primes consumed (RNS only).
    pub chain_idx: usize,
}

/// Tracks rescale-driven modulus consumption against the artifact's actual
/// budget (`CHET-E002`).
///
/// Divisors are answered *budget-unawarely* (like the parameter-selection
/// analyzer): a rescale the circuit requires always fires, and the domain
/// reports the first point where cumulative consumption crosses what the
/// artifact carries. A live scheme would refuse the rescale there
/// (`HisaError::LevelExhausted`); the static walk instead records the lint
/// and keeps going with virtual divisors, so one pass still covers the
/// whole circuit.
#[derive(Debug)]
pub struct LevelDomain {
    model: LevelModel,
    /// Set once the first budget crossing is reported, so a single
    /// exhaustion yields a single `CHET-E002` instead of one per
    /// downstream rescale.
    reported: bool,
}

#[derive(Debug)]
enum LevelModel {
    /// CKKS: `log_q` bits of budget, any power of two divides; the final
    /// bit is not consumable.
    Pow2 {
        log_q: f64,
    },
    /// RNS: primes in consumption order (the artifact stores the chain
    /// back-to-front); the last one anchors the residual value and is not
    /// consumable.
    Chain {
        order: Vec<u64>,
        usable: usize,
    },
}

impl LevelDomain {
    /// Domain for an artifact's modulus.
    pub fn new(modulus: &ModulusSpec) -> Self {
        let model = match modulus {
            ModulusSpec::PowerOfTwo { log_q, .. } => LevelModel::Pow2 { log_q: *log_q as f64 },
            ModulusSpec::PrimeChain { primes, .. } => {
                let order: Vec<u64> = primes.iter().rev().copied().collect();
                LevelModel::Chain { usable: order.len().saturating_sub(1), order }
            }
        };
        LevelDomain { model, reported: false }
    }

    fn meet(a: &LevelFact, b: &LevelFact) -> LevelFact {
        LevelFact {
            consumed_log2: a.consumed_log2.max(b.consumed_log2),
            chain_idx: a.chain_idx.max(b.chain_idx),
        }
    }
}

impl AbstractDomain for LevelDomain {
    type Fact = LevelFact;

    fn fresh(&mut self, _scale: f64, _len: usize) -> LevelFact {
        LevelFact { consumed_log2: 0.0, chain_idx: 0 }
    }

    fn transfer(
        &mut self,
        op: &AbstractOp,
        a: &LevelFact,
        b: Option<&LevelFact>,
        emit: &mut dyn FnMut(LintCode, String),
    ) -> LevelFact {
        match op {
            AbstractOp::Add | AbstractOp::Mul => {
                b.map(|b| Self::meet(a, b)).unwrap_or(*a)
            }
            AbstractOp::Rescale { divisor } => {
                let mut out = *a;
                out.consumed_log2 += divisor.log2();
                match &self.model {
                    LevelModel::Pow2 { log_q } => {
                        if out.consumed_log2 > log_q - 1.0 && !self.reported {
                            self.reported = true;
                            emit(
                                LintCode::LevelExhaustion,
                                format!(
                                    "rescaling consumes {:.1} of the {log_q:.0} modulus \
                                     bits the artifact carries",
                                    out.consumed_log2
                                ),
                            );
                        }
                    }
                    LevelModel::Chain { order, usable } => {
                        let mut d = *divisor;
                        while d > 1.5 {
                            if out.chain_idx >= *usable && !self.reported {
                                self.reported = true;
                                emit(
                                    LintCode::LevelExhaustion,
                                    format!(
                                        "rescaling needs chain prime #{} but only {usable} \
                                         of {} primes are consumable",
                                        out.chain_idx + 1,
                                        order.len()
                                    ),
                                );
                            }
                            match order.get(out.chain_idx) {
                                Some(&p) => {
                                    d /= p as f64;
                                    out.chain_idx += 1;
                                }
                                // Virtual (power-of-two) divisor past the
                                // real chain: nothing left to pop.
                                None => break,
                            }
                        }
                    }
                }
                out
            }
            _ => *a,
        }
    }

    fn max_rescale(&self, f: &LevelFact, ub: f64) -> Option<f64> {
        let d = match &self.model {
            LevelModel::Pow2 { .. } => 2f64.powi(ub.log2().floor() as i32),
            LevelModel::Chain { order, .. } => {
                let mut prod = 1.0f64;
                let mut idx = f.chain_idx;
                while let Some(&p) = order.get(idx) {
                    if prod * (p as f64) > ub {
                        break;
                    }
                    prod *= p as f64;
                    idx += 1;
                }
                if prod <= 1.0 && idx >= order.len() {
                    // Past the real chain: keep the walk total with a
                    // virtual power-of-two divisor (exhaustion was already
                    // reported at the crossing).
                    prod = 2f64.powi(ub.log2().floor() as i32);
                }
                prod
            }
        };
        Some(d)
    }
}

/// Tracks slot occupancy per ciphertext (`CHET-E004` defensively — the
/// structural `circuit_fits` pre-check catches layout-level overflow before
/// the walk; this catches kernels encoding oversized vectors).
#[derive(Debug)]
pub struct SlotDomain {
    slots: usize,
}

impl SlotDomain {
    /// Domain for a `slots`-wide scheme.
    pub fn new(slots: usize) -> Self {
        SlotDomain { slots }
    }
}

impl AbstractDomain for SlotDomain {
    type Fact = usize;

    fn fresh(&mut self, _scale: f64, len: usize) -> usize {
        if len > self.slots {
            // `encode` already reported the overflow; track clamped.
            return self.slots;
        }
        len
    }

    fn transfer(
        &mut self,
        op: &AbstractOp,
        a: &usize,
        b: Option<&usize>,
        _emit: &mut dyn FnMut(LintCode, String),
    ) -> usize {
        match op {
            AbstractOp::Add | AbstractOp::Mul => (*a).max(b.copied().unwrap_or(0)),
            // Rotations are cyclic: occupancy is preserved.
            _ => *a,
        }
    }
}

/// Records every rotation step the trace requests and checks each against
/// the artifact's key set: unreachable steps are `CHET-E003`, steps served
/// by composing several keys are `CHET-N001`. The recorded set also feeds
/// the post-walk `CHET-W002` (unused keys) audit.
#[derive(Debug)]
pub struct RotationDomain {
    slots: usize,
    keys: BTreeSet<usize>,
    /// Normalized steps the trace requested.
    pub used: BTreeSet<usize>,
    /// Steps already checked against the key set (each step is diagnosed
    /// once, not per occurrence).
    checked: BTreeSet<usize>,
}

impl RotationDomain {
    /// Domain for an artifact's key set.
    pub fn new(slots: usize, keys: BTreeSet<usize>) -> Self {
        RotationDomain { slots, keys, used: BTreeSet::new(), checked: BTreeSet::new() }
    }
}

impl AbstractDomain for RotationDomain {
    type Fact = ();

    fn fresh(&mut self, _scale: f64, _len: usize) {}

    fn transfer(
        &mut self,
        op: &AbstractOp,
        _a: &(),
        _b: Option<&()>,
        emit: &mut dyn FnMut(LintCode, String),
    ) {
        if let AbstractOp::Rotate { step } = op {
            self.used.insert(*step);
            if !self.checked.insert(*step) {
                return;
            }
            match plan_rotation(*step, &self.keys, self.slots) {
                None => emit(
                    LintCode::MissingRotationKey,
                    format!(
                        "rotation by {step} cannot be composed from the {} available \
                         key step(s)",
                        self.keys.len()
                    ),
                ),
                Some(plan) if plan.len() > 1 => emit(
                    LintCode::DegradedRotation,
                    format!(
                        "rotation by {step} is served by composing {} keyed rotations",
                        plan.len()
                    ),
                ),
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_emit() -> impl FnMut(LintCode, String) {
        |_, _| {}
    }

    #[test]
    fn scale_domain_flags_diverged_addition() {
        let mut d = ScaleDomain::new(2f64.powi(30));
        let mut hits = Vec::new();
        let a = 2f64.powi(30);
        let b = 2f64.powi(31);
        d.transfer(&AbstractOp::Add, &a, Some(&b), &mut |c, m| hits.push((c, m)));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, LintCode::ScaleMismatch);
    }

    #[test]
    fn scale_domain_accepts_aligned_addition() {
        let mut d = ScaleDomain::new(2f64.powi(30));
        let mut hits = Vec::new();
        let a = 2f64.powi(30);
        d.transfer(&AbstractOp::Add, &a, Some(&a), &mut |c, m| hits.push((c, m)));
        assert!(hits.is_empty());
    }

    #[test]
    fn scale_domain_flags_redundant_rescale() {
        let working = 2f64.powi(30);
        let mut d = ScaleDomain::new(working);
        let mut hits = Vec::new();
        let out = d.transfer(
            &AbstractOp::Rescale { divisor: 2f64.powi(10) },
            &working,
            None,
            &mut |c, m| hits.push((c, m)),
        );
        assert_eq!(hits[0].0, LintCode::RedundantRescale);
        assert_eq!(out, working / 2f64.powi(10));
    }

    #[test]
    fn level_domain_reports_chain_exhaustion_once() {
        let params = chet_hisa::EncryptionParams::rns_ckks(8192, 40, 2);
        let mut d = LevelDomain::new(&params.modulus);
        let f = d.fresh(1.0, 0);
        let divisor = d.max_rescale(&f, 2f64.powi(45)).unwrap();
        assert!(divisor > 1.0);
        let mut hits = Vec::new();
        // First rescale uses the only consumable prime; the second crosses.
        let f = d.transfer(&AbstractOp::Rescale { divisor }, &f, None, &mut |c, m| {
            hits.push((c, m))
        });
        assert!(hits.is_empty(), "{hits:?}");
        let divisor2 = d.max_rescale(&f, 2f64.powi(45)).unwrap();
        let f = d.transfer(&AbstractOp::Rescale { divisor: divisor2 }, &f, None, &mut |c, m| {
            hits.push((c, m))
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, LintCode::LevelExhaustion);
        // Further rescales stay silent (single report per walk).
        let d3 = d.max_rescale(&f, 2f64.powi(45)).unwrap();
        d.transfer(&AbstractOp::Rescale { divisor: d3 }, &f, None, &mut |c, m| {
            hits.push((c, m))
        });
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn level_domain_pow2_budget() {
        let spec = ModulusSpec::PowerOfTwo { log_q: 60, log_special: 60 };
        let mut d = LevelDomain::new(&spec);
        let f = d.fresh(1.0, 0);
        let mut hits = Vec::new();
        let f = d.transfer(
            &AbstractOp::Rescale { divisor: 2f64.powi(40) },
            &f,
            None,
            &mut |c, m| hits.push((c, m)),
        );
        assert!(hits.is_empty());
        d.transfer(&AbstractOp::Rescale { divisor: 2f64.powi(40) }, &f, None, &mut |c, m| {
            hits.push((c, m))
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, LintCode::LevelExhaustion);
    }

    #[test]
    fn rotation_domain_flags_missing_and_degraded() {
        let keys: BTreeSet<usize> = [4usize].into_iter().collect();
        let mut d = RotationDomain::new(16, keys);
        let mut hits = Vec::new();
        // 8 = 4 + 4: composable but degraded.
        d.transfer(&AbstractOp::Rotate { step: 8 }, &(), None, &mut |c, m| hits.push((c, m)));
        // 3 is outside the subgroup <4> generates.
        d.transfer(&AbstractOp::Rotate { step: 3 }, &(), None, &mut |c, m| hits.push((c, m)));
        // Repeat: diagnosed once.
        d.transfer(&AbstractOp::Rotate { step: 3 }, &(), None, &mut |c, m| hits.push((c, m)));
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].0, LintCode::DegradedRotation);
        assert_eq!(hits[1].0, LintCode::MissingRotationKey);
        assert_eq!(d.used.len(), 2);
    }

    #[test]
    fn product_domain_runs_both_sides() {
        let params = chet_hisa::EncryptionParams::rns_ckks(8192, 40, 4);
        let mut d = (ScaleDomain::new(2f64.powi(30)), LevelDomain::new(&params.modulus));
        let f = d.fresh(2f64.powi(60), 16);
        assert_eq!(d.scale_of(&f), Some(2f64.powi(60)));
        let ub = 2f64.powi(45);
        let divisor = d.max_rescale(&f, ub).unwrap();
        assert!(divisor > 1.0 && divisor <= ub);
        let f2 = d.transfer(&AbstractOp::Rescale { divisor }, &f, None, &mut no_emit());
        assert!(d.scale_of(&f2).unwrap() < 2f64.powi(60));
        assert_eq!(f2.1.chain_idx, 1);
    }
}
