//! Static circuit verification & lints — the `chet-analyze` pass.
//!
//! CHET's premise (paper §5) is that FHE correctness constraints are
//! *statically decidable* by running the circuit under abstract
//! interpretations of the ciphertext type: rescale-driven modulus
//! consumption, rotation-key availability, slot capacity and fixed-point
//! scale alignment all fall out of the same on-the-fly data-flow mechanism
//! that powers parameter selection ([`crate::analysis`]).
//!
//! This module turns that mechanism into a verifier:
//!
//! * [`domain`] — the [`AbstractDomain`](domain::AbstractDomain) trait, a
//!   product combinator, and concrete domains for scales, modulus levels,
//!   slot occupancy and rotation amounts.
//! * [`walker`] — [`VerifyInterp`](walker::VerifyInterp), a fixpoint-free
//!   forward walker: a [`chet_hisa::Hisa`] interpretation whose ciphertexts
//!   carry domain facts and which *never fails*, so one pass over the HISA
//!   trace collects every diagnostic.
//! * This module — the [`Diagnostic`] model (severity, stable lint codes,
//!   per-op provenance, text + machine rendering) and the
//!   [`verify_compiled`] entry point that `Compiler::compile_checked` and
//!   `chet-serve`'s publish gate run *before* any dynamic probe.
//!
//! Unlike the dynamic SimCkks probe (`crate::validate`), verification never
//! executes ciphertext arithmetic: a bad artifact is rejected from the
//! trace alone, with the failing op's index and kernel attached.

pub mod domain;
pub mod walker;

use crate::compiler::CompiledCircuit;
use crate::params::circuit_fits;
use chet_runtime::exec::{
    try_encrypt_input, try_run_encrypted_with, ExecControl, ExecError, ExecObserver,
};
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use chet_hisa::json::Json;
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact would misbehave at run time; it must not be published.
    Deny,
    /// Wasteful or suspicious, but executable.
    Warn,
    /// Informational (e.g. a rotation served by key composition).
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// Stable lint codes. The `CHET-E…` family is [`Severity::Deny`], `CHET-W…`
/// is [`Severity::Warn`], `CHET-N…` is [`Severity::Note`], and `CHET-P…` is
/// the performance family from the whole-circuit IR analyzer
/// ([`crate::ir::analyze`]) with per-code severities; codes are part of the
/// tool's public interface and never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// CHET-E001: a binary op joins operands with diverged fixed-point
    /// scales (the dynamic analogue panics with "scales must match").
    ScaleMismatch,
    /// CHET-E002: the circuit's rescaling requirement exceeds the modulus
    /// budget the artifact actually carries.
    LevelExhaustion,
    /// CHET-E003: a rotation step cannot be served by (or composed from)
    /// the artifact's rotation-key set.
    MissingRotationKey,
    /// CHET-E004: a tensor does not fit the ciphertext slot count.
    SlotOverflow,
    /// CHET-E005: the circuit uses a shape or kernel contract the toolchain
    /// cannot execute.
    UnsupportedOp,
    /// CHET-E006: the encryption parameters are structurally invalid or
    /// violate the security table.
    InvalidParams,
    /// CHET-W001: a rescale fired on a ciphertext already at (or below) the
    /// working scale — it burns modulus for no precision benefit.
    RedundantRescale,
    /// CHET-W002: the artifact carries rotation keys for steps the circuit
    /// never uses.
    UnusedRotationKey,
    /// CHET-W003: a circuit node is unreachable from the output.
    DeadOp,
    /// CHET-W004: the output ciphertext's scale is below the precision the
    /// compilation requested.
    PrecisionBudget,
    /// CHET-N001: a rotation is served by composing several keyed
    /// rotations instead of one dedicated key.
    DegradedRotation,
    /// CHET-N002: the compiler's key-pruning pass removed rotation keys the
    /// layout search had provisionally requested.
    PrunedRotationKey,
    /// CHET-P001: the same ciphertext is rotated by the same step more than
    /// once — the rotation result could be computed once and reused.
    DuplicateRotation,
    /// CHET-P002: one ciphertext is rotated by several distinct steps; the
    /// key-switch decomposition (the dominant cost of every rotation) can
    /// be computed once and shared across the steps.
    HoistableRotation,
    /// CHET-P003: two identical HISA instructions compute the same value —
    /// a common subexpression a rewriter could eliminate.
    CommonSubexpression,
    /// CHET-P004: a HISA instruction's result never reaches the output —
    /// dead ciphertext computation.
    DeadCiphertext,
    /// CHET-P005: the artifact holds rotation keys for steps the traced
    /// instruction stream never requests.
    UnusedKeyedStep,
    /// CHET-B001: the circuit's slot-axis batch capacity — how many
    /// inference requests fit one ciphertext (`slots / ciphertext_size`,
    /// paper §7's throughput lever). Capacity 1 means batching cannot help
    /// this circuit at these parameters.
    BatchCapacity,
}

impl LintCode {
    /// Every code, in catalog order.
    pub const ALL: [LintCode; 18] = [
        LintCode::ScaleMismatch,
        LintCode::LevelExhaustion,
        LintCode::MissingRotationKey,
        LintCode::SlotOverflow,
        LintCode::UnsupportedOp,
        LintCode::InvalidParams,
        LintCode::RedundantRescale,
        LintCode::UnusedRotationKey,
        LintCode::DeadOp,
        LintCode::PrecisionBudget,
        LintCode::DegradedRotation,
        LintCode::PrunedRotationKey,
        LintCode::DuplicateRotation,
        LintCode::HoistableRotation,
        LintCode::CommonSubexpression,
        LintCode::DeadCiphertext,
        LintCode::UnusedKeyedStep,
        LintCode::BatchCapacity,
    ];

    /// The stable code string, e.g. `"CHET-E001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::ScaleMismatch => "CHET-E001",
            LintCode::LevelExhaustion => "CHET-E002",
            LintCode::MissingRotationKey => "CHET-E003",
            LintCode::SlotOverflow => "CHET-E004",
            LintCode::UnsupportedOp => "CHET-E005",
            LintCode::InvalidParams => "CHET-E006",
            LintCode::RedundantRescale => "CHET-W001",
            LintCode::UnusedRotationKey => "CHET-W002",
            LintCode::DeadOp => "CHET-W003",
            LintCode::PrecisionBudget => "CHET-W004",
            LintCode::DegradedRotation => "CHET-N001",
            LintCode::PrunedRotationKey => "CHET-N002",
            LintCode::DuplicateRotation => "CHET-P001",
            LintCode::HoistableRotation => "CHET-P002",
            LintCode::CommonSubexpression => "CHET-P003",
            LintCode::DeadCiphertext => "CHET-P004",
            LintCode::UnusedKeyedStep => "CHET-P005",
            LintCode::BatchCapacity => "CHET-B001",
        }
    }

    /// The short kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::ScaleMismatch => "scale-mismatch",
            LintCode::LevelExhaustion => "level-exhaustion",
            LintCode::MissingRotationKey => "missing-rotation-key",
            LintCode::SlotOverflow => "slot-overflow",
            LintCode::UnsupportedOp => "unsupported-op",
            LintCode::InvalidParams => "invalid-params",
            LintCode::RedundantRescale => "redundant-rescale",
            LintCode::UnusedRotationKey => "unused-rotation-key",
            LintCode::DeadOp => "dead-output",
            LintCode::PrecisionBudget => "precision-budget",
            LintCode::DegradedRotation => "degraded-rotation",
            LintCode::PrunedRotationKey => "pruned-rotation-key",
            LintCode::DuplicateRotation => "duplicate-rotation",
            LintCode::HoistableRotation => "hoistable-rotation",
            LintCode::CommonSubexpression => "common-subexpression",
            LintCode::DeadCiphertext => "dead-ciphertext",
            LintCode::UnusedKeyedStep => "unused-keyed-step",
            LintCode::BatchCapacity => "batch-capacity",
        }
    }

    /// Severity class of the code family.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::ScaleMismatch
            | LintCode::LevelExhaustion
            | LintCode::MissingRotationKey
            | LintCode::SlotOverflow
            | LintCode::UnsupportedOp
            | LintCode::InvalidParams => Severity::Deny,
            LintCode::RedundantRescale
            | LintCode::UnusedRotationKey
            | LintCode::DeadOp
            | LintCode::PrecisionBudget
            | LintCode::DuplicateRotation
            | LintCode::CommonSubexpression
            | LintCode::DeadCiphertext => Severity::Warn,
            LintCode::DegradedRotation
            | LintCode::PrunedRotationKey
            | LintCode::HoistableRotation
            | LintCode::UnusedKeyedStep
            | LintCode::BatchCapacity => Severity::Note,
        }
    }

    /// What the lint catches, for the catalog.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::ScaleMismatch => {
                "a binary op joins ciphertexts whose fixed-point scales diverged"
            }
            LintCode::LevelExhaustion => {
                "the circuit needs more rescaling modulus than the artifact carries"
            }
            LintCode::MissingRotationKey => {
                "a rotation step cannot be composed from the artifact's key set"
            }
            LintCode::SlotOverflow => "a tensor does not fit the ciphertext slot count",
            LintCode::UnsupportedOp => "a circuit shape or kernel contract is unexecutable",
            LintCode::InvalidParams => "encryption parameters are invalid or insecure",
            LintCode::RedundantRescale => "a rescale burns modulus with no precision benefit",
            LintCode::UnusedRotationKey => "rotation keys are generated but never used",
            LintCode::DeadOp => "a circuit node is unreachable from the output",
            LintCode::PrecisionBudget => {
                "the output scale is below the requested output precision"
            }
            LintCode::DegradedRotation => {
                "a rotation is composed from several keyed rotations"
            }
            LintCode::PrunedRotationKey => {
                "the key-pruning pass dropped provisionally requested rotation keys"
            }
            LintCode::DuplicateRotation => {
                "the same ciphertext is rotated by the same step more than once"
            }
            LintCode::HoistableRotation => {
                "one ciphertext is rotated by several steps; the key-switch \
                 decomposition could be hoisted and shared"
            }
            LintCode::CommonSubexpression => {
                "identical HISA instructions compute the same value twice"
            }
            LintCode::DeadCiphertext => {
                "a HISA instruction's result never reaches the output"
            }
            LintCode::UnusedKeyedStep => {
                "rotation keys exist for steps the instruction stream never uses"
            }
            LintCode::BatchCapacity => {
                "how many inference requests the slot axis can batch into one ciphertext"
            }
        }
    }

    /// The paper section that motivates the property the lint protects.
    pub fn paper_section(self) -> &'static str {
        match self {
            LintCode::ScaleMismatch => "§5.5",
            LintCode::LevelExhaustion => "§5.2",
            LintCode::MissingRotationKey => "§5.4",
            LintCode::SlotOverflow => "§5.2",
            LintCode::UnsupportedOp => "§4",
            LintCode::InvalidParams => "§2.3/§5.2",
            LintCode::RedundantRescale => "§2.2",
            LintCode::UnusedRotationKey => "§5.4",
            LintCode::DeadOp => "§3",
            LintCode::PrecisionBudget => "§5.5",
            LintCode::DegradedRotation => "§5.4",
            LintCode::PrunedRotationKey => "§5.4",
            LintCode::DuplicateRotation => "§5.1/§5.4",
            LintCode::HoistableRotation => "§5.4/§6",
            LintCode::CommonSubexpression => "§5.1",
            LintCode::DeadCiphertext => "§5.1",
            LintCode::UnusedKeyedStep => "§5.4",
            LintCode::BatchCapacity => "§4.2/§7",
        }
    }

    /// Parses a stable code string back into the enum.
    pub fn from_code(code: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.code() == code)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Where a diagnostic points: the circuit node (HISA-trace op index) and the
/// kernel/operation executing there. Dynamic [`ExecError`]s report the same
/// spans, so static and probe failures line up.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpSpan {
    /// Index of the circuit node.
    pub op_index: usize,
    /// Display name of the node's operation ("conv2d", "matmul", …).
    pub kernel: String,
}

impl OpSpan {
    /// Builds a span.
    pub fn new(op_index: usize, kernel: impl Into<String>) -> Self {
        OpSpan { op_index, kernel: kernel.into() }
    }

    /// Extracts the span from a runtime executor error, when it carries one.
    pub fn from_exec_error(e: &ExecError) -> Option<OpSpan> {
        e.op_location().map(|(i, k)| OpSpan::new(i, k))
    }
}

impl fmt::Display for OpSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op #{} ({})", self.op_index, self.kernel)
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// The circuit node the finding is attributed to, when one exists
    /// (whole-artifact findings like invalid parameters have none).
    pub span: Option<OpSpan>,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// Severity of the diagnostic (derived from the code family).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// One-line machine-readable rendering: a single JSON object with the
    /// keys `code`, `name`, `severity`, `op_index`, `kernel`, `message`
    /// (`op_index`/`kernel` are `null` for whole-artifact findings).
    /// Message strings are fully escaped, so each line is valid JSON —
    /// the `chet-lint --machine` stream is JSON-lines.
    pub fn render_machine(&self) -> String {
        Json::Obj(self.machine_obj()).render()
    }

    /// [`Self::render_machine`] with a `network` key identifying which
    /// circuit produced the finding — the `chet-lint --machine` line
    /// format (one valid JSON object per line, nothing outside it).
    pub fn render_machine_for(&self, network: &str) -> String {
        let mut obj = self.machine_obj();
        obj.insert("network".to_string(), Json::Str(network.to_string()));
        Json::Obj(obj).render()
    }

    fn machine_obj(&self) -> std::collections::BTreeMap<String, Json> {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("code".to_string(), Json::Str(self.code.code().to_string()));
        obj.insert("name".to_string(), Json::Str(self.code.name().to_string()));
        obj.insert("severity".to_string(), Json::Str(self.severity().to_string()));
        let (op_index, kernel) = match &self.span {
            Some(s) => (Json::Num(s.op_index as f64), Json::Str(s.kernel.clone())),
            None => (Json::Null, Json::Null),
        };
        obj.insert("op_index".to_string(), op_index);
        obj.insert("kernel".to_string(), kernel);
        obj.insert("message".to_string(), Json::Str(self.message.clone()));
        obj
    }

    /// Parses one [`Diagnostic::render_machine`] line back into a
    /// diagnostic (the round-trip contract machine consumers rely on).
    pub fn parse_machine(line: &str) -> Option<Diagnostic> {
        let v = chet_hisa::json::parse(line).ok()?;
        let code = LintCode::from_code(v.get("code")?.as_str()?)?;
        let message = v.get("message")?.as_str()?.to_string();
        let span = match (v.get("op_index"), v.get("kernel")) {
            (Some(Json::Num(i)), Some(Json::Str(k))) => {
                Some(OpSpan::new(*i as usize, k.clone()))
            }
            _ => None,
        };
        Some(Diagnostic { code, span, message })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.code.code(), self.severity(), self.code.name())?;
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything the verifier found, in emission order (trace order for
/// walked diagnostics, then the post-walk audits).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiagnosticReport {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Circuit nodes the trace walk covered.
    pub checked_ops: usize,
}

impl DiagnosticReport {
    /// Findings of a given severity.
    pub fn by_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity() == s)
    }

    /// Number of deny findings.
    pub fn deny_count(&self) -> usize {
        self.by_severity(Severity::Deny).count()
    }

    /// Number of warn findings.
    pub fn warn_count(&self) -> usize {
        self.by_severity(Severity::Warn).count()
    }

    /// Whether any finding forbids publishing the artifact.
    pub fn has_deny(&self) -> bool {
        self.deny_count() > 0
    }

    /// The first deny finding, if any.
    pub fn first_deny(&self) -> Option<&Diagnostic> {
        self.by_severity(Severity::Deny).next()
    }

    /// Whether a specific code was emitted.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Machine-readable rendering: one line per finding.
    pub fn render_machine(&self) -> String {
        self.diagnostics.iter().map(Diagnostic::render_machine).collect::<Vec<_>>().join("\n")
    }

    /// Pretty multi-line rendering with a summary footer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out.push_str(&format!(
            "  {} deny, {} warn, {} note across {} checked op(s)\n",
            self.deny_count(),
            self.warn_count(),
            self.by_severity(Severity::Note).count(),
            self.checked_ops,
        ));
        out
    }
}

/// The diagnostic accumulator shared between the trace walker (which emits
/// findings) and the executor observer (which stamps the current op span on
/// them). Duplicate (code, op) pairs collapse to one finding, so a lint
/// firing inside a kernel loop reports once per circuit node.
#[derive(Debug, Default)]
pub struct DiagSink {
    diags: Vec<Diagnostic>,
    current: Option<OpSpan>,
    seen: BTreeSet<(&'static str, Option<usize>)>,
}

impl DiagSink {
    /// Sets the span subsequent [`DiagSink::emit`] calls are attributed to.
    pub fn set_span(&mut self, op_index: usize, kernel: &str) {
        self.current = Some(OpSpan::new(op_index, kernel));
    }

    /// Clears the current span (post-walk audits attach explicit spans).
    pub fn clear_span(&mut self) {
        self.current = None;
    }

    /// Emits a finding at the current span.
    pub fn emit(&mut self, code: LintCode, message: String) {
        let span = self.current.clone();
        self.emit_at(code, span, message);
    }

    /// Emits a finding at an explicit span.
    pub fn emit_at(&mut self, code: LintCode, span: Option<OpSpan>, message: String) {
        let key = (code.code(), span.as_ref().map(|s| s.op_index));
        if self.seen.insert(key) {
            self.diags.push(Diagnostic { code, span, message });
        }
    }

    /// The findings emitted so far (for callers driving a
    /// [`walker::VerifyInterp`] by hand).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }
}

/// Stamps the walker's diagnostics with the executing node's span.
struct SpanObserver(Arc<Mutex<DiagSink>>);

impl ExecObserver for SpanObserver {
    fn on_op(&mut self, op_index: usize, op: &str) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).set_span(op_index, op);
    }
}

/// Circuit nodes unreachable from the output (candidates for `CHET-W003`).
fn dead_ops(circuit: &Circuit) -> Vec<usize> {
    let ops = circuit.ops();
    let mut live = vec![false; ops.len()];
    live[circuit.output()] = true;
    for i in (0..ops.len()).rev() {
        if live[i] {
            for dep in ops[i].inputs() {
                live[dep] = true;
            }
        }
    }
    live.iter().enumerate().filter(|(_, &l)| !l).map(|(i, _)| i).collect()
}

/// Display name of a circuit op, mirroring the executor's attribution.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Input { .. } => "input",
        Op::Conv2d { .. } => "conv2d",
        Op::MatMul { .. } => "matmul",
        Op::AvgPool2d { .. } => "avg_pool2d",
        Op::GlobalAvgPool { .. } => "global_avg_pool",
        Op::Activation { .. } => "activation",
        Op::BatchNorm { .. } => "batch_norm",
        Op::Concat { .. } => "concat",
        Op::Flatten { .. } => "flatten",
    }
}

/// Statically verifies a compiled artifact against its circuit: structural
/// passes (parameters, dead code, slot capacity) followed by one abstract
/// trace walk under the full domain product. Never executes ciphertext
/// arithmetic and never fails — everything it finds is a [`Diagnostic`] in
/// the returned report.
pub fn verify_compiled(circuit: &Circuit, compiled: &CompiledCircuit) -> DiagnosticReport {
    let sink = Arc::new(Mutex::new(DiagSink::default()));
    let slots = compiled.params.slots();

    // Structural pass 1: parameters (CHET-E006).
    if let Err(e) = compiled.params.validate() {
        sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(LintCode::InvalidParams, None, e.to_string());
    }

    // Structural pass 2: dead nodes (CHET-W003).
    for i in dead_ops(circuit) {
        let span = OpSpan::new(i, op_name(&circuit.ops()[i]));
        sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(
            LintCode::DeadOp,
            Some(span),
            "node is unreachable from the circuit output".into(),
        );
    }

    // Structural pass 3: slot capacity (CHET-E004). An unfit circuit would
    // break layout construction, so the trace walk is skipped.
    if slots == 0 || !circuit_fits(circuit, compiled.plan.margin, slots) {
        sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(
            LintCode::SlotOverflow,
            None,
            format!(
                "circuit tensors do not fit {slots} slots under margin {}",
                compiled.plan.margin
            ),
        );
        return finish_report(sink, 0);
    }

    let Some(input_shape) = circuit.ops().iter().find_map(|op| match op {
        Op::Input { shape } => Some(shape.clone()),
        _ => None,
    }) else {
        sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(
            LintCode::UnsupportedOp,
            None,
            "circuit has no encrypted input".into(),
        );
        return finish_report(sink, 0);
    };

    // The abstract trace walk: the circuit executes under VerifyInterp
    // (scale × level × slot × rotation product domain) through the standard
    // executor, with an observer stamping op provenance on every finding.
    let mut interp = walker::VerifyInterp::new(compiled, Arc::clone(&sink));
    let image = Tensor::zeros(input_shape);
    let mut checked_ops = 0usize;
    let walk = try_encrypt_input(&mut interp, circuit, &compiled.plan, &image).and_then(|enc| {
        let mut observer = SpanObserver(Arc::clone(&sink));
        let mut ctrl = ExecControl { cancel: None, observer: Some(&mut observer) };
        try_run_encrypted_with(&mut interp, circuit, &compiled.plan, enc, &mut ctrl)
    });
    match walk {
        Ok((out, _report)) => {
            checked_ops = circuit.ops().len();
            // Post-walk audit: output precision (CHET-W004).
            let out_scale = out
                .cts
                .first()
                .map(|ct| interp.fact_scale(ct))
                .unwrap_or(compiled.outcome.output_scale);
            if out_scale * (1.0 + 1e-9) < compiled.output_precision {
                let out_idx = circuit.output();
                let span = OpSpan::new(out_idx, op_name(&circuit.ops()[out_idx]));
                sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(
                    LintCode::PrecisionBudget,
                    Some(span),
                    format!(
                        "output scale 2^{:.1} is below the requested precision 2^{:.1}",
                        out_scale.log2(),
                        compiled.output_precision.log2()
                    ),
                );
            }
        }
        Err(e) => {
            // The walker itself is infallible, so a walk error is a kernel
            // contract violation or unsupported shape (CHET-E00{4,5}).
            let code = match &e {
                ExecError::Hisa { source: chet_hisa::HisaError::SlotOverflow { .. }, .. } => {
                    LintCode::SlotOverflow
                }
                _ => LintCode::UnsupportedOp,
            };
            let span = OpSpan::from_exec_error(&e);
            sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(code, span, e.to_string());
        }
    }

    // Post-walk audit: rotation-key coverage (CHET-W002). E003/N001 were
    // emitted per rotation site during the walk; here the *key set* is
    // checked against the steps the circuit actually requested.
    sink.lock().unwrap_or_else(|e| e.into_inner()).clear_span();
    let used = interp.used_rotations();
    let keyed = compiled.rotation_keys.steps(slots);
    let unused: Vec<usize> = keyed.difference(&used).copied().collect();
    if !unused.is_empty() {
        sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(
            LintCode::UnusedRotationKey,
            None,
            format!(
                "{} rotation key(s) generated for steps the circuit never uses: {unused:?}",
                unused.len()
            ),
        );
    }

    // Post-walk audit: pruned keys (CHET-N002). Compiler-produced artifacts
    // never record any (pruning is a no-op for outcome-derived key sets),
    // so this only fires on artifacts whose key request was trimmed.
    if !compiled.pruned_rotations.is_empty() {
        sink.lock().unwrap_or_else(|e| e.into_inner()).emit_at(
            LintCode::PrunedRotationKey,
            None,
            format!(
                "key pruning dropped {} provisionally requested rotation step(s): {:?}",
                compiled.pruned_rotations.len(),
                compiled.pruned_rotations
            ),
        );
    }

    finish_report(sink, checked_ops)
}

fn finish_report(sink: Arc<Mutex<DiagSink>>, checked_ops: usize) -> DiagnosticReport {
    let inner = Arc::try_unwrap(sink)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_else(|arc| std::mem::take(&mut arc.lock().unwrap_or_else(|e| e.into_inner())));
    DiagnosticReport { diagnostics: inner.into_diagnostics(), checked_ops }
}
