//! Profile-guided fixed-point scale selection (paper §5.5).
//!
//! Given representative images and an output tolerance, CHET searches over
//! the four scale exponents `(P_c, P_w, P_u, P_m)` in round-robin order,
//! decrementing each while every image's encrypted output stays within
//! tolerance of the unencrypted reference. Smaller scales mean a smaller
//! modulus and faster execution.
//!
//! Evaluation runs on the simulator backend with the CKKS noise model — the
//! same code path as a real backend, at a tiny fraction of the cost (see
//! DESIGN.md substitutions).

use crate::params::{select_parameters, SelectError};
use chet_ckks::sim::SimCkks;
use chet_hisa::params::SchemeKind;
use chet_hisa::security::SecurityLevel;
use chet_hisa::RotationKeyPolicy;
use chet_runtime::exec::{infer, required_margin_for, ExecPlan};
use chet_runtime::kernels::ScaleConfig;
use chet_runtime::layout::LayoutKind;
use chet_tensor::circuit::Circuit;
use chet_tensor::Tensor;

/// Search configuration for scale selection.
#[derive(Debug, Clone, Copy)]
pub struct ScaleSearch {
    /// Starting log2 exponents `(P_c, P_w, P_u, P_m)` (paper: 40 each; the
    /// defaults here start at the upper bounds that fit typical nets).
    pub start: (u32, u32, u32, u32),
    /// Lower bounds per exponent.
    pub min: (u32, u32, u32, u32),
    /// Accepted max-abs deviation of any output slot from the reference.
    pub tolerance: f64,
    /// Cap on candidate evaluations.
    pub max_evals: usize,
}

impl Default for ScaleSearch {
    fn default() -> Self {
        ScaleSearch {
            start: (40, 30, 30, 16),
            min: (14, 6, 6, 4),
            tolerance: 0.05,
            max_evals: 120,
        }
    }
}

/// Whether a scale configuration keeps every image within tolerance.
fn acceptable(
    circuit: &Circuit,
    layouts: &[LayoutKind],
    scales: &ScaleConfig,
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    images: &[Tensor],
    tolerance: f64,
) -> bool {
    let outcome = match select_parameters(
        circuit,
        layouts,
        scales,
        kind,
        security,
        output_precision,
    ) {
        Ok(o) => o,
        Err(_) => return false,
    };
    let plan = ExecPlan {
        layouts: layouts.to_vec(),
        scales: *scales,
        margin: required_margin_for(circuit),
    };
    let mut sim = SimCkks::new(&outcome.params, &RotationKeyPolicy::PowersOfTwo, 2024);
    for image in images {
        let reference = circuit.eval(&[image.clone()]);
        let got = infer(&mut sim, circuit, &plan, image);
        let flat_ref = reference.reshape(vec![reference.numel()]);
        let flat_got = got.reshape(vec![got.numel()]);
        if flat_got.max_abs_diff(&flat_ref) > tolerance {
            return false;
        }
    }
    true
}

/// Runs the round-robin scale search (paper §5.5). Returns the smallest
/// acceptable configuration found, along with the number of evaluations.
///
/// # Errors
///
/// Fails if even the starting scales are unacceptable.
#[allow(clippy::too_many_arguments)]
pub fn select_scales(
    circuit: &Circuit,
    layouts: &[LayoutKind],
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    images: &[Tensor],
    search: &ScaleSearch,
) -> Result<(ScaleConfig, usize), SelectError> {
    let mut exps = [search.start.0, search.start.1, search.start.2, search.start.3];
    let mins = [search.min.0, search.min.1, search.min.2, search.min.3];
    let to_config =
        |e: &[u32; 4]| ScaleConfig::from_log2(e[0], e[1], e[2], e[3]);

    let mut evals = 1usize;
    if !acceptable(
        circuit,
        layouts,
        &to_config(&exps),
        kind,
        security,
        output_precision,
        images,
        search.tolerance,
    ) {
        return Err(SelectError::ScaleSearchFailed {
            detail: "starting scales do not reach the requested output tolerance".into(),
        });
    }

    // Round-robin descent: drop each exponent in turn while acceptable.
    let mut stuck = [false; 4];
    let mut i = 0usize;
    while !stuck.iter().all(|&s| s) && evals < search.max_evals {
        let slot = i % 4;
        i += 1;
        if stuck[slot] || exps[slot] <= mins[slot] {
            stuck[slot] = true;
            continue;
        }
        let mut candidate = exps;
        candidate[slot] -= 1;
        evals += 1;
        if acceptable(
            circuit,
            layouts,
            &to_config(&candidate),
            kind,
            security,
            output_precision,
            images,
            search.tolerance,
        ) {
            exps = candidate;
        } else {
            stuck[slot] = true;
        }
    }
    Ok((to_config(&exps), evals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 6, 6]);
        let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
        let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
        let a = b.activation(c, 0.2, 0.9);
        let g = b.global_avg_pool(a);
        b.build(g)
    }

    #[test]
    fn search_shrinks_scales_within_tolerance() {
        let circuit = tiny();
        let layouts = vec![LayoutKind::CHW; circuit.ops().len()];
        let images: Vec<Tensor> = (0..2)
            .map(|s| Tensor::random(vec![1, 6, 6], 1.0, 100 + s))
            .collect();
        let search = ScaleSearch {
            start: (30, 20, 20, 14),
            min: (16, 8, 8, 6),
            tolerance: 0.05,
            max_evals: 30,
        };
        let (cfg, evals) = select_scales(
            &circuit,
            &layouts,
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(20),
            &images,
            &search,
        )
        .unwrap();
        assert!(evals >= 2);
        // Something must have shrunk from the start.
        assert!(
            cfg.input < 2f64.powi(30)
                || cfg.weight_plain < 2f64.powi(20)
                || cfg.weight_scalar < 2f64.powi(20)
                || cfg.mask < 2f64.powi(10),
            "search should tighten at least one scale: {cfg:?}"
        );
        // And the result must still be acceptable end to end.
        assert!(acceptable(
            &circuit,
            &layouts,
            &cfg,
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(20),
            &images,
            search.tolerance,
        ));
    }

    #[test]
    fn impossible_tolerance_fails() {
        let circuit = tiny();
        let layouts = vec![LayoutKind::CHW; circuit.ops().len()];
        let images = vec![Tensor::random(vec![1, 6, 6], 1.0, 7)];
        let search = ScaleSearch {
            start: (16, 8, 8, 4),
            min: (14, 6, 6, 4),
            tolerance: 1e-12,
            max_evals: 4,
        };
        let r = select_scales(
            &circuit,
            &layouts,
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(20),
            &images,
            &search,
        );
        assert!(r.is_err());
    }
}
