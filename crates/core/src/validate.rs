//! Post-compile validation: the simulated probe behind
//! `Compiler::compile_checked` (self-repairing recompilation).
//!
//! Compilation chooses parameters from *static* analysis (modulus tracking
//! under an abstract interpretation). The probe closes the loop dynamically:
//! it re-validates the selected parameters against the security table, then
//! replays the compiled plan on the noise-modelling simulator with the
//! *exact* rotation keys the compiler emitted, via the fallible executor, so
//! a bad artifact surfaces as a classified [`ProbeFailure`] instead of a
//! panic or a silently-wrong deployment. The repair loop maps each failure
//! class to a parameter adjustment (more scale bits, a spare level) and
//! recompiles — bounded, deterministic, and logged in the `RepairReport`.

use crate::compiler::CompiledCircuit;
use crate::verify::OpSpan;
use chet_ckks::sim::SimCkks;
use chet_hisa::HisaError;
use chet_runtime::exec::{try_infer, ExecError};
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;

/// Seed for the deterministic probe image and the simulator's noise RNG —
/// fixed so validation is reproducible across runs and machines.
pub const PROBE_SEED: u64 = 2024;

/// What the simulated probe found wrong with a compiled artifact. Each
/// variant maps to a distinct repair in `compile_checked`, and carries the
/// failing op's span (when the executor could attribute one) in the same
/// `(op index, kernel)` convention as the static diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeFailure {
    /// The modulus chain ran out mid-circuit — repaired by compiling with a
    /// spare rescaling level.
    LevelExhausted {
        /// The executor's error, with op attribution.
        detail: String,
        /// The circuit node the probe died at.
        span: Option<OpSpan>,
    },
    /// The probe output deviated beyond tolerance or contained non-finite
    /// slots — repaired by raising the fixed-point scales.
    PrecisionLoss {
        /// What deviated and by how much.
        detail: String,
        /// The node the loss is attributed to (the circuit output).
        span: Option<OpSpan>,
    },
    /// Any other execution failure (missing rotation key, scale mismatch,
    /// invalid parameters) — not repairable by this loop.
    Execution {
        /// The underlying error.
        detail: String,
        /// The failing node, when the executor could attribute one.
        span: Option<OpSpan>,
    },
}

impl ProbeFailure {
    /// The human-readable failure detail.
    pub fn detail(&self) -> &str {
        match self {
            ProbeFailure::LevelExhausted { detail, .. }
            | ProbeFailure::PrecisionLoss { detail, .. }
            | ProbeFailure::Execution { detail, .. } => detail,
        }
    }

    /// The failing circuit node, when one was attributed.
    pub fn span(&self) -> Option<&OpSpan> {
        match self {
            ProbeFailure::LevelExhausted { span, .. }
            | ProbeFailure::PrecisionLoss { span, .. }
            | ProbeFailure::Execution { span, .. } => span.as_ref(),
        }
    }
}

impl std::fmt::Display for ProbeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeFailure::LevelExhausted { detail, .. } => {
                write!(f, "level exhaustion: {detail}")
            }
            ProbeFailure::PrecisionLoss { detail, .. } => write!(f, "precision loss: {detail}"),
            ProbeFailure::Execution { detail, .. } => write!(f, "execution failure: {detail}"),
        }
    }
}

/// Replays a compiled artifact on the simulator and checks the output
/// against the plaintext reference.
///
/// # Errors
///
/// Returns the first [`ProbeFailure`] observed: invalid parameters, an
/// executor error, or an out-of-tolerance output.
pub fn validate_compiled(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    tolerance: f64,
) -> Result<(), ProbeFailure> {
    if let Err(e) = compiled.params.validate() {
        return Err(ProbeFailure::Execution { detail: e.to_string(), span: None });
    }
    let input_shape = circuit
        .ops()
        .iter()
        .find_map(|op| match op {
            Op::Input { shape } => Some(shape.clone()),
            _ => None,
        })
        .ok_or_else(|| ProbeFailure::Execution {
            detail: "circuit has no encrypted input".into(),
            span: None,
        })?;
    let image = Tensor::random(input_shape, 1.0, PROBE_SEED);
    let reference = circuit.eval(&[image.clone()]);
    let mut sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, PROBE_SEED);
    match try_infer(&mut sim, circuit, &compiled.plan, &image) {
        Err(e @ ExecError::Hisa { source: HisaError::LevelExhausted { .. }, .. }) => {
            let span = OpSpan::from_exec_error(&e);
            Err(ProbeFailure::LevelExhausted { detail: e.to_string(), span })
        }
        Err(e @ ExecError::PrecisionLoss { .. }) => {
            let span = OpSpan::from_exec_error(&e);
            Err(ProbeFailure::PrecisionLoss { detail: e.to_string(), span })
        }
        Err(e) => {
            let span = OpSpan::from_exec_error(&e);
            Err(ProbeFailure::Execution { detail: e.to_string(), span })
        }
        Ok(got) => {
            let flat_ref = reference.reshape(vec![reference.numel()]);
            let flat_got = got.reshape(vec![got.numel()]);
            let diff = flat_got.max_abs_diff(&flat_ref);
            if diff > tolerance {
                let out = circuit.output();
                Err(ProbeFailure::PrecisionLoss {
                    detail: format!(
                        "probe output deviates {diff:.4} from the plaintext reference \
                         (tolerance {tolerance})"
                    ),
                    span: Some(OpSpan::new(out, circuit.ops()[out].name())),
                })
            } else {
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use chet_hisa::params::SchemeKind;
    use chet_runtime::kernels::ScaleConfig;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 6, 6]);
        let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
        let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
        let a = b.activation(c, 0.2, 0.9);
        let g = b.global_avg_pool(a);
        b.build(g)
    }

    #[test]
    fn healthy_artifact_validates() {
        let circuit = tiny();
        let compiled = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(2f64.powi(20))
            .compile(&circuit, &ScaleConfig::from_log2(26, 16, 16, 16))
            .unwrap();
        assert_eq!(validate_compiled(&circuit, &compiled, 0.05), Ok(()));
    }

    #[test]
    fn starved_scales_fail_as_precision_loss() {
        let circuit = tiny();
        let compiled = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(2f64.powi(10))
            .compile(&circuit, &ScaleConfig::from_log2(14, 6, 6, 4))
            .unwrap();
        match validate_compiled(&circuit, &compiled, 0.05) {
            Err(ProbeFailure::PrecisionLoss { .. }) => {}
            other => panic!("starved scales should lose precision, got {other:?}"),
        }
    }
}
