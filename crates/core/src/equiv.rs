//! The translation validator: proves two realizations of a circuit
//! equivalent by replaying both on the deterministic reference simulator
//! over seeded inputs and comparing output digests.
//!
//! CHET's trust story rests on every transformation (layout choice, scale
//! assignment, key pruning — and any future IR rewrite) preserving the
//! computed function. This module checks that property per artifact
//! instead of assuming it: the extracted [`IrGraph`](crate::ir::IrGraph)
//! must reproduce direct execution *bit for bit* on a noiseless
//! [`SimCkks`], and two graphs are declared equivalent only when their
//! replays agree on every seeded input. Bit-identity (not tolerance) is
//! the right bar because the simulator is deterministic: the only
//! legitimate source of divergence is a semantics change.

use crate::compiler::CompiledCircuit;
use crate::ir::{extract_ir, try_replay_ir, ExtractError, ExtractMode, IrGraph, ReplayError};
use chet_ckks::sim::SimCkks;
use chet_hisa::serial::fnv1a64;
use chet_runtime::exec::{try_infer, ExecError};
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;
use std::fmt;

/// Default seeds for [`validate_extraction`]'s input sweep.
pub const DEFAULT_SEEDS: [u64; 3] = [0xC4E7, 0x5EED, 0x1D0_F00D];

/// Digest of a tensor: FNV-1a over the shape and the exact bit patterns of
/// every element. Equal digests ⇔ bit-identical tensors (up to hash
/// collision odds of ~2⁻⁶⁴).
pub fn digest_tensor(t: &Tensor) -> u64 {
    let mut bytes = Vec::with_capacity(8 * (t.shape().len() + t.data().len()));
    for &d in t.shape() {
        bytes.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for v in t.data() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// One seeded comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedCheck {
    /// The input seed.
    pub seed: u64,
    /// Digest of the baseline execution's output.
    pub lhs: u64,
    /// Digest of the candidate execution's output.
    pub rhs: u64,
}

impl SeedCheck {
    /// Did this seed agree?
    pub fn matches(&self) -> bool {
        self.lhs == self.rhs
    }
}

/// The validator's verdict over all seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Per-seed digests, in seed order.
    pub checks: Vec<SeedCheck>,
}

impl EquivReport {
    /// True when every seed produced bit-identical outputs.
    pub fn equivalent(&self) -> bool {
        !self.checks.is_empty() && self.checks.iter().all(SeedCheck::matches)
    }

    /// The first diverging seed, if any.
    pub fn first_divergence(&self) -> Option<&SeedCheck> {
        self.checks.iter().find(|c| !c.matches())
    }
}

impl fmt::Display for EquivReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equivalent() {
            write!(f, "equivalent over {} seeds", self.checks.len())
        } else if let Some(d) = self.first_divergence() {
            write!(
                f,
                "DIVERGED at seed {:#x}: {:#018x} != {:#018x}",
                d.seed, d.lhs, d.rhs
            )
        } else {
            write!(f, "vacuous (no seeds checked)")
        }
    }
}

/// Why validation could not even run (distinct from a divergence verdict:
/// these mean one side failed to execute at all).
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// IR extraction failed.
    Extract(ExtractError),
    /// Direct execution failed on the simulator.
    Direct {
        /// The failing seed.
        seed: u64,
        /// The executor failure.
        source: ExecError,
    },
    /// IR replay failed on the simulator.
    Replay {
        /// The failing seed.
        seed: u64,
        /// The replay failure.
        source: ReplayError,
    },
    /// The circuit has no encrypted input to seed.
    NoInput,
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Extract(e) => write!(f, "{e}"),
            EquivError::Direct { seed, source } => {
                write!(f, "direct execution failed at seed {seed:#x}: {source}")
            }
            EquivError::Replay { seed, source } => {
                write!(f, "IR replay failed at seed {seed:#x}: {source}")
            }
            EquivError::NoInput => write!(f, "circuit has no encrypted input"),
        }
    }
}

impl std::error::Error for EquivError {}

fn input_shape(circuit: &Circuit) -> Result<Vec<usize>, EquivError> {
    circuit
        .ops()
        .iter()
        .find_map(|op| match op {
            Op::Input { shape } => Some(shape.clone()),
            _ => None,
        })
        .ok_or(EquivError::NoInput)
}

fn fresh_sim(compiled: &CompiledCircuit, seed: u64) -> SimCkks {
    // Noise off: the validator asserts *semantic* identity; encryption
    // noise would smear both sides without changing the verdict logic but
    // makes counterexamples impossible to minimize.
    SimCkks::new(&compiled.params, &compiled.rotation_keys, seed).without_noise()
}

/// Validates the identity transformation: extracts the IR of `circuit`
/// under `compiled` and proves the graph replays bit-identically to direct
/// inference, per seed. This is the soundness anchor for every analysis
/// that reads the graph (cost, lints): it certifies the graph *is* the
/// computation.
pub fn validate_extraction(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    seeds: &[u64],
) -> Result<EquivReport, EquivError> {
    let ir = extract_ir(circuit, compiled, ExtractMode::Full).map_err(EquivError::Extract)?;
    validate_ir(circuit, compiled, &ir, seeds)
}

/// Proves an already-extracted (possibly rewritten) graph equivalent to
/// direct execution of `circuit` under `compiled`.
pub fn validate_ir(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    ir: &IrGraph,
    seeds: &[u64],
) -> Result<EquivReport, EquivError> {
    let shape = input_shape(circuit)?;
    let mut checks = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let image = Tensor::random(shape.clone(), 1.0, seed);
        // Both sides run on identically-seeded fresh simulators, so even
        // the (disabled) RNG state matches.
        let mut direct_sim = fresh_sim(compiled, seed);
        let direct = try_infer(&mut direct_sim, circuit, &compiled.plan, &image)
            .map_err(|source| EquivError::Direct { seed, source })?;
        let mut replay_sim = fresh_sim(compiled, seed);
        let replay = try_replay_ir(&mut replay_sim, ir, &image)
            .map_err(|source| EquivError::Replay { seed, source })?;
        checks.push(SeedCheck {
            seed,
            lhs: digest_tensor(&direct),
            rhs: digest_tensor(&replay),
        });
    }
    Ok(EquivReport { checks })
}

/// Proves two graphs equivalent to each other (the general translation
/// validator: run the original and the rewritten graph over the same
/// seeded inputs and compare digests). Both graphs must encrypt the input
/// the same way — differing layouts are by definition different programs.
pub fn check_ir_equiv(
    a: &IrGraph,
    b: &IrGraph,
    compiled: &CompiledCircuit,
    seeds: &[u64],
) -> Result<EquivReport, EquivError> {
    let shape = vec![
        a.input_layout.channels,
        a.input_layout.height,
        a.input_layout.width,
    ];
    let mut checks = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let image = Tensor::random(shape.clone(), 1.0, seed);
        let mut sim_a = fresh_sim(compiled, seed);
        let lhs = try_replay_ir(&mut sim_a, a, &image)
            .map_err(|source| EquivError::Replay { seed, source })?;
        let mut sim_b = fresh_sim(compiled, seed);
        let rhs = try_replay_ir(&mut sim_b, b, &image)
            .map_err(|source| EquivError::Replay { seed, source })?;
        checks.push(SeedCheck { seed, lhs: digest_tensor(&lhs), rhs: digest_tensor(&rhs) });
    }
    Ok(EquivReport { checks })
}
