//! Rotation-key selection (paper §5.4).
//!
//! Instead of the default power-of-two key set (`2 log N − 2` keys, each
//! arbitrary rotation composed from several), CHET records exactly which
//! rotation steps a circuit uses and generates keys for those.

use crate::params::AnalysisOutcome;
use chet_hisa::keys::{normalize_rotation, RotationKeyPolicy};
use std::collections::BTreeSet;

/// Builds the exact rotation-key policy from an analysis outcome.
pub fn select_rotation_keys(outcome: &AnalysisOutcome) -> RotationKeyPolicy {
    RotationKeyPolicy::Exact(outcome.rotations.clone())
}

/// Restricts an exact key policy to the steps a circuit actually uses,
/// returning the pruned policy and the extra steps that were dropped (the
/// `CHET-W002` waste). The power-of-two default is left untouched — its
/// whole point is covering arbitrary steps by composition — but its unused
/// steps are still reported.
pub fn prune_rotation_keys(
    policy: RotationKeyPolicy,
    used: &BTreeSet<usize>,
    slots: usize,
) -> (RotationKeyPolicy, Vec<usize>) {
    let used: BTreeSet<usize> = used
        .iter()
        .map(|&s| normalize_rotation(s as i64, slots))
        .filter(|&s| s != 0)
        .collect();
    let keyed = policy.steps(slots);
    let extras: Vec<usize> = keyed.difference(&used).copied().collect();
    match policy {
        RotationKeyPolicy::Exact(_) => {
            let kept: BTreeSet<usize> = keyed.intersection(&used).copied().collect();
            (RotationKeyPolicy::Exact(kept), extras)
        }
        p @ RotationKeyPolicy::PowersOfTwo => (p, extras),
    }
}

/// Number of keys saved (or added) versus the power-of-two default.
pub fn key_count_delta(outcome: &AnalysisOutcome) -> isize {
    let slots = outcome.params.slots();
    let exact = outcome.rotations.len() as isize;
    let default = RotationKeyPolicy::PowersOfTwo.key_count(slots) as isize;
    exact - default
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::select_parameters;
    use chet_hisa::params::SchemeKind;
    use chet_hisa::security::SecurityLevel;
    use chet_runtime::kernels::ScaleConfig;
    use chet_runtime::layout::LayoutKind;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;
    use chet_tensor::Tensor;

    #[test]
    fn exact_keys_cover_circuit_rotations() {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 6, 6]);
        let w = Tensor::from_fn(vec![1, 1, 3, 3], |_| 0.2);
        let c = b.conv2d(x, w, None, 1, Padding::Valid);
        let circuit = b.build(c);
        let layouts = vec![LayoutKind::HW; circuit.ops().len()];
        let outcome = select_parameters(
            &circuit,
            &layouts,
            &ScaleConfig::default(),
            SchemeKind::RnsCkks,
            SecurityLevel::Bits128,
            2f64.powi(30),
        )
        .unwrap();
        let policy = select_rotation_keys(&outcome);
        match &policy {
            RotationKeyPolicy::Exact(steps) => {
                // A 3x3 valid conv in HW rotates by {0,1,2} + h_stride·{0,1,2}
                // minus the zero offset: 8 distinct steps.
                assert_eq!(steps.len(), 8, "{steps:?}");
                assert!(steps.contains(&1));
            }
            _ => panic!("expected exact policy"),
        }
        // The paper's observation: selected keys are ~O(log N) in practice
        // and usually fewer than the default set.
        assert!(key_count_delta(&outcome) < 0);
    }
}
