//! # chet-compiler
//!
//! The CHET optimizing compiler for homomorphic tensor circuits — the
//! primary contribution of *"CHET: An Optimizing Compiler for
//! Fully-Homomorphic Neural-Network Inferencing"* (PLDI 2019).
//!
//! Given a tensor circuit (from `chet-tensor`) the compiler:
//!
//! 1. **Selects encryption parameters** (§5.2, [`params`]) by running the
//!    circuit under a modulus-tracking interpretation of the HISA and
//!    consulting the HE-standard security table.
//! 2. **Selects data layouts** (§5.3, [`layout`]) by pricing the four
//!    pruned layout policies with the Table 1 cost model.
//! 3. **Selects rotation keys** (§5.4, [`rotations`]) by recording the
//!    exact rotation steps the circuit uses.
//! 4. **Selects fixed-point scales** (§5.5, [`scales`]) with a
//!    profile-guided round-robin search against an output tolerance.
//!
//! All analyses share one mechanism ([`analysis::Analyzer`]): the circuit
//! executes under a different interpretation of the ciphertext datatype, so
//! no explicit data-flow graph is ever built (§5.1).
//!
//! # Examples
//!
//! ```
//! use chet_compiler::Compiler;
//! use chet_hisa::params::SchemeKind;
//! use chet_runtime::kernels::ScaleConfig;
//! use chet_tensor::circuit::CircuitBuilder;
//! use chet_tensor::Tensor;
//!
//! // output = conv2d(image, weights)  — the paper's §3.2 example.
//! let mut b = CircuitBuilder::new();
//! let image = b.input(vec![1, 28, 28]);
//! let weights = Tensor::random(vec![4, 1, 5, 5], 0.2, 1);
//! let out = b.conv2d(image, weights, None, 1, chet_tensor::ops::Padding::Valid);
//! let circuit = b.build(out);
//!
//! let compiled = Compiler::new(SchemeKind::RnsCkks)
//!     .compile(&circuit, &ScaleConfig::default())
//!     .expect("compiles");
//! println!(
//!     "N = {}, log Q = {:.0}, policy = {}",
//!     compiled.params.degree,
//!     compiled.params.modulus.log_q(),
//!     compiled.policy,
//! );
//! ```

// Failure-model gate (enforced by `ci.sh` via clippy): non-test compiler
// code must not unwrap/expect — selection failures are `SelectError`
// values. Tests may unwrap freely. Deliberate panics on internal
// invariants use `#[allow]` with a justification at the site.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod artifact;
pub mod compiler;
pub mod equiv;
pub mod ir;
pub mod layout;
pub mod params;
pub mod rotations;
pub mod scales;
pub mod validate;
pub mod verify;

pub use artifact::{decode_compiled, encode_compiled, ARTIFACT_FORMAT_VERSION};
pub use compiler::{CompiledCircuit, Compiler, RepairAction, RepairReport};
pub use equiv::{validate_extraction, EquivReport};
pub use ir::{extract_ir, try_replay_ir, ExtractMode, IrGraph};
pub use layout::{LayoutPolicy, ALL_POLICIES};
pub use params::{select_parameters, AnalysisOutcome, SelectError};
pub use rotations::{prune_rotation_keys, select_rotation_keys};
pub use scales::{select_scales, ScaleSearch};
pub use validate::{validate_compiled, ProbeFailure};
pub use verify::{
    verify_compiled, Diagnostic, DiagnosticReport, LintCode, OpSpan, Severity,
};
