//! The top-level CHET compiler (paper §3, Figure 2).
//!
//! Input: a tensor circuit + input schema (shapes are embedded in the
//! circuit; scales come from the user or the profile-guided search).
//! Output: a [`CompiledCircuit`] — the optimized homomorphic tensor circuit
//! (layout plan), the encryption parameters for the encryptor/decryptor,
//! and the rotation-key configuration the client must generate.

use crate::layout::{select_data_layout_with_margin, LayoutChoice, LayoutPolicy};
use crate::params::{AnalysisOutcome, SelectError};
use crate::rotations::{prune_rotation_keys, select_rotation_keys};
use crate::scales::{select_scales, ScaleSearch};
use crate::validate::{validate_compiled, ProbeFailure};
use crate::verify::{verify_compiled, DiagnosticReport, LintCode, Severity};
use chet_hisa::cost::CostModel;
use chet_hisa::params::{EncryptionParams, SchemeKind};
use chet_hisa::security::SecurityLevel;
use chet_hisa::RotationKeyPolicy;
use chet_runtime::exec::ExecPlan;
use chet_runtime::kernels::ScaleConfig;
use chet_tensor::circuit::{Circuit, Op};
use chet_tensor::Tensor;

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct Compiler {
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    cost_model: CostModel,
    margin_levels: usize,
    repair_tolerance: f64,
    layout_policy: Option<LayoutPolicy>,
}

/// The compiler's output: everything needed to run the circuit
/// homomorphically (paper Figure 2's "optimized homomorphic tensor circuit"
/// plus encryptor/decryptor configuration).
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// Layout assignment + scales + margin: drives the runtime executor.
    pub plan: ExecPlan,
    /// Encryption parameters for the encryptor/decryptor.
    pub params: EncryptionParams,
    /// The rotation keys the encryptor must generate.
    pub rotation_keys: RotationKeyPolicy,
    /// Which layout policy won the search.
    pub policy: LayoutPolicy,
    /// Estimated execution cost of the chosen plan.
    pub estimated_cost: f64,
    /// Analysis facts (modulus consumption, op counts, rotations).
    pub outcome: AnalysisOutcome,
    /// The output fixed-point precision the compilation targeted (the
    /// static verifier's `CHET-W004` budget).
    pub output_precision: f64,
    /// Rotation steps the key-pruning pass dropped from the provisional
    /// key request (surfaced as the `CHET-N002` note). Empty for artifacts
    /// compiled from an analysis outcome (pruning is a no-op there).
    pub pruned_rotations: Vec<usize>,
}

impl CompiledCircuit {
    /// How many inference requests batch-pack into one ciphertext set under
    /// this artifact's plan and parameters (the paper's `slots /
    /// ciphertext_size` throughput lever; surfaced as the `CHET-B001` note
    /// and consumed by the serving layer's request coalescer). Always ≥ 1;
    /// capacity 1 means batching cannot help this circuit.
    pub fn batch_capacity(&self, circuit: &Circuit) -> usize {
        chet_runtime::exec::batch_capacity(circuit, &self.plan, self.params.slots())
    }
}

/// One adjustment made by [`Compiler::compile_checked`]'s repair loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairAction {
    /// 1-based attempt that observed the failure.
    pub attempt: usize,
    /// The probe failure that triggered the repair.
    pub reason: String,
    /// What the repair changed.
    pub adjustment: String,
}

/// The outcome of [`Compiler::compile_checked`]'s validate-and-repair loop.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Compile attempts spent (1 = validated on the first try).
    pub attempts: usize,
    /// Adjustments applied, in order.
    pub actions: Vec<RepairAction>,
    /// The scales the validated artifact was compiled with.
    pub final_scales: ScaleConfig,
    /// Spare rescaling levels added beyond the compiler's configuration.
    pub extra_levels: usize,
    /// The static verifier's findings on the accepted artifact (zero Deny
    /// by construction; Warn/Note diagnostics are informational).
    pub lints: DiagnosticReport,
}

impl RepairReport {
    /// Whether any repair was needed.
    pub fn repaired(&self) -> bool {
        !self.actions.is_empty()
    }
}

/// The precision repair: more fractional bits everywhere, weighted toward
/// the input scale (which dominates output noise).
fn bump_scales(s: &ScaleConfig) -> ScaleConfig {
    ScaleConfig {
        input: s.input * 2f64.powi(6),
        weight_plain: s.weight_plain * 2f64.powi(4),
        weight_scalar: s.weight_scalar * 2f64.powi(4),
        mask: s.mask * 2f64.powi(3),
    }
}

impl Compiler {
    /// A compiler targeting the given scheme variant with CHET's defaults:
    /// 128-bit security and output precision `2^30`.
    pub fn new(kind: SchemeKind) -> Self {
        Compiler {
            kind,
            security: SecurityLevel::Bits128,
            output_precision: 2f64.powi(30),
            cost_model: CostModel::for_scheme(kind),
            margin_levels: 0,
            repair_tolerance: 0.05,
            layout_policy: None,
        }
    }

    /// Overrides the security level (builder style).
    pub fn with_security(mut self, security: SecurityLevel) -> Self {
        self.security = security;
        self
    }

    /// Overrides the desired output fixed-point precision.
    pub fn with_output_precision(mut self, precision: f64) -> Self {
        self.output_precision = precision;
        self
    }

    /// Overrides the cost model (e.g. after microbenchmark calibration).
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Reserves `levels` spare rescaling levels beyond what the static
    /// analysis measured (insurance against modulus exhaustion at run time;
    /// [`Compiler::compile_checked`] bumps this automatically).
    pub fn with_margin_levels(mut self, levels: usize) -> Self {
        self.margin_levels = levels;
        self
    }

    /// Overrides the output tolerance the post-compile probe enforces in
    /// [`Compiler::compile_checked`] (default `0.05`).
    pub fn with_repair_tolerance(mut self, tolerance: f64) -> Self {
        self.repair_tolerance = tolerance;
        self
    }

    /// Pins the layout policy instead of searching all four (paper Table 5/6
    /// style ablations, and adversarial artifacts for the static verifier).
    pub fn with_layout_policy(mut self, policy: LayoutPolicy) -> Self {
        self.layout_policy = Some(policy);
        self
    }

    /// The targeted scheme variant.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    fn finish(&self, choice: LayoutChoice) -> CompiledCircuit {
        let rotation_keys = select_rotation_keys(&choice.outcome);
        // §5.4 invariant: the emitted key set must exactly match the steps
        // the analysis recorded. Pruning is a no-op for the Exact policy
        // built from the outcome, but keeps stale/hand-edited policies from
        // shipping unused keys.
        let slots = choice.outcome.params.slots();
        let (rotation_keys, extras) =
            prune_rotation_keys(rotation_keys, &choice.outcome.rotations, slots);
        CompiledCircuit {
            plan: choice.plan,
            params: choice.outcome.params.clone(),
            rotation_keys,
            policy: choice.policy,
            estimated_cost: choice.estimated_cost,
            outcome: choice.outcome,
            output_precision: self.output_precision,
            pruned_rotations: extras,
        }
    }

    /// Compiles a circuit with user-provided fixed-point scales: runs the
    /// layout search (each candidate priced after parameter selection) and
    /// the rotation-key selection on the winner.
    ///
    /// # Errors
    ///
    /// Fails when the circuit shape is unsupported (multiple encrypted
    /// inputs) or no supported ring degree can hold the circuit.
    pub fn compile(
        &self,
        circuit: &Circuit,
        scales: &ScaleConfig,
    ) -> Result<CompiledCircuit, SelectError> {
        let inputs =
            circuit.ops().iter().filter(|op| matches!(op, Op::Input { .. })).count();
        if inputs > 1 {
            // Rejecting here keeps the executor's run-time check from ever
            // firing on compiler-produced plans.
            return Err(SelectError::UnsupportedCircuit {
                reason: "circuits with multiple encrypted inputs are unsupported".into(),
            });
        }
        let choice = match self.layout_policy {
            None => select_data_layout_with_margin(
                circuit,
                scales,
                self.kind,
                self.security,
                self.output_precision,
                &self.cost_model,
                self.margin_levels,
            )?,
            Some(policy) => {
                let mut ranked = crate::layout::enumerate_layouts_with_margin(
                    circuit,
                    scales,
                    self.kind,
                    self.security,
                    self.output_precision,
                    &self.cost_model,
                    self.margin_levels,
                )?;
                let at = ranked.iter().position(|c| c.policy == policy).ok_or_else(|| {
                    SelectError::UnsupportedCircuit {
                        reason: format!("layout policy {policy} produced no viable plan"),
                    }
                })?;
                ranked.swap_remove(at)
            }
        };
        Ok(self.finish(choice))
    }

    /// Compiles, then validates the artifact in two phases: the *static
    /// verifier* first ([`verify_compiled`] — abstract interpretation, no
    /// ciphertext arithmetic), and only then the dynamic SimCkks probe for
    /// what statics cannot decide (noise-driven output precision). Both
    /// phases repair and recompile on failure: a static level-exhaustion
    /// finding or a probed exhaustion adds a spare rescaling level, probed
    /// precision loss raises the fixed-point scales. Any other Deny
    /// diagnostic is a compiler bug no parameter adjustment fixes, so it
    /// fails immediately with the lint code in the error. At most three
    /// repair attempts follow the initial compile; every adjustment is
    /// logged in the returned [`RepairReport`], along with the accepted
    /// artifact's full lint report.
    ///
    /// # Errors
    ///
    /// Propagates the first compile failure unchanged; returns
    /// [`SelectError::RepairFailed`] when the retry budget is exhausted or
    /// either phase hits a failure no repair addresses.
    pub fn compile_checked(
        &self,
        circuit: &Circuit,
        scales: &ScaleConfig,
    ) -> Result<(CompiledCircuit, RepairReport), SelectError> {
        const MAX_RETRIES: usize = 3;
        let mut compiler = self.clone();
        let mut scales = *scales;
        let mut actions: Vec<RepairAction> = Vec::new();
        for attempt in 0..=MAX_RETRIES {
            let compiled = match compiler.compile(circuit, &scales) {
                Ok(c) => c,
                Err(e) if attempt == 0 => return Err(e),
                Err(e) => {
                    return Err(SelectError::RepairFailed {
                        attempts: attempt + 1,
                        last_error: e.to_string(),
                    })
                }
            };
            // Phase 1: static verification. Rejects bad artifacts from the
            // trace alone and decides scale/level/key/slot properties, so
            // the probe below only has to answer the noise question.
            let lints = verify_compiled(circuit, &compiled);
            if lints.has_deny() {
                let repairable = lints
                    .by_severity(Severity::Deny)
                    .all(|d| d.code == LintCode::LevelExhaustion);
                let first = lints
                    .first_deny()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "unknown deny diagnostic".into());
                if !repairable || attempt == MAX_RETRIES {
                    return Err(SelectError::RepairFailed {
                        attempts: attempt + 1,
                        last_error: first,
                    });
                }
                compiler.margin_levels += 1;
                actions.push(RepairAction {
                    attempt: attempt + 1,
                    reason: first,
                    adjustment: format!(
                        "reserved a spare rescaling level ({} total)",
                        compiler.margin_levels
                    ),
                });
                continue;
            }
            // Phase 2: the dynamic probe, for the noise behaviour statics
            // cannot decide.
            let failure = match validate_compiled(circuit, &compiled, compiler.repair_tolerance)
            {
                Ok(()) => {
                    // Phase 3: whole-circuit IR analysis. The CHET-P
                    // performance lints ride along in the report (they are
                    // never deny, so they cannot fail a healthy compile).
                    let mut lints = lints;
                    if let Ok(ir) = crate::ir::extract_ir(
                        circuit,
                        &compiled,
                        crate::ir::ExtractMode::Metadata,
                    ) {
                        lints.diagnostics.extend(crate::ir::analyze::analyze(&ir));
                    }
                    // The batch-capacity note (CHET-B001): how far the
                    // serving layer can coalesce requests into one
                    // ciphertext under this artifact.
                    let capacity = compiled.batch_capacity(circuit);
                    lints.diagnostics.push(crate::verify::Diagnostic {
                        code: LintCode::BatchCapacity,
                        span: None,
                        message: format!(
                            "slot-axis batch capacity: {capacity} request(s) per \
                             ciphertext ({} slots)",
                            compiled.params.slots()
                        ),
                    });
                    return Ok((
                        compiled,
                        RepairReport {
                            attempts: attempt + 1,
                            actions,
                            final_scales: scales,
                            extra_levels: compiler.margin_levels - self.margin_levels,
                            lints,
                        },
                    ))
                }
                Err(f) => f,
            };
            if attempt == MAX_RETRIES {
                return Err(SelectError::RepairFailed {
                    attempts: attempt + 1,
                    last_error: failure.to_string(),
                });
            }
            let adjustment = match &failure {
                ProbeFailure::LevelExhausted { .. } => {
                    compiler.margin_levels += 1;
                    format!("reserved a spare rescaling level ({} total)", compiler.margin_levels)
                }
                ProbeFailure::PrecisionLoss { .. } => {
                    scales = bump_scales(&scales);
                    format!(
                        "raised scales to log2 ({:.0}, {:.0}, {:.0}, {:.0})",
                        scales.input.log2(),
                        scales.weight_plain.log2(),
                        scales.weight_scalar.log2(),
                        scales.mask.log2(),
                    )
                }
                ProbeFailure::Execution { detail, .. } => {
                    // Missing keys / scale mismatches are compiler bugs, not
                    // parameter shortfalls: no adjustment would help.
                    return Err(SelectError::RepairFailed {
                        attempts: attempt + 1,
                        last_error: detail.clone(),
                    });
                }
            };
            actions.push(RepairAction {
                attempt: attempt + 1,
                reason: failure.to_string(),
                adjustment,
            });
        }
        unreachable!("repair loop returns within MAX_RETRIES + 1 attempts")
    }

    /// Compiles with profile-guided scale selection (paper §5.5): first
    /// finds minimal scales meeting `tolerance` on the training images
    /// (under the CHW layout), then runs the regular compilation with them.
    ///
    /// # Errors
    ///
    /// Fails if even the starting scales cannot reach the tolerance, or if
    /// parameter selection fails.
    pub fn compile_with_profile(
        &self,
        circuit: &Circuit,
        images: &[Tensor],
        search: &ScaleSearch,
    ) -> Result<(CompiledCircuit, ScaleConfig), SelectError> {
        let probe_layouts = crate::layout::policy_layouts(circuit, LayoutPolicy::Chw);
        let (scales, _evals) = select_scales(
            circuit,
            &probe_layouts,
            self.kind,
            self.security,
            self.output_precision,
            images,
            search,
        )?;
        let compiled = self.compile(circuit, &scales)?;
        Ok((compiled, scales))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_ckks::rns::RnsCkks;
    use chet_ckks::sim::SimCkks;
    use chet_runtime::exec::infer;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;

    fn cnn() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 8, 8]);
        let w1 = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[0] + i[2] + i[3]) as f64 * 0.08 - 0.15);
        let c1 = b.conv2d(x, w1, Some(vec![0.05, -0.05]), 1, Padding::Valid);
        let a1 = b.activation(c1, 0.15, 0.9);
        let p1 = b.avg_pool2d(a1, 2, 2);
        let f = b.flatten(p1);
        let wfc = Tensor::from_fn(vec![3, 18], |i| ((i[0] + i[1]) % 4) as f64 * 0.1 - 0.15);
        let m = b.matmul(f, wfc, Some(vec![0.1, 0.0, -0.1]));
        b.build(m)
    }

    #[test]
    fn compile_produces_consistent_artifacts() {
        let circuit = cnn();
        let compiled =
            Compiler::new(SchemeKind::RnsCkks).compile(&circuit, &ScaleConfig::default()).unwrap();
        assert_eq!(compiled.plan.layouts.len(), circuit.ops().len());
        assert!(compiled.params.validate().is_ok());
        match &compiled.rotation_keys {
            RotationKeyPolicy::Exact(steps) => assert!(!steps.is_empty()),
            _ => panic!("compiler must emit exact rotation keys"),
        }
        assert!(compiled.estimated_cost > 0.0);
    }

    #[test]
    fn compiled_circuit_runs_on_simulator() {
        let circuit = cnn();
        let scales = ScaleConfig::default();
        let compiled = Compiler::new(SchemeKind::RnsCkks).compile(&circuit, &scales).unwrap();
        let mut sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 11);
        let image = Tensor::random(vec![1, 8, 8], 1.0, 3);
        let got = infer(&mut sim, &circuit, &compiled.plan, &image);
        let want = circuit.eval(&[image]);
        assert!(
            got.max_abs_diff(&want) < 5e-2,
            "sim inference should track reference: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn compiled_circuit_runs_on_real_rns_ckks() {
        // Full pipeline on the real lattice backend. Uses the circuit's own
        // selected parameters and exact rotation keys.
        let circuit = cnn();
        let scales = ScaleConfig::from_log2(26, 16, 16, 16);
        let compiled = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(2f64.powi(20))
            .compile(&circuit, &scales)
            .unwrap();
        let mut fhe = RnsCkks::new(&compiled.params, &compiled.rotation_keys, 99);
        let image = Tensor::random(vec![1, 8, 8], 1.0, 4);
        let got = infer(&mut fhe, &circuit, &compiled.plan, &image);
        let want = circuit.eval(&[image]);
        assert!(
            got.max_abs_diff(&want) < 0.05,
            "encrypted inference must track reference: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn ckks_and_rns_targets_both_compile() {
        // Paper §6: CHET makes switching schemes easy — same circuit, two
        // backends.
        let circuit = cnn();
        let scales = ScaleConfig::default();
        let rns = Compiler::new(SchemeKind::RnsCkks).compile(&circuit, &scales).unwrap();
        let big = Compiler::new(SchemeKind::Ckks).compile(&circuit, &scales).unwrap();
        assert_eq!(rns.params.kind(), SchemeKind::RnsCkks);
        assert_eq!(big.params.kind(), SchemeKind::Ckks);
    }

    #[test]
    fn profile_guided_compilation() {
        let circuit = cnn();
        let images: Vec<Tensor> =
            (0..2).map(|s| Tensor::random(vec![1, 8, 8], 1.0, 40 + s)).collect();
        let search = ScaleSearch {
            start: (30, 20, 20, 10),
            min: (18, 10, 10, 5),
            tolerance: 0.05,
            max_evals: 20,
        };
        let (compiled, scales) = Compiler::new(SchemeKind::RnsCkks)
            .compile_with_profile(&circuit, &images, &search)
            .unwrap();
        assert!(scales.input <= 2f64.powi(30));
        assert!(compiled.params.validate().is_ok());
    }
}
