//! The top-level CHET compiler (paper §3, Figure 2).
//!
//! Input: a tensor circuit + input schema (shapes are embedded in the
//! circuit; scales come from the user or the profile-guided search).
//! Output: a [`CompiledCircuit`] — the optimized homomorphic tensor circuit
//! (layout plan), the encryption parameters for the encryptor/decryptor,
//! and the rotation-key configuration the client must generate.

use crate::layout::{select_data_layout, LayoutChoice, LayoutPolicy};
use crate::params::{AnalysisOutcome, SelectError};
use crate::rotations::select_rotation_keys;
use crate::scales::{select_scales, ScaleSearch};
use chet_hisa::cost::CostModel;
use chet_hisa::params::{EncryptionParams, SchemeKind};
use chet_hisa::security::SecurityLevel;
use chet_hisa::RotationKeyPolicy;
use chet_runtime::exec::ExecPlan;
use chet_runtime::kernels::ScaleConfig;
use chet_tensor::circuit::Circuit;
use chet_tensor::Tensor;

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct Compiler {
    kind: SchemeKind,
    security: SecurityLevel,
    output_precision: f64,
    cost_model: CostModel,
}

/// The compiler's output: everything needed to run the circuit
/// homomorphically (paper Figure 2's "optimized homomorphic tensor circuit"
/// plus encryptor/decryptor configuration).
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// Layout assignment + scales + margin: drives the runtime executor.
    pub plan: ExecPlan,
    /// Encryption parameters for the encryptor/decryptor.
    pub params: EncryptionParams,
    /// The rotation keys the encryptor must generate.
    pub rotation_keys: RotationKeyPolicy,
    /// Which layout policy won the search.
    pub policy: LayoutPolicy,
    /// Estimated execution cost of the chosen plan.
    pub estimated_cost: f64,
    /// Analysis facts (modulus consumption, op counts, rotations).
    pub outcome: AnalysisOutcome,
}

impl Compiler {
    /// A compiler targeting the given scheme variant with CHET's defaults:
    /// 128-bit security and output precision `2^30`.
    pub fn new(kind: SchemeKind) -> Self {
        Compiler {
            kind,
            security: SecurityLevel::Bits128,
            output_precision: 2f64.powi(30),
            cost_model: CostModel::for_scheme(kind),
        }
    }

    /// Overrides the security level (builder style).
    pub fn with_security(mut self, security: SecurityLevel) -> Self {
        self.security = security;
        self
    }

    /// Overrides the desired output fixed-point precision.
    pub fn with_output_precision(mut self, precision: f64) -> Self {
        self.output_precision = precision;
        self
    }

    /// Overrides the cost model (e.g. after microbenchmark calibration).
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The targeted scheme variant.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    fn finish(&self, choice: LayoutChoice) -> CompiledCircuit {
        let rotation_keys = select_rotation_keys(&choice.outcome);
        CompiledCircuit {
            plan: choice.plan,
            params: choice.outcome.params.clone(),
            rotation_keys,
            policy: choice.policy,
            estimated_cost: choice.estimated_cost,
            outcome: choice.outcome,
        }
    }

    /// Compiles a circuit with user-provided fixed-point scales: runs the
    /// layout search (each candidate priced after parameter selection) and
    /// the rotation-key selection on the winner.
    ///
    /// # Errors
    ///
    /// Fails when no supported ring degree can hold the circuit.
    pub fn compile(
        &self,
        circuit: &Circuit,
        scales: &ScaleConfig,
    ) -> Result<CompiledCircuit, SelectError> {
        let choice = select_data_layout(
            circuit,
            scales,
            self.kind,
            self.security,
            self.output_precision,
            &self.cost_model,
        )?;
        Ok(self.finish(choice))
    }

    /// Compiles with profile-guided scale selection (paper §5.5): first
    /// finds minimal scales meeting `tolerance` on the training images
    /// (under the CHW layout), then runs the regular compilation with them.
    ///
    /// # Errors
    ///
    /// Fails if even the starting scales cannot reach the tolerance, or if
    /// parameter selection fails.
    pub fn compile_with_profile(
        &self,
        circuit: &Circuit,
        images: &[Tensor],
        search: &ScaleSearch,
    ) -> Result<(CompiledCircuit, ScaleConfig), SelectError> {
        let probe_layouts = crate::layout::policy_layouts(circuit, LayoutPolicy::Chw);
        let (scales, _evals) = select_scales(
            circuit,
            &probe_layouts,
            self.kind,
            self.security,
            self.output_precision,
            images,
            search,
        )?;
        let compiled = self.compile(circuit, &scales)?;
        Ok((compiled, scales))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_ckks::rns::RnsCkks;
    use chet_ckks::sim::SimCkks;
    use chet_runtime::exec::infer;
    use chet_tensor::circuit::CircuitBuilder;
    use chet_tensor::ops::Padding;

    fn cnn() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 8, 8]);
        let w1 = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[0] + i[2] + i[3]) as f64 * 0.08 - 0.15);
        let c1 = b.conv2d(x, w1, Some(vec![0.05, -0.05]), 1, Padding::Valid);
        let a1 = b.activation(c1, 0.15, 0.9);
        let p1 = b.avg_pool2d(a1, 2, 2);
        let f = b.flatten(p1);
        let wfc = Tensor::from_fn(vec![3, 18], |i| ((i[0] + i[1]) % 4) as f64 * 0.1 - 0.15);
        let m = b.matmul(f, wfc, Some(vec![0.1, 0.0, -0.1]));
        b.build(m)
    }

    #[test]
    fn compile_produces_consistent_artifacts() {
        let circuit = cnn();
        let compiled =
            Compiler::new(SchemeKind::RnsCkks).compile(&circuit, &ScaleConfig::default()).unwrap();
        assert_eq!(compiled.plan.layouts.len(), circuit.ops().len());
        assert!(compiled.params.validate().is_ok());
        match &compiled.rotation_keys {
            RotationKeyPolicy::Exact(steps) => assert!(!steps.is_empty()),
            _ => panic!("compiler must emit exact rotation keys"),
        }
        assert!(compiled.estimated_cost > 0.0);
    }

    #[test]
    fn compiled_circuit_runs_on_simulator() {
        let circuit = cnn();
        let scales = ScaleConfig::default();
        let compiled = Compiler::new(SchemeKind::RnsCkks).compile(&circuit, &scales).unwrap();
        let mut sim = SimCkks::new(&compiled.params, &compiled.rotation_keys, 11);
        let image = Tensor::random(vec![1, 8, 8], 1.0, 3);
        let got = infer(&mut sim, &circuit, &compiled.plan, &image);
        let want = circuit.eval(&[image]);
        assert!(
            got.max_abs_diff(&want) < 5e-2,
            "sim inference should track reference: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn compiled_circuit_runs_on_real_rns_ckks() {
        // Full pipeline on the real lattice backend. Uses the circuit's own
        // selected parameters and exact rotation keys.
        let circuit = cnn();
        let scales = ScaleConfig::from_log2(26, 16, 16, 16);
        let compiled = Compiler::new(SchemeKind::RnsCkks)
            .with_output_precision(2f64.powi(20))
            .compile(&circuit, &scales)
            .unwrap();
        let mut fhe = RnsCkks::new(&compiled.params, &compiled.rotation_keys, 99);
        let image = Tensor::random(vec![1, 8, 8], 1.0, 4);
        let got = infer(&mut fhe, &circuit, &compiled.plan, &image);
        let want = circuit.eval(&[image]);
        assert!(
            got.max_abs_diff(&want) < 0.05,
            "encrypted inference must track reference: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn ckks_and_rns_targets_both_compile() {
        // Paper §6: CHET makes switching schemes easy — same circuit, two
        // backends.
        let circuit = cnn();
        let scales = ScaleConfig::default();
        let rns = Compiler::new(SchemeKind::RnsCkks).compile(&circuit, &scales).unwrap();
        let big = Compiler::new(SchemeKind::Ckks).compile(&circuit, &scales).unwrap();
        assert_eq!(rns.params.kind(), SchemeKind::RnsCkks);
        assert_eq!(big.params.kind(), SchemeKind::Ckks);
    }

    #[test]
    fn profile_guided_compilation() {
        let circuit = cnn();
        let images: Vec<Tensor> =
            (0..2).map(|s| Tensor::random(vec![1, 8, 8], 1.0, 40 + s)).collect();
        let search = ScaleSearch {
            start: (30, 20, 20, 10),
            min: (18, 10, 10, 5),
            tolerance: 0.05,
            max_evals: 20,
        };
        let (compiled, scales) = Compiler::new(SchemeKind::RnsCkks)
            .compile_with_profile(&circuit, &images, &search)
            .unwrap();
        assert!(scales.input <= 2f64.powi(30));
        assert!(compiled.params.validate().is_ok());
    }
}
