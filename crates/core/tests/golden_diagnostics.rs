//! Golden-diagnostic tests: adversarial circuits and tampered artifacts
//! that the static verifier must reject with *exact* lint codes, severities
//! and op spans — no simulator probe involved.
//!
//! Each adversary targets one lint:
//!
//! | circuit / tamper                         | expected            |
//! |------------------------------------------|---------------------|
//! | concat(input, conv(input)) under RNS     | CHET-E001 (deny)    |
//! | modulus chain swapped for a 2-prime one  | CHET-E002 (deny)    |
//! | all rotation keys stripped               | CHET-E003 (deny)    |
//! | slot count shrunk below the tensor size  | CHET-E004 (deny)    |
//! | ring degree made non-power-of-two        | CHET-E006 (deny)    |
//! | unreachable conv node                    | CHET-W003 (warn)    |
//! | rotation keys reduced to {1}             | CHET-N001 (note)    |
//!
//! Plus the property the whole design rests on: an artifact with **zero
//! Deny** diagnostics passes the dynamic SimCkks probe.

use chet_compiler::{
    validate_compiled, verify_compiled, CompiledCircuit, Compiler, LayoutPolicy, LintCode,
    SelectError, Severity,
};
use chet_hisa::keys::RotationKeyPolicy;
use chet_hisa::params::{EncryptionParams, SchemeKind};
use chet_runtime::kernels::ScaleConfig;
use chet_tensor::circuit::{Circuit, CircuitBuilder};
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn scales() -> ScaleConfig {
    ScaleConfig::from_log2(25, 12, 12, 10)
}

fn compile(circuit: &Circuit) -> CompiledCircuit {
    Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(2f64.powi(20))
        .compile(circuit, &scales())
        .unwrap()
}

/// conv → activation → avg-pool: rotations, plaintext muls and rescales.
fn healthy() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![2, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, Some(vec![0.1, -0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let p = b.avg_pool2d(a, 2, 2);
    b.build(p)
}

/// `concat(input, activation(input))` pinned to the CHW layout: CHW concat
/// must *add* the two channel blocks into one ciphertext, but the
/// activation branch has rescaled by real chain primes while the raw branch
/// keeps the exact input scale — the join's operands have diverged. (Under
/// the layout search the compiler dodges this by picking HW, where concat
/// is free; pinning CHW is the adversary.)
fn scale_mismatch_adversary() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let a = b.activation(x, 0.2, 0.9);
    let cat = b.concat(vec![x, a]);
    b.build(cat)
}

#[test]
fn scale_mismatch_is_rejected_statically_with_span() {
    let circuit = scale_mismatch_adversary();
    let compiled = Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(2f64.powi(20))
        .with_layout_policy(LayoutPolicy::Chw)
        .compile(&circuit, &scales())
        .unwrap();
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.has(LintCode::ScaleMismatch), "want CHET-E001 in:\n{}", report.render_text());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::ScaleMismatch)
        .unwrap();
    assert_eq!(d.severity(), Severity::Deny);
    let span = d.span.as_ref().expect("E001 must carry the failing op's span");
    assert_eq!(span.op_index, circuit.output(), "mismatch surfaces at the concat");
    assert_eq!(span.kernel, "concat");
}

#[test]
fn compile_checked_rejects_scale_mismatch_before_any_probe() {
    let circuit = scale_mismatch_adversary();
    let err = Compiler::new(SchemeKind::RnsCkks)
        .with_output_precision(2f64.powi(20))
        .with_layout_policy(LayoutPolicy::Chw)
        .compile_checked(&circuit, &scales())
        .unwrap_err();
    match err {
        SelectError::RepairFailed { last_error, .. } => {
            // The static verifier speaks in lint codes; the dynamic probe
            // never does. Seeing the code proves the rejection was static.
            assert!(last_error.contains("CHET-E001"), "want static E001, got: {last_error}");
        }
        other => panic!("expected RepairFailed, got {other:?}"),
    }
}

#[test]
fn level_exhaustion_on_a_starved_modulus_chain() {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![1, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let c = b.conv2d(x, w, None, 1, Padding::Valid);
    let a1 = b.activation(c, 0.2, 0.9);
    let a2 = b.activation(a1, 0.2, 0.9);
    let g = b.global_avg_pool(a2);
    let circuit = b.build(g);
    let mut compiled = compile(&circuit);
    // Swap the selected chain for one with a single consumable prime; the
    // two squarings need more.
    compiled.params = EncryptionParams::rns_ckks(compiled.params.degree, 40, 2);
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.has(LintCode::LevelExhaustion), "want CHET-E002 in:\n{}", report.render_text());
    let d = report.diagnostics.iter().find(|d| d.code == LintCode::LevelExhaustion).unwrap();
    assert_eq!(d.severity(), Severity::Deny);
    assert!(d.span.is_some(), "E002 must point at the op that crossed the budget");
}

#[test]
fn stripped_rotation_keys_are_rejected_with_span() {
    let circuit = healthy();
    let mut compiled = compile(&circuit);
    compiled.rotation_keys = RotationKeyPolicy::Exact(BTreeSet::new());
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.has(LintCode::MissingRotationKey), "want CHET-E003 in:\n{}", report.render_text());
    let d = report.diagnostics.iter().find(|d| d.code == LintCode::MissingRotationKey).unwrap();
    assert_eq!(d.severity(), Severity::Deny);
    let span = d.span.as_ref().expect("E003 must carry the rotating op's span");
    assert_eq!(span.kernel, "conv2d", "the conv is the first kernel that rotates");
    // An empty key set has nothing unused: W002 must not fire.
    assert!(!report.has(LintCode::UnusedRotationKey), "{}", report.render_text());
}

#[test]
fn composed_rotations_are_noted_not_denied() {
    let circuit = healthy();
    let mut compiled = compile(&circuit);
    compiled.rotation_keys = RotationKeyPolicy::Exact(BTreeSet::from([1]));
    let report = verify_compiled(&circuit, &compiled);
    // Every step is reachable by composing step-1 keys, so nothing is
    // denied — but the degradation is noted.
    assert!(!report.has_deny(), "{}", report.render_text());
    assert!(report.has(LintCode::DegradedRotation), "want CHET-N001 in:\n{}", report.render_text());
    let d = report.diagnostics.iter().find(|d| d.code == LintCode::DegradedRotation).unwrap();
    assert_eq!(d.severity(), Severity::Note);
}

#[test]
fn shrunk_slot_count_is_rejected() {
    let circuit = healthy();
    let mut compiled = compile(&circuit);
    compiled.params.degree = 32; // 16 slots < the 36-element input
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.has(LintCode::SlotOverflow), "want CHET-E004 in:\n{}", report.render_text());
    assert_eq!(
        report.diagnostics.iter().find(|d| d.code == LintCode::SlotOverflow).unwrap().severity(),
        Severity::Deny
    );
}

#[test]
fn invalid_ring_degree_is_rejected() {
    let circuit = healthy();
    let mut compiled = compile(&circuit);
    compiled.params.degree = 1000; // not a power of two
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.has(LintCode::InvalidParams), "want CHET-E006 in:\n{}", report.render_text());
}

#[test]
fn dead_node_is_warned_with_exact_span() {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 6, 6]);
    let w = Tensor::from_fn(vec![1, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f64 * 0.05 - 0.1);
    let dead = b.conv2d(x, w.clone(), None, 1, Padding::Valid);
    let c = b.conv2d(x, w, Some(vec![0.1]), 1, Padding::Valid);
    let a = b.activation(c, 0.2, 0.9);
    let circuit = b.build(a);
    let compiled = compile(&circuit);
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.has(LintCode::DeadOp), "want CHET-W003 in:\n{}", report.render_text());
    let d = report.diagnostics.iter().find(|d| d.code == LintCode::DeadOp).unwrap();
    assert_eq!(d.severity(), Severity::Warn);
    let span = d.span.as_ref().expect("W003 must name the dead node");
    assert_eq!(span.op_index, dead);
    assert_eq!(span.kernel, "conv2d");
}

#[test]
fn redundant_rescale_is_warned() {
    // The kernels' `settle` helper never rescales a ciphertext already
    // within 1.5× of the working scale, so this waste can't come from a
    // compiled plan — drive the walker directly, as a hand-written HISA
    // trace (or a buggy kernel) would.
    use chet_compiler::verify::walker::VerifyInterp;
    use chet_compiler::verify::DiagSink;
    use chet_hisa::Hisa;
    use std::sync::{Arc, Mutex};

    let circuit = healthy();
    let compiled = compile(&circuit);
    let sink = Arc::new(Mutex::new(DiagSink::default()));
    let mut h = VerifyInterp::new(&compiled, Arc::clone(&sink));
    let pt = h.encode(&[1.0, 2.0, 3.0, 4.0], compiled.plan.scales.input);
    let ct = h.encrypt(&pt);
    let _ = h.rescale(&ct, 2.0); // already at the working scale: pure waste
    let sink = sink.lock().unwrap_or_else(|e| e.into_inner());
    let d = sink
        .diagnostics()
        .iter()
        .find(|d| d.code == LintCode::RedundantRescale)
        .expect("rescaling at the working scale must raise CHET-W001");
    assert_eq!(d.severity(), Severity::Warn);
    assert_eq!(d.code.code(), "CHET-W001");
}

#[test]
fn healthy_artifact_is_clean() {
    let circuit = healthy();
    let compiled = compile(&circuit);
    let report = verify_compiled(&circuit, &compiled);
    assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    assert_eq!(report.checked_ops, circuit.ops().len());
}

// The soundness contract behind `compile_checked` skipping the probe for
// statically-verified properties: zero Deny diagnostics ⇒ the dynamic
// SimCkks probe executes the artifact successfully.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_deny_implies_probe_passes(
        maps in 1usize..3,
        k in 2usize..4,
        act_a in 0.05f64..0.3,
        act_b in 0.5f64..1.1,
        seed in 0u64..1000,
    ) {
        let mut b = CircuitBuilder::new();
        let x = b.input(vec![1, 6, 6]);
        let w = Tensor::random(vec![maps, 1, k, k], 0.2, seed);
        let c = b.conv2d(x, w, None, 1, Padding::Valid);
        let a = b.activation(c, act_a, act_b);
        let g = b.global_avg_pool(a);
        let circuit = b.build(g);
        let compiled = compile(&circuit);
        let report = verify_compiled(&circuit, &compiled);
        if report.has_deny() {
            // Vacuous case: the implication only binds deny-free artifacts.
            return Ok(());
        }
        let probe = validate_compiled(&circuit, &compiled, 0.5);
        prop_assert!(probe.is_ok(), "static verifier passed but probe failed: {:?}", probe);
    }
}

#[test]
fn pruned_rotation_keys_are_noted() {
    let circuit = healthy();
    let mut compiled = compile(&circuit);
    // Simulate the key-pruning pass having dropped two provisional steps.
    compiled.pruned_rotations = vec![3, 5];
    let report = verify_compiled(&circuit, &compiled);
    assert!(!report.has_deny(), "{}", report.render_text());
    let note = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::PrunedRotationKey)
        .unwrap_or_else(|| panic!("want CHET-N002 in:\n{}", report.render_text()));
    assert_eq!(note.severity(), Severity::Note);
    assert!(note.message.contains("[3, 5]"), "{}", note.message);
}

/// `--machine` lines must be valid JSON that parses back into the exact
/// diagnostic — the round-trip contract machine consumers rely on.
#[test]
fn machine_rendering_round_trips() {
    let circuit = healthy();
    let mut compiled = compile(&circuit);
    compiled.rotation_keys = RotationKeyPolicy::Exact(BTreeSet::new());
    compiled.pruned_rotations = vec![7];
    let report = verify_compiled(&circuit, &compiled);
    assert!(!report.diagnostics.is_empty());
    // Both spanned (E003) and span-free (N002) findings must survive.
    assert!(report.diagnostics.iter().any(|d| d.span.is_some()));
    assert!(report.diagnostics.iter().any(|d| d.span.is_none()));
    for d in &report.diagnostics {
        let line = d.render_machine();
        assert!(!line.contains('\n'), "one line per diagnostic: {line}");
        let back = chet_compiler::Diagnostic::parse_machine(&line)
            .unwrap_or_else(|| panic!("unparseable machine line: {line}"));
        assert_eq!(&back, d, "round-trip mutated the diagnostic: {line}");
        // The --machine flavor with a network key parses identically.
        let with_net = d.render_machine_for("LeNet-5-small");
        let back = chet_compiler::Diagnostic::parse_machine(&with_net).unwrap();
        assert_eq!(&back, d);
    }
}

/// Messages containing JSON metacharacters must be escaped, not break the
/// line format.
#[test]
fn machine_rendering_escapes_messages() {
    let d = chet_compiler::Diagnostic {
        code: LintCode::DeadCiphertext,
        span: Some(chet_compiler::OpSpan::new(4, "conv2d".to_string())),
        message: "tricky \"quoted\" text, a back\\slash and a\nnewline".to_string(),
    };
    let line = d.render_machine();
    assert!(!line.contains('\n'), "newline must be escaped: {line}");
    let back = chet_compiler::Diagnostic::parse_machine(&line).unwrap();
    assert_eq!(back, d);
}

/// The lint catalog: every code is unique, parseable back from its string
/// form, and the IR-analysis family (CHET-P) is present.
#[test]
fn lint_catalog_is_complete() {
    assert_eq!(LintCode::ALL.len(), 18);
    let codes: BTreeSet<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
    assert_eq!(codes.len(), LintCode::ALL.len(), "duplicate lint code strings");
    for c in LintCode::ALL {
        assert_eq!(LintCode::from_code(c.code()), Some(c), "{}", c.code());
        assert!(!c.name().is_empty() && !c.description().is_empty());
    }
    for p in [
        "CHET-P001",
        "CHET-P002",
        "CHET-P003",
        "CHET-P004",
        "CHET-P005",
        "CHET-N002",
        "CHET-B001",
    ] {
        assert!(codes.contains(p), "missing {p}");
    }
}
