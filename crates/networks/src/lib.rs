//! # chet-networks
//!
//! The evaluation networks of the CHET paper (Table 3), built as tensor
//! circuits with seeded synthetic weights:
//!
//! | Network | Conv | FC | Act | Notes |
//! |---|---|---|---|---|
//! | LeNet-5-small | 2 | 2 | 4 | MNIST-sized (28×28×1) |
//! | LeNet-5-medium | 2 | 2 | 4 | more feature maps |
//! | LeNet-5-large | 2 | 2 | 4 | TensorFlow-tutorial sized |
//! | Industrial | 5 | 2 | 6 | synthetic stand-in (structure disclosed only) |
//! | SqueezeNet-CIFAR | 10 | 0 | 9 | 3 Fire modules on 32×32×3 |
//!
//! All networks are HE-compatible as in the paper §6: activations are the
//! learnable polynomial `f(x) = a·x² + b·x` and pooling is average pooling.
//! Weights are seeded pseudo-random with variance-preserving bounds — the
//! datasets and trained weights of the paper are substituted per DESIGN.md;
//! what these circuits certify is that *encrypted inference matches
//! unencrypted inference*, which is the property the compiler owns.
//!
//! [`reduced`] variants shrink spatial dimensions for quick CI runs of the
//! benchmark harness.

use chet_tensor::circuit::{Circuit, CircuitBuilder, NodeId};
use chet_tensor::flops::count_flops;
use chet_tensor::ops::Padding;
use chet_tensor::Tensor;

/// A named evaluation network.
#[derive(Debug, Clone)]
pub struct Network {
    /// Display name (matches the paper's Table 3).
    pub name: &'static str,
    /// The tensor circuit (weights embedded).
    pub circuit: Circuit,
    /// CHW input shape.
    pub input_shape: Vec<usize>,
    /// Whether full-size runs are expensive (drives harness defaults).
    pub heavy: bool,
}

impl Network {
    /// Number of floating-point operations of the reference evaluation.
    pub fn flops(&self) -> u64 {
        count_flops(&self.circuit).total()
    }

    /// A deterministic synthetic input image in `[-1, 1]`.
    pub fn sample_image(&self, seed: u64) -> Tensor {
        Tensor::random(self.input_shape.clone(), 1.0, seed)
    }
}

/// Variance-preserving random weights for a KCRS filter bank.
fn conv_weights(k: usize, c: usize, r: usize, s: usize, seed: u64) -> Tensor {
    let bound = (2.0 / (c * r * s) as f64).sqrt();
    Tensor::random(vec![k, c, r, s], bound, seed)
}

/// Variance-preserving random weights for a dense layer.
fn fc_weights(out: usize, inp: usize, seed: u64) -> Tensor {
    let bound = (2.0 / inp as f64).sqrt();
    Tensor::random(vec![out, inp], bound, seed)
}

fn small_bias(n: usize, seed: u64) -> Vec<f64> {
    Tensor::random(vec![n], 0.05, seed).data().to_vec()
}

/// The paper's learnable activation with typical post-training values.
const ACT_A: f64 = 0.15;
const ACT_B: f64 = 0.85;

/// A LeNet-5-style network: two convolutions (each with activation and
/// average pooling) and two dense layers, activations after each dense
/// layer (4 activations total, as in Table 3).
fn lenet(
    name: &'static str,
    input_hw: usize,
    conv1_maps: usize,
    conv2_maps: usize,
    conv2_padding: Padding,
    fc1: usize,
    heavy: bool,
    seed: u64,
) -> Network {
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, input_hw, input_hw]);
    let c1 = b.conv2d(
        x,
        conv_weights(conv1_maps, 1, 5, 5, seed),
        Some(small_bias(conv1_maps, seed + 1)),
        1,
        Padding::Valid,
    );
    let a1 = b.activation(c1, ACT_A, ACT_B);
    let p1 = b.avg_pool2d(a1, 2, 2);
    let c2 = b.conv2d(
        p1,
        conv_weights(conv2_maps, conv1_maps, 5, 5, seed + 2),
        Some(small_bias(conv2_maps, seed + 3)),
        1,
        conv2_padding,
    );
    let a2 = b.activation(c2, ACT_A, ACT_B);
    let p2 = b.avg_pool2d(a2, 2, 2);
    let f = b.flatten(p2);
    // Dense sizes derive from the circuit's own shape inference.
    let tmp = CircuitBuilder::new();
    drop(tmp);
    let mut probe = b.build(f);
    let flat = probe.shapes()[f][0];
    // Rebuild with the dense layers appended (builder is consumed by build).
    b = CircuitBuilder::new();
    let mut rebuilt_f = 0;
    for (i, op) in probe.ops().iter().enumerate() {
        b = rebuild_push(b, op.clone());
        if i == f {
            rebuilt_f = i;
        }
    }
    let m1 = b.matmul(rebuilt_f, fc_weights(fc1, flat, seed + 4), Some(small_bias(fc1, seed + 5)));
    let a3 = b.activation(m1, ACT_A, ACT_B);
    let m2 = b.matmul(a3, fc_weights(10, fc1, seed + 6), Some(small_bias(10, seed + 7)));
    let a4 = b.activation(m2, ACT_A, ACT_B);
    probe = b.build(a4);
    Network { name, circuit: probe, input_shape: vec![1, input_hw, input_hw], heavy }
}

fn rebuild_push(mut b: CircuitBuilder, op: chet_tensor::circuit::Op) -> CircuitBuilder {
    use chet_tensor::circuit::Op;
    match op {
        Op::Input { shape } => {
            b.input(shape);
        }
        Op::Conv2d { input, weights, bias, stride, padding } => {
            b.conv2d(input, weights, bias, stride, padding);
        }
        Op::MatMul { input, weights, bias } => {
            b.matmul(input, weights, bias);
        }
        Op::AvgPool2d { input, kernel, stride } => {
            b.avg_pool2d(input, kernel, stride);
        }
        Op::GlobalAvgPool { input } => {
            b.global_avg_pool(input);
        }
        Op::Activation { input, a, b: bb } => {
            b.activation(input, a, bb);
        }
        Op::BatchNorm { input, scale, shift } => {
            b.batch_norm(input, scale, shift);
        }
        Op::Concat { inputs } => {
            b.concat(inputs);
        }
        Op::Flatten { input } => {
            b.flatten(input);
        }
    }
    b
}

/// LeNet-5-small (paper: 159,960 FP ops).
pub fn lenet5_small() -> Network {
    lenet("LeNet-5-small", 28, 4, 4, Padding::Valid, 32, false, 1000)
}

/// LeNet-5-medium (paper: 5,791,168 FP ops).
pub fn lenet5_medium() -> Network {
    lenet("LeNet-5-medium", 28, 16, 28, Padding::Same, 128, false, 2000)
}

/// LeNet-5-large (paper: 21,385,674 FP ops; matches the TensorFlow
/// tutorial's feature-map counts).
pub fn lenet5_large() -> Network {
    lenet("LeNet-5-large", 28, 32, 64, Padding::Same, 512, true, 3000)
}

/// The confidential "Industrial" network, reconstructed from its disclosed
/// structure (5 conv + 2 FC + 6 activations) on a 64×64 medical-style
/// image (see DESIGN.md substitutions).
pub fn industrial() -> Network {
    let seed = 4000;
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![1, 64, 64]);
    let c1 = b.conv2d(x, conv_weights(8, 1, 3, 3, seed), Some(small_bias(8, seed + 1)), 2, Padding::Same);
    let a1 = b.activation(c1, ACT_A, ACT_B);
    let c2 = b.conv2d(a1, conv_weights(16, 8, 3, 3, seed + 2), Some(small_bias(16, seed + 3)), 2, Padding::Same);
    let a2 = b.activation(c2, ACT_A, ACT_B);
    let c3 = b.conv2d(a2, conv_weights(16, 16, 3, 3, seed + 4), Some(small_bias(16, seed + 5)), 1, Padding::Same);
    let a3 = b.activation(c3, ACT_A, ACT_B);
    let c4 = b.conv2d(a3, conv_weights(32, 16, 3, 3, seed + 6), Some(small_bias(32, seed + 7)), 2, Padding::Same);
    let a4 = b.activation(c4, ACT_A, ACT_B);
    let c5 = b.conv2d(a4, conv_weights(32, 32, 3, 3, seed + 8), Some(small_bias(32, seed + 9)), 1, Padding::Same);
    let a5 = b.activation(c5, ACT_A, ACT_B);
    let f = b.flatten(a5);
    let m1 = b.matmul(f, fc_weights(64, 32 * 8 * 8, seed + 10), Some(small_bias(64, seed + 11)));
    let a6 = b.activation(m1, ACT_A, ACT_B);
    let m2 = b.matmul(a6, fc_weights(2, 64, seed + 12), Some(small_bias(2, seed + 13)));
    let circuit = b.build(m2);
    Network { name: "Industrial", circuit, input_shape: vec![1, 64, 64], heavy: true }
}

/// One Fire module: squeeze 1×1 conv (+act), expand 1×1 and 3×3 convs
/// (+acts unless `final_stage`), channel concat.
#[allow(clippy::too_many_arguments)]
fn fire(
    b: &mut CircuitBuilder,
    input: NodeId,
    in_c: usize,
    squeeze: usize,
    expand: usize,
    final_stage: bool,
    seed: u64,
) -> NodeId {
    let s = b.conv2d(
        *&input,
        conv_weights(squeeze, in_c, 1, 1, seed),
        Some(small_bias(squeeze, seed + 1)),
        1,
        Padding::Valid,
    );
    let sa = b.activation(s, ACT_A, ACT_B);
    let e1 = b.conv2d(
        sa,
        conv_weights(expand, squeeze, 1, 1, seed + 2),
        Some(small_bias(expand, seed + 3)),
        1,
        Padding::Valid,
    );
    let e3 = b.conv2d(
        sa,
        conv_weights(expand, squeeze, 3, 3, seed + 4),
        Some(small_bias(expand, seed + 5)),
        1,
        Padding::Same,
    );
    if final_stage {
        b.concat(vec![e1, e3])
    } else {
        let a1 = b.activation(e1, ACT_A, ACT_B);
        let a3 = b.activation(e3, ACT_A, ACT_B);
        b.concat(vec![a1, a3])
    }
}

/// SqueezeNet-CIFAR (paper: 10 conv layers, 9 activations, 4 Fire-module
/// stages compressed to 3 here so the conv count matches Table 3; see
/// DESIGN.md). Ends with a Fire module expanding to 2×5 = 10 channels and a
/// global average pool — no dense layers.
pub fn squeezenet_cifar() -> Network {
    let seed = 5000;
    let mut b = CircuitBuilder::new();
    let x = b.input(vec![3, 32, 32]);
    // conv1 + BN + act + pool (conv #1)
    let c1 = b.conv2d(x, conv_weights(64, 3, 3, 3, seed), Some(small_bias(64, seed + 1)), 1, Padding::Same);
    let bn_scale: Vec<f64> = (0..64).map(|i| 0.9 + 0.01 * (i % 10) as f64).collect();
    let bn_shift: Vec<f64> = (0..64).map(|i| -0.02 + 0.001 * (i % 5) as f64).collect();
    let n1 = b.batch_norm(c1, bn_scale, bn_shift);
    let a1 = b.activation(n1, ACT_A, ACT_B);
    let p1 = b.avg_pool2d(a1, 2, 2); // 16×16
    // Fire 1 (convs #2-4), 64 -> 192
    let f1 = fire(&mut b, p1, 64, 48, 96, false, seed + 10);
    let p2 = b.avg_pool2d(f1, 2, 2); // 8×8
    // Fire 2 (convs #5-7), 192 -> 192
    let f2 = fire(&mut b, p2, 192, 48, 96, false, seed + 20);
    let p3 = b.avg_pool2d(f2, 2, 2); // 4×4
    // Fire 3 (convs #8-10), 192 -> 10 class maps; activation on the concat
    // (9th activation), then global average pool to the logits.
    let f3 = fire(&mut b, p3, 192, 16, 5, true, seed + 30);
    let a_out = b.activation(f3, ACT_A, ACT_B);
    let g = b.global_avg_pool(a_out);
    let circuit = b.build(g);
    Network { name: "SqueezeNet-CIFAR", circuit, input_shape: vec![3, 32, 32], heavy: true }
}

/// All Table 3 networks, in the paper's order.
pub fn all_networks() -> Vec<Network> {
    vec![lenet5_small(), lenet5_medium(), lenet5_large(), industrial(), squeezenet_cifar()]
}

/// The canonical Table 3 network names accepted by [`reduced`] and
/// [`try_reduced`], in the paper's order.
pub const NETWORK_NAMES: [&str; 5] = [
    "LeNet-5-small",
    "LeNet-5-medium",
    "LeNet-5-large",
    "Industrial",
    "SqueezeNet-CIFAR",
];

/// A network name that is not one of [`NETWORK_NAMES`].
///
/// Returned by [`try_reduced`] so serving workers can reject a bad request
/// as a value instead of unwinding the worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNetworkError {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown network {} (expected one of: {})", self.name, NETWORK_NAMES.join(", "))
    }
}

impl std::error::Error for UnknownNetworkError {}

/// Reduced-size stand-ins with identical structure, for quick harness runs
/// on the real lattice backends (see EXPERIMENTS.md).
///
/// # Panics
///
/// Panics on a name outside [`NETWORK_NAMES`] — the panicking shim over
/// [`try_reduced`] for one-shot harness use.
pub fn reduced(network: &str) -> Network {
    match try_reduced(network) {
        Ok(net) => net,
        Err(e) => std::panic::panic_any(e.to_string()),
    }
}

/// Fallible [`reduced`]: unrecognized names come back as a structured
/// [`UnknownNetworkError`] naming the valid choices.
pub fn try_reduced(network: &str) -> Result<Network, UnknownNetworkError> {
    Ok(match network {
        "LeNet-5-small" => lenet("LeNet-5-small (reduced)", 16, 2, 2, Padding::Valid, 8, false, 1000),
        "LeNet-5-medium" => lenet("LeNet-5-medium (reduced)", 16, 4, 4, Padding::Same, 16, false, 2000),
        "LeNet-5-large" => lenet("LeNet-5-large (reduced)", 16, 6, 8, Padding::Same, 24, false, 3000),
        "Industrial" => {
            let seed = 4000;
            let mut b = CircuitBuilder::new();
            let x = b.input(vec![1, 16, 16]);
            let mut node = x;
            let mut in_c = 1usize;
            for (i, (maps, stride)) in [(4usize, 2usize), (4, 1), (8, 2), (8, 1), (8, 1)].iter().enumerate() {
                node = b.conv2d(
                    node,
                    conv_weights(*maps, in_c, 3, 3, seed + 2 * i as u64),
                    Some(small_bias(*maps, seed + 2 * i as u64 + 1)),
                    *stride,
                    Padding::Same,
                );
                node = b.activation(node, ACT_A, ACT_B);
                in_c = *maps;
            }
            let f = b.flatten(node);
            let m1 = b.matmul(f, fc_weights(16, 8 * 4 * 4, seed + 20), None);
            let a = b.activation(m1, ACT_A, ACT_B);
            let m2 = b.matmul(a, fc_weights(2, 16, seed + 21), None);
            let circuit = b.build(m2);
            Network { name: "Industrial (reduced)", circuit, input_shape: vec![1, 16, 16], heavy: false }
        }
        "SqueezeNet-CIFAR" => {
            let seed = 5000;
            let mut b = CircuitBuilder::new();
            let x = b.input(vec![3, 12, 12]);
            let c1 = b.conv2d(x, conv_weights(8, 3, 3, 3, seed), None, 1, Padding::Same);
            let a1 = b.activation(c1, ACT_A, ACT_B);
            let p1 = b.avg_pool2d(a1, 2, 2);
            let f1 = fire(&mut b, p1, 8, 4, 8, false, seed + 10);
            let f2 = fire(&mut b, f1, 16, 4, 5, true, seed + 20);
            let a_out = b.activation(f2, ACT_A, ACT_B);
            let g = b.global_avg_pool(a_out);
            let circuit = b.build(g);
            Network { name: "SqueezeNet-CIFAR (reduced)", circuit, input_shape: vec![3, 12, 12], heavy: false }
        }
        other => return Err(UnknownNetworkError { name: other.to_string() }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_layer_counts() {
        for (net, conv, fc, act) in [
            (lenet5_small(), 2usize, 2usize, 4usize),
            (lenet5_medium(), 2, 2, 4),
            (lenet5_large(), 2, 2, 4),
            (industrial(), 5, 2, 6),
            (squeezenet_cifar(), 10, 0, 9),
        ] {
            let counts = net.circuit.layer_counts();
            assert_eq!(counts.get("conv2d").copied().unwrap_or(0), conv, "{} conv", net.name);
            assert_eq!(counts.get("matmul").copied().unwrap_or(0), fc, "{} fc", net.name);
            assert_eq!(counts.get("activation").copied().unwrap_or(0), act, "{} act", net.name);
        }
    }

    #[test]
    fn flop_counts_in_paper_ballpark() {
        // Within 2x of Table 3 (weights are synthetic; shapes matter).
        let expected = [
            (lenet5_small(), 159_960u64),
            (lenet5_medium(), 5_791_168),
            (lenet5_large(), 21_385_674),
            (squeezenet_cifar(), 37_759_754),
        ];
        for (net, paper) in expected {
            let ours = net.flops();
            let ratio = ours as f64 / paper as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: ours {} vs paper {} (ratio {ratio:.2})",
                net.name,
                ours,
                paper
            );
        }
    }

    #[test]
    fn all_networks_evaluate_with_bounded_outputs() {
        for net in all_networks() {
            let out = net.circuit.eval(&[net.sample_image(42)]);
            assert!(
                out.data().iter().all(|v| v.is_finite() && v.abs() < 1e4),
                "{} output unbounded",
                net.name
            );
        }
    }

    #[test]
    fn outputs_are_ten_classes_where_expected() {
        for net in [lenet5_small(), lenet5_medium(), lenet5_large(), squeezenet_cifar()] {
            let out = net.circuit.eval(&[net.sample_image(1)]);
            assert_eq!(out.numel(), 10, "{}", net.name);
        }
        let out = industrial().circuit.eval(&[industrial().sample_image(1)]);
        assert_eq!(out.numel(), 2, "industrial is binary classification");
    }

    #[test]
    fn try_reduced_rejects_unknown_names() {
        let err = try_reduced("AlexNet").unwrap_err();
        assert_eq!(err.name, "AlexNet");
        let msg = err.to_string();
        assert!(msg.contains("unknown network AlexNet"), "{msg}");
        assert!(msg.contains("LeNet-5-small"), "message lists valid names: {msg}");
        for name in NETWORK_NAMES {
            assert!(try_reduced(name).is_ok(), "{name} resolves");
        }
    }

    #[test]
    fn reduced_variants_keep_structure() {
        for name in ["LeNet-5-small", "LeNet-5-medium", "LeNet-5-large", "Industrial", "SqueezeNet-CIFAR"] {
            let full_counts = all_networks()
                .into_iter()
                .find(|n| n.name == name)
                .unwrap()
                .circuit
                .layer_counts()
                .get("conv2d")
                .copied()
                .unwrap_or(0);
            let red = reduced(name);
            let red_convs = red.circuit.layer_counts().get("conv2d").copied().unwrap_or(0);
            if name == "SqueezeNet-CIFAR" {
                assert!(red_convs >= 4, "reduced squeezenet keeps fire structure");
            } else {
                assert_eq!(red_convs, full_counts, "{name}");
            }
            assert!(!red.heavy);
            let out = red.circuit.eval(&[red.sample_image(5)]);
            assert!(out.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn networks_are_deterministic() {
        let a = lenet5_small().circuit.eval(&[lenet5_small().sample_image(9)]);
        let b = lenet5_small().circuit.eval(&[lenet5_small().sample_image(9)]);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn multiplicative_depths_ordered_by_network_size() {
        let small = lenet5_small().circuit.multiplicative_depth();
        let ind = industrial().circuit.multiplicative_depth();
        let sq = squeezenet_cifar().circuit.multiplicative_depth();
        assert!(ind > small, "industrial deeper than lenet");
        assert!(sq > small, "squeezenet deeper than lenet");
    }
}
