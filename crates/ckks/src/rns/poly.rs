//! RNS ring elements: polynomials in `Z_Q[X]/(X^N + 1)` stored as one
//! residue vector per active modulus.
//!
//! Limb storage is recycled through the process-wide [`pool`]: `RnsPoly`
//! acquires its residue vectors from the pool and returns them on drop,
//! so steady-state evaluation allocates nothing.

use super::context::RnsContext;
use super::pool;
use chet_math::modint::{add_mod, mul_mod, neg_mod, sub_mod};
use chet_math::par;

/// A polynomial over a prefix of the modulus chain, optionally extended by
/// the special prime (only during key switching).
///
/// `data[i]` holds residues modulo `ctx.modulus(i)` for `i < level`; when
/// `special` is set, the last entry holds residues modulo the special prime.
#[derive(Debug)]
pub struct RnsPoly {
    /// Number of active chain primes.
    pub level: usize,
    /// Whether the special prime component is present (as the last entry).
    pub special: bool,
    /// Whether residues are in NTT (evaluation) form.
    pub ntt_form: bool,
    /// Residue vectors, one per active modulus.
    pub data: Vec<Vec<u64>>,
}

impl Clone for RnsPoly {
    fn clone(&self) -> Self {
        let data = self
            .data
            .iter()
            .map(|limb| {
                let mut out = pool::acquire_uninit(limb.len());
                out.copy_from_slice(limb);
                out
            })
            .collect();
        RnsPoly { level: self.level, special: self.special, ntt_form: self.ntt_form, data }
    }
}

impl Drop for RnsPoly {
    fn drop(&mut self) {
        for limb in self.data.drain(..) {
            pool::release(limb);
        }
    }
}

impl RnsPoly {
    /// Modulus index in the context for component `k` of this poly.
    fn mod_index(&self, ctx: &RnsContext, k: usize) -> usize {
        mod_index_of(self.special, self.data.len(), ctx, k)
    }

    /// The zero polynomial at `level` (plus special prime if requested).
    pub fn zero(ctx: &RnsContext, level: usize, special: bool, ntt_form: bool) -> Self {
        let comps = level + special as usize;
        RnsPoly {
            level,
            special,
            ntt_form,
            data: (0..comps).map(|_| pool::acquire_zeroed(ctx.degree())).collect(),
        }
    }

    /// An uninitialized polynomial at `level`: every limb is pool-acquired
    /// with arbitrary contents. Callers must overwrite every residue.
    pub(crate) fn uninit(ctx: &RnsContext, level: usize, special: bool, ntt_form: bool) -> Self {
        let comps = level + special as usize;
        RnsPoly {
            level,
            special,
            ntt_form,
            data: (0..comps).map(|_| pool::acquire_uninit(ctx.degree())).collect(),
        }
    }

    /// Lifts signed coefficients into residues at `level` (plus special if
    /// requested), in coefficient form.
    pub fn from_signed(ctx: &RnsContext, coeffs: &[i64], level: usize, special: bool) -> Self {
        assert_eq!(coeffs.len(), ctx.degree());
        let mut poly = RnsPoly::uninit(ctx, level, special, false);
        let comps = poly.data.len();
        par::par_iter_mut(&mut poly.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            for (c, &v) in comp.iter_mut().zip(coeffs) {
                let r = v % q as i64;
                *c = if r < 0 { (r + q as i64) as u64 } else { r as u64 };
            }
        });
        poly
    }

    /// Converts all components to NTT form.
    pub fn ntt_forward(&mut self, ctx: &RnsContext) {
        assert!(!self.ntt_form, "already in NTT form");
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            ctx.ntt(mod_index_of(special, comps, ctx, k)).forward(comp);
        });
        self.ntt_form = true;
    }

    /// Converts all components back to coefficient form.
    pub fn ntt_inverse(&mut self, ctx: &RnsContext) {
        assert!(self.ntt_form, "not in NTT form");
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            ctx.ntt(mod_index_of(special, comps, ctx, k)).inverse(comp);
        });
        self.ntt_form = false;
    }

    fn check_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.level, other.level, "RNS level mismatch");
        assert_eq!(self.special, other.special, "special-prime presence mismatch");
        assert_eq!(self.ntt_form, other.ntt_form, "NTT form mismatch");
    }

    /// Compatibility for prefix ops: `other` may sit at a *higher* chain
    /// level — its first `self.data.len()` components align with ours.
    fn check_prefix_compatible(&self, other: &RnsPoly) {
        assert!(other.level >= self.level, "RNS level mismatch");
        assert!(!self.special && !other.special, "prefix ops are chain-only");
        assert_eq!(self.ntt_form, other.ntt_form, "NTT form mismatch");
    }

    /// `self += other`.
    pub fn add_assign(&mut self, ctx: &RnsContext, other: &RnsPoly) {
        self.check_compatible(other);
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            for (a, &b) in comp.iter_mut().zip(&other.data[k]) {
                *a = add_mod(*a, b, q);
            }
        });
    }

    /// `self += other` where `other` may live at a higher level; only the
    /// aligned chain prefix is read. Lets ciphertext-plaintext ops reuse a
    /// full-level plaintext without cloning and truncating it first.
    pub fn add_assign_prefix(&mut self, ctx: &RnsContext, other: &RnsPoly) {
        self.check_prefix_compatible(other);
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(k);
            for (a, &b) in comp.iter_mut().zip(&other.data[k]) {
                *a = add_mod(*a, b, q);
            }
        });
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, ctx: &RnsContext, other: &RnsPoly) {
        self.check_compatible(other);
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            for (a, &b) in comp.iter_mut().zip(&other.data[k]) {
                *a = sub_mod(*a, b, q);
            }
        });
    }

    /// `self -= other` with prefix alignment (see [`Self::add_assign_prefix`]).
    pub fn sub_assign_prefix(&mut self, ctx: &RnsContext, other: &RnsPoly) {
        self.check_prefix_compatible(other);
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(k);
            for (a, &b) in comp.iter_mut().zip(&other.data[k]) {
                *a = sub_mod(*a, b, q);
            }
        });
    }

    /// `self = -self`.
    pub fn neg_assign(&mut self, ctx: &RnsContext) {
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            for a in comp.iter_mut() {
                *a = neg_mod(*a, q);
            }
        });
    }

    /// Pointwise product (both operands must be in NTT form).
    pub fn mul(&self, ctx: &RnsContext, other: &RnsPoly) -> RnsPoly {
        let mut out = self.clone();
        out.mul_assign(ctx, other);
        out
    }

    /// `self *= other` pointwise (NTT form).
    pub fn mul_assign(&mut self, ctx: &RnsContext, other: &RnsPoly) {
        self.check_compatible(other);
        assert!(self.ntt_form, "ring products require NTT form");
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            for (a, &b) in comp.iter_mut().zip(&other.data[k]) {
                *a = mul_mod(*a, b, q);
            }
        });
    }

    /// `self *= other` pointwise with prefix alignment (NTT form).
    pub fn mul_assign_prefix(&mut self, ctx: &RnsContext, other: &RnsPoly) {
        self.check_prefix_compatible(other);
        assert!(self.ntt_form, "ring products require NTT form");
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(k);
            for (a, &b) in comp.iter_mut().zip(&other.data[k]) {
                *a = mul_mod(*a, b, q);
            }
        });
    }

    /// Multiplies every residue by a signed scalar.
    pub fn mul_scalar_assign(&mut self, ctx: &RnsContext, k_int: i128) {
        let (special, comps) = (self.special, self.data.len());
        par::par_iter_mut(&mut self.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            let kq = ((k_int % q as i128 + q as i128) % q as i128) as u64;
            for a in comp.iter_mut() {
                *a = mul_mod(*a, kq, q);
            }
        });
    }

    /// Adds a signed scalar to every residue (used to add a constant
    /// polynomial to an NTT-form component set).
    pub fn add_scalar_all_slots_assign(&mut self, ctx: &RnsContext, k_int: i128) {
        for k in 0..self.data.len() {
            let q = ctx.modulus(self.mod_index(ctx, k));
            let kq = ((k_int % q as i128 + q as i128) % q as i128) as u64;
            for a in self.data[k].iter_mut() {
                *a = add_mod(*a, kq, q);
            }
        }
    }

    /// Applies the Galois automorphism `X → X^g` (coefficient form only).
    pub fn automorphism(&self, ctx: &RnsContext, g: usize) -> RnsPoly {
        assert!(!self.ntt_form, "apply automorphisms in coefficient form");
        let mut out = RnsPoly::uninit(ctx, self.level, self.special, false);
        let (special, comps) = (self.special, self.data.len());
        let n = ctx.degree();
        let m = 2 * n;
        par::par_iter_mut(&mut out.data, |k, comp| {
            let q = ctx.modulus(mod_index_of(special, comps, ctx, k));
            // k·g mod 2n is a bijection on [0, 2n) for odd g, so every
            // output index is written exactly once.
            for (i, &c) in self.data[k].iter().enumerate() {
                let idx = i * g % m;
                if idx < n {
                    comp[idx] = c;
                } else {
                    comp[idx - n] = neg_mod(c, q);
                }
            }
        });
        out
    }

    /// Applies a Galois automorphism directly in evaluation form via a
    /// precomputed slot permutation (see [`RnsContext::auto_perm`]):
    /// `out[i] = self[perm[i]]` on every component. Exact — NTT evaluation
    /// slots carry no signs, the automorphism just permutes them.
    pub fn permute_ntt(&self, ctx: &RnsContext, perm: &[u32]) -> RnsPoly {
        assert!(self.ntt_form, "slot permutation requires NTT form");
        assert_eq!(perm.len(), ctx.degree());
        let mut out = RnsPoly::uninit(ctx, self.level, self.special, true);
        par::par_iter_mut(&mut out.data, |k, comp| {
            let src = &self.data[k];
            for (o, &p) in comp.iter_mut().zip(perm) {
                *o = src[p as usize];
            }
        });
        out
    }

    /// Drops chain primes down to `new_level` (modulus switching without
    /// rescaling). Requires the special component to be absent.
    pub fn drop_to_level(&mut self, new_level: usize) {
        assert!(!self.special, "cannot drop levels while special prime is attached");
        assert!(new_level >= 1 && new_level <= self.level, "invalid target level");
        while self.data.len() > new_level {
            if let Some(limb) = self.data.pop() {
                pool::release(limb);
            }
        }
        self.level = new_level;
    }

    /// Detaches the last component and returns it (caller owns the buffer
    /// and is responsible for returning it to the pool).
    pub(crate) fn pop_component(&mut self) -> Option<Vec<u64>> {
        self.data.pop()
    }
}

/// Component-`k` modulus index for a poly with `comps` components.
/// (Free function so per-limb closures can use it without borrowing the
/// whole poly.)
#[inline]
fn mod_index_of(special: bool, comps: usize, ctx: &RnsContext, k: usize) -> usize {
    if special && k == comps - 1 {
        ctx.special_index()
    } else {
        k
    }
}

/// Centered base conversion of one residue: interprets `v mod q_src` as a
/// signed value in `(−q_src/2, q_src/2]` and reduces it modulo `q_dst`.
#[inline]
pub fn centered_switch(v: u64, q_src: u64, q_dst: u64) -> u64 {
    if v > q_src / 2 {
        // negative: −(q_src − v)
        let mag = (q_src - v) % q_dst;
        if mag == 0 {
            0
        } else {
            q_dst - mag
        }
    } else {
        v % q_dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_hisa::params::EncryptionParams;

    fn ctx() -> RnsContext {
        RnsContext::new(&EncryptionParams::rns_ckks(1024, 40, 3))
    }

    #[test]
    fn from_signed_roundtrip_through_ntt() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..1024).map(|i| (i as i64 % 17) - 8).collect();
        let mut p = RnsPoly::from_signed(&c, &coeffs, 3, true);
        let before = p.clone();
        p.ntt_forward(&c);
        p.ntt_inverse(&c);
        for k in 0..p.data.len() {
            assert_eq!(p.data[k], before.data[k]);
        }
    }

    #[test]
    fn add_then_sub_is_identity() {
        let c = ctx();
        let a_coeffs: Vec<i64> = (0..1024).map(|i| i as i64 % 100).collect();
        let b_coeffs: Vec<i64> = (0..1024).map(|i| -(i as i64 % 50)).collect();
        let a = RnsPoly::from_signed(&c, &a_coeffs, 2, false);
        let b = RnsPoly::from_signed(&c, &b_coeffs, 2, false);
        let mut s = a.clone();
        s.add_assign(&c, &b);
        s.sub_assign(&c, &b);
        assert_eq!(s.data, a.data);
    }

    #[test]
    fn prefix_ops_match_truncated_ops() {
        let c = ctx();
        let a_coeffs: Vec<i64> = (0..1024).map(|i| i as i64 % 90 - 40).collect();
        let b_coeffs: Vec<i64> = (0..1024).map(|i| i as i64 % 70 - 30).collect();
        let a = RnsPoly::from_signed(&c, &a_coeffs, 2, false);
        let full = RnsPoly::from_signed(&c, &b_coeffs, 3, false); // higher level
        let mut truncated = full.clone();
        truncated.drop_to_level(2);

        let mut via_prefix = a.clone();
        via_prefix.add_assign_prefix(&c, &full);
        let mut via_trunc = a.clone();
        via_trunc.add_assign(&c, &truncated);
        assert_eq!(via_prefix.data, via_trunc.data);

        let mut via_prefix = a.clone();
        via_prefix.sub_assign_prefix(&c, &full);
        let mut via_trunc = a.clone();
        via_trunc.sub_assign(&c, &truncated);
        assert_eq!(via_prefix.data, via_trunc.data);

        let mut an = a.clone();
        an.ntt_forward(&c);
        let mut fln = full.clone();
        fln.ntt_forward(&c);
        let mut trn = truncated.clone();
        trn.ntt_forward(&c);
        let mut via_prefix = an.clone();
        via_prefix.mul_assign_prefix(&c, &fln);
        let mut via_trunc = an.clone();
        via_trunc.mul_assign(&c, &trn);
        assert_eq!(via_prefix.data, via_trunc.data);
    }

    #[test]
    fn neg_assign_is_additive_inverse() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..1024).map(|i| i as i64 % 200 - 100).collect();
        let a = RnsPoly::from_signed(&c, &coeffs, 3, true);
        let mut n = a.clone();
        n.neg_assign(&c);
        let mut s = a.clone();
        s.add_assign(&c, &n);
        for comp in &s.data {
            assert!(comp.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn ntt_mul_matches_schoolbook_on_small_poly() {
        let c = ctx();
        // a = 3 + 2X, b = 1 − X  ⇒ ab = 3 − X − 2X²
        let mut ac = vec![0i64; 1024];
        ac[0] = 3;
        ac[1] = 2;
        let mut bc = vec![0i64; 1024];
        bc[0] = 1;
        bc[1] = -1;
        let mut a = RnsPoly::from_signed(&c, &ac, 1, false);
        let mut b = RnsPoly::from_signed(&c, &bc, 1, false);
        a.ntt_forward(&c);
        b.ntt_forward(&c);
        let mut prod = a.mul(&c, &b);
        prod.ntt_inverse(&c);
        let q = c.modulus(0);
        assert_eq!(prod.data[0][0], 3);
        assert_eq!(prod.data[0][1], q - 1);
        assert_eq!(prod.data[0][2], q - 2);
        assert!(prod.data[0][3..].iter().all(|&x| x == 0));
    }

    #[test]
    fn automorphism_permutes_with_signs() {
        let c = ctx();
        // m = X: sigma_g(X) = X^g; for g=5, X^5.
        let mut mc = vec![0i64; 1024];
        mc[1] = 1;
        let m = RnsPoly::from_signed(&c, &mc, 1, false);
        let out = m.automorphism(&c, 5);
        assert_eq!(out.data[0][5], 1);
        assert_eq!(out.data[0][1], 0);
        // High-degree wraparound picks up a sign: X^1023 -> X^{5115 mod 2048 = 1019}...
        let mut hc = vec![0i64; 1024];
        hc[1023] = 1;
        let h = RnsPoly::from_signed(&c, &hc, 1, false);
        let out = h.automorphism(&c, 5);
        // 1023*5 = 5115; 5115 mod 2048 = 1019 < 1024, even number of wraps -> positive
        assert_eq!(out.data[0][1019], 1);
    }

    #[test]
    fn ntt_domain_automorphism_matches_coefficient_domain() {
        // The tentpole identity: NTT(σ_g(x)) == permute(NTT(x)) for the
        // context's precomputed permutation tables.
        let c = ctx();
        let coeffs: Vec<i64> = (0..1024).map(|i| (i as i64 * 37) % 1000 - 500).collect();
        let x = RnsPoly::from_signed(&c, &coeffs, 3, true);
        for g in [5usize, 25, 2047, 1229] {
            let mut via_coeff = x.automorphism(&c, g);
            via_coeff.ntt_forward(&c);
            let mut xn = x.clone();
            xn.ntt_forward(&c);
            let via_perm = xn.permute_ntt(&c, &c.auto_perm(g));
            assert_eq!(via_coeff.data, via_perm.data, "g={g}");
            assert_eq!(via_coeff.level, via_perm.level);
            assert!(via_perm.ntt_form);
        }
    }

    #[test]
    fn scalar_mul_handles_negatives() {
        let c = ctx();
        let mut mc = vec![0i64; 1024];
        mc[0] = 7;
        let mut m = RnsPoly::from_signed(&c, &mc, 2, false);
        m.mul_scalar_assign(&c, -3);
        let q = c.modulus(0);
        assert_eq!(m.data[0][0], q - 21);
    }

    #[test]
    fn centered_switch_small_values() {
        let q_src = 1000003u64;
        let q_dst = 97u64;
        assert_eq!(centered_switch(5, q_src, q_dst), 5);
        assert_eq!(centered_switch(q_src - 5, q_src, q_dst), 97 - 5);
        assert_eq!(centered_switch(0, q_src, q_dst), 0);
    }

    #[test]
    fn drop_level_truncates() {
        let c = ctx();
        let mut p = RnsPoly::zero(&c, 3, false, true);
        p.drop_to_level(1);
        assert_eq!(p.level, 1);
        assert_eq!(p.data.len(), 1);
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn mixed_level_ops_panic() {
        let c = ctx();
        let a = RnsPoly::zero(&c, 2, false, true);
        let b = RnsPoly::zero(&c, 3, false, true);
        let mut a2 = a;
        a2.add_assign(&c, &b);
    }
}
