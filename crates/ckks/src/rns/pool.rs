//! A process-wide free-list of RNS limb buffers.
//!
//! Steady-state encrypted inference on the RNS backend allocates and frees
//! the same `Vec<u64>` residue vectors (one per modulus, all of length
//! `N`) millions of times. This pool recycles them: [`RnsPoly`] limbs are
//! acquired here and returned on drop, so after a warm-up inference the
//! evaluator performs **zero** limb allocations — asserted by the
//! hot-path test suite via the hit/miss counters.
//!
//! Ownership rules (see DESIGN.md §16):
//! * Buffers are keyed by *length*. Every limb of a given context has
//!   length `N`, so in practice one size class per ring degree is live.
//! * A buffer acquired from the pool is exclusively owned by its
//!   `RnsPoly` (or local scratch user) until released; the pool never
//!   hands the same buffer out twice.
//! * Each size class is capped ([`MAX_PER_CLASS`]); beyond that, released
//!   buffers are genuinely freed. The cap bounds worst-case residency at a
//!   few hundred MB for production degrees while still covering the peak
//!   working set of an inference.
//!
//! [`RnsPoly`]: super::poly::RnsPoly

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// Maximum number of retained buffers per size class.
const MAX_PER_CLASS: usize = 4096;

struct LimbPool {
    classes: Mutex<HashMap<usize, Vec<Vec<u64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static POOL: LazyLock<LimbPool> = LazyLock::new(|| LimbPool {
    classes: Mutex::new(HashMap::new()),
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
});

fn lock_classes() -> std::sync::MutexGuard<'static, HashMap<usize, Vec<Vec<u64>>>> {
    // Poisoning cannot leave the free-list inconsistent (push/pop are
    // atomic with respect to the guard), so recover instead of unwrapping.
    POOL.classes.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Acquires a buffer of length `len` with unspecified (but valid) contents.
/// Use when every element is about to be overwritten.
pub fn acquire_uninit(len: usize) -> Vec<u64> {
    let recycled = lock_classes().get_mut(&len).and_then(Vec::pop);
    match recycled {
        Some(buf) => {
            POOL.hits.fetch_add(1, Ordering::Relaxed);
            debug_assert_eq!(buf.len(), len);
            buf
        }
        None => {
            POOL.misses.fetch_add(1, Ordering::Relaxed);
            vec![0u64; len]
        }
    }
}

/// Acquires a zero-filled buffer of length `len`.
pub fn acquire_zeroed(len: usize) -> Vec<u64> {
    let mut buf = acquire_uninit(len);
    buf.iter_mut().for_each(|x| *x = 0);
    buf
}

/// Returns a buffer to the pool (or frees it if its class is full).
pub fn release(buf: Vec<u64>) {
    if buf.is_empty() {
        return;
    }
    let len = buf.len();
    let mut classes = lock_classes();
    let class = classes.entry(len).or_default();
    if class.len() < MAX_PER_CLASS {
        class.push(buf);
    }
    // else: drop normally — the class is saturated.
}

/// `(hits, misses)` since process start or the last [`reset_stats`].
pub fn stats() -> (u64, u64) {
    (POOL.hits.load(Ordering::Relaxed), POOL.misses.load(Ordering::Relaxed))
}

/// Zeroes the hit/miss counters (the free-lists themselves are kept).
pub fn reset_stats() {
    POOL.hits.store(0, Ordering::Relaxed);
    POOL.misses.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_buffers_by_length() {
        // Use an odd length no other test shares, so concurrent test
        // threads cannot steal our buffer between release and acquire.
        let len = 12_347;
        let a = acquire_zeroed(len);
        release(a);
        let (h0, _) = stats();
        let b = acquire_uninit(len);
        assert_eq!(b.len(), len);
        let (h1, _) = stats();
        assert!(h1 > h0, "second acquire should hit the free-list");
        release(b);
    }

    #[test]
    fn zeroed_acquire_is_zero_even_after_reuse() {
        let len = 12_349;
        let mut a = acquire_zeroed(len);
        a.iter_mut().for_each(|x| *x = 0xDEAD);
        release(a);
        let b = acquire_zeroed(len);
        assert!(b.iter().all(|&x| x == 0));
        release(b);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        release(Vec::new());
        let (_, m0) = stats();
        let v = acquire_uninit(0);
        assert!(v.is_empty());
        let (_, m1) = stats();
        assert!(m1 > m0, "zero-length acquire should not hit");
    }
}
