//! Compact binary wire format for RNS-CKKS ciphertexts.
//!
//! In the paper's Figure 3 deployment the encrypted image travels from the
//! client to the server and the encrypted prediction travels back. This
//! module provides a versioned, length-checked binary codec for that hop
//! (keys and parameters serialize via their `serde` derives; ciphertexts
//! are the high-volume payload and get a dedicated format).

use super::poly::RnsPoly;
use super::scheme::RnsCiphertext;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic (`CHCT` = CHet CipherText).
const MAGIC: u32 = 0x43484354;
/// Current format version.
const VERSION: u8 = 1;

/// Error decoding a wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed ciphertext payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn write_poly(p: &RnsPoly, buf: &mut BytesMut) {
    buf.put_u32_le(p.level as u32);
    buf.put_u8(p.special as u8);
    buf.put_u8(p.ntt_form as u8);
    buf.put_u32_le(p.data.len() as u32);
    for comp in &p.data {
        buf.put_u32_le(comp.len() as u32);
        for &v in comp {
            buf.put_u64_le(v);
        }
    }
}

fn read_poly(buf: &mut Bytes) -> Result<RnsPoly, WireError> {
    if buf.remaining() < 10 {
        return Err(WireError("truncated polynomial header".into()));
    }
    let level = buf.get_u32_le() as usize;
    let special = buf.get_u8() != 0;
    let ntt_form = buf.get_u8() != 0;
    let comps = buf.get_u32_le() as usize;
    if comps != level + special as usize {
        return Err(WireError(format!(
            "component count {comps} inconsistent with level {level}"
        )));
    }
    if comps > 64 {
        return Err(WireError(format!("implausible component count {comps}")));
    }
    let mut data = Vec::with_capacity(comps);
    for _ in 0..comps {
        if buf.remaining() < 4 {
            return Err(WireError("truncated component header".into()));
        }
        let n = buf.get_u32_le() as usize;
        if !n.is_power_of_two() || n > 1 << 16 {
            return Err(WireError(format!("implausible ring degree {n}")));
        }
        if buf.remaining() < n * 8 {
            return Err(WireError("truncated component data".into()));
        }
        let mut comp = Vec::with_capacity(n);
        for _ in 0..n {
            comp.push(buf.get_u64_le());
        }
        data.push(comp);
    }
    Ok(RnsPoly { level, special, ntt_form, data })
}

/// Serializes a ciphertext into a standalone binary payload.
pub fn encode_ciphertext(ct: &RnsCiphertext) -> Bytes {
    let (c0, c1, scale) = ct.parts();
    let mut buf = BytesMut::with_capacity(16 + 8 * 2 * c0.data.len() * c0.data[0].len());
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_f64_le(scale);
    write_poly(c0, &mut buf);
    write_poly(c1, &mut buf);
    buf.freeze()
}

/// Deserializes a ciphertext produced by [`encode_ciphertext`].
///
/// # Errors
///
/// Returns [`WireError`] on wrong magic/version or any structural
/// inconsistency (the decoder never panics on attacker-controlled input).
pub fn decode_ciphertext(payload: &[u8]) -> Result<RnsCiphertext, WireError> {
    let mut buf = Bytes::copy_from_slice(payload);
    if buf.remaining() < 13 {
        return Err(WireError("payload too short".into()));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(WireError(format!("bad magic {magic:#x}")));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(WireError(format!("unsupported version {version}")));
    }
    let scale = buf.get_f64_le();
    if !(scale.is_finite() && scale >= 1.0) {
        return Err(WireError(format!("implausible scale {scale}")));
    }
    let c0 = read_poly(&mut buf)?;
    let c1 = read_poly(&mut buf)?;
    if c0.level != c1.level || c0.data.first().map(|c| c.len()) != c1.data.first().map(|c| c.len())
    {
        return Err(WireError("component polynomials disagree".into()));
    }
    if buf.has_remaining() {
        return Err(WireError(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(RnsCiphertext::from_parts(c0, c1, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rns::RnsCkks;
    use chet_hisa::{EncryptionParams, Hisa, RotationKeyPolicy, SecurityLevel};

    fn scheme() -> RnsCkks {
        let params = EncryptionParams::rns_ckks(2048, 40, 2)
            .with_security(SecurityLevel::Insecure);
        RnsCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 5)
    }

    #[test]
    fn roundtrip_preserves_plaintext() {
        let mut h = scheme();
        let pt = h.encode(&[1.25, -3.5, 42.0], 2f64.powi(28));
        let ct = h.encrypt(&pt);
        let bytes = encode_ciphertext(&ct);
        let back = decode_ciphertext(&bytes).expect("roundtrip decodes");
        let out_pt = h.decrypt(&back);
        let out = h.decode(&out_pt);
        assert!((out[0] - 1.25).abs() < 1e-3);
        assert!((out[1] + 3.5).abs() < 1e-3);
        assert!((out[2] - 42.0).abs() < 1e-3);
    }

    #[test]
    fn decoded_ciphertext_supports_further_ops() {
        let mut h = scheme();
        let pt = h.encode(&[2.0], 2f64.powi(28));
        let ct = h.encrypt(&pt);
        let back = decode_ciphertext(&encode_ciphertext(&ct)).unwrap();
        let sum = h.add(&ct, &back);
        let out_pt = h.decrypt(&sum);
        assert!((h.decode(&out_pt)[0] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut h = scheme();
        let pt = h.encode(&[1.0], 2f64.powi(28));
        let ct = h.encrypt(&pt);
        let bytes = encode_ciphertext(&ct);

        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(decode_ciphertext(&bad).is_err(), "bad magic must fail");

        let truncated = &bytes[..bytes.len() / 2];
        assert!(decode_ciphertext(truncated).is_err(), "truncation must fail");

        let mut trailing = bytes.to_vec();
        trailing.push(0);
        assert!(decode_ciphertext(&trailing).is_err(), "trailing bytes must fail");
    }

    #[test]
    fn rejects_inconsistent_structure() {
        let mut h = scheme();
        let pt = h.encode(&[1.0], 2f64.powi(28));
        let ct = h.encrypt(&pt);
        let bytes = encode_ciphertext(&ct).to_vec();
        // Corrupt the declared component count of the first polynomial.
        // Header: magic(4) + version(1) + scale(8) + level(4) + special(1) +
        // ntt(1) → comps at offset 19.
        let mut bad = bytes.clone();
        bad[19] = bad[19].wrapping_add(1);
        assert!(decode_ciphertext(&bad).is_err());
    }
}
