//! The RNS-CKKS scheme (SEAL v3.1 style) implementing the HISA.
//!
//! * Coefficient modulus: a chain of word-sized NTT primes; rescaling
//!   divides by chain primes from the back.
//! * Key switching: hybrid with one special prime `p` — evaluation keys are
//!   generated modulo `Q·p` with a per-chain-prime gadget, and switching
//!   ends with a rounding division by `p`, keeping noise growth additive.
//! * Rotations: Galois automorphisms `X → X^{5^r}` plus key switching; the
//!   available rotation keys follow the configured [`RotationKeyPolicy`].

use super::context::RnsContext;
use super::poly::{centered_switch, RnsPoly};
use super::pool;
use chet_hisa::keys::{normalize_rotation, plan_rotation, RotationKeyPolicy};
use chet_hisa::params::EncryptionParams;
use chet_hisa::{Hisa, HisaError};
use chet_math::crt::CrtBasis;
use chet_math::modint::{mul_mod, sub_mod};
use chet_math::par;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// An RNS-CKKS ciphertext: two NTT-form ring elements plus scale.
#[derive(Debug, Clone)]
pub struct RnsCiphertext {
    c0: RnsPoly,
    c1: RnsPoly,
    scale: f64,
}

impl RnsCiphertext {
    /// Current level (number of active chain primes).
    pub fn level(&self) -> usize {
        self.c0.level
    }

    /// Decomposes into components for the wire codec.
    pub(crate) fn parts(&self) -> (&RnsPoly, &RnsPoly, f64) {
        (&self.c0, &self.c1, self.scale)
    }

    /// Rebuilds from wire components.
    pub(crate) fn from_parts(c0: RnsPoly, c1: RnsPoly, scale: f64) -> Self {
        RnsCiphertext { c0, c1, scale }
    }

    /// Current fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// An encoded plaintext at the full chain level.
///
/// Alongside the RNS residues it keeps the exact integer coefficients (as
/// `f64`), so decoding is independent of the modulus size.
#[derive(Debug, Clone)]
pub struct RnsPlaintext {
    poly: RnsPoly,
    scale: f64,
    coeffs: Vec<f64>,
}

/// A key-switching key: one row per chain prime, each a pair of full-basis
/// (chain + special) NTT polynomials.
#[derive(Debug, Clone)]
struct KsKey {
    rows: Vec<(RnsPoly, RnsPoly)>,
}

/// The hoistable half of a key switch: the gadget digits of a polynomial,
/// base-converted to the full (chain-prefix + special) basis and
/// NTT-transformed.
///
/// Computing these digits — `level × (level+1)` base conversions and NTTs —
/// is the dominant cost of a key switch and depends only on the switched
/// polynomial, never on the key. [`RnsCkks::rot_left_many`] therefore
/// computes them once per source ciphertext and reuses them for every
/// requested rotation (nGraph-HE2's hoisting).
struct KsDigits {
    level: usize,
    /// `digits[i]`: digit `i` (the residues modulo chain prime `i`) over
    /// the full basis, NTT form.
    digits: Vec<RnsPoly>,
}

/// The RNS-CKKS scheme instance: parameters, secret/public/evaluation keys
/// and the RLWE sampling state.
///
/// For the client/server split of the paper's Figure 3, this object plays
/// both roles; the compiler emits which rotation keys it must generate.
pub struct RnsCkks {
    ctx: Arc<RnsContext>,
    /// Ternary secret key, signed coefficients.
    sk_coeffs: Vec<i64>,
    /// Secret key in NTT form over the full basis (chain + special).
    sk: RnsPoly,
    /// Public encryption key (full chain level, no special prime).
    pk: (RnsPoly, RnsPoly),
    /// Relinearization key behind an [`Arc`]: ops and [`Hisa::fork`] share
    /// it without deep-copying the per-prime rows.
    relin: Arc<KsKey>,
    galois: HashMap<usize, Arc<KsKey>>,
    key_steps: BTreeSet<usize>,
    error_stddev: f64,
    rng: StdRng,
    crt_cache: HashMap<usize, CrtBasis>,
}

impl std::fmt::Debug for RnsCkks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RnsCkks")
            .field("degree", &self.ctx.degree())
            .field("max_level", &self.ctx.max_level())
            .field("rotation_keys", &self.key_steps.len())
            .finish()
    }
}

impl RnsCkks {
    /// Generates a full key set for the given parameters and rotation-key
    /// policy, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not an RNS prime chain.
    pub fn new(params: &EncryptionParams, policy: &RotationKeyPolicy, seed: u64) -> Self {
        let ctx = Arc::new(RnsContext::new(params));
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ctx.degree();
        let r = ctx.max_level();
        let stddev = params.error_stddev;

        let sk_coeffs = crate::sampling::ternary(&mut rng, n);
        let mut sk = RnsPoly::from_signed(&ctx, &sk_coeffs, r, true);
        sk.ntt_forward(&ctx);

        // Public key: (−(a·s + e), a) over the chain primes.
        let (pk0, pk1) = {
            let a = Self::sample_uniform_ntt(&ctx, &mut rng, r, false);
            let e = Self::sample_error_ntt(&ctx, &mut rng, stddev, r, false);
            let mut sk_chain = sk.clone();
            sk_chain.special = false;
            if let Some(limb) = sk_chain.pop_component() {
                pool::release(limb);
            }
            let mut b = a.mul(&ctx, &sk_chain);
            b.add_assign(&ctx, &e);
            b.neg_assign(&ctx);
            (b, a)
        };

        let mut scheme = RnsCkks {
            ctx,
            sk_coeffs,
            sk,
            pk: (pk0, pk1),
            relin: Arc::new(KsKey { rows: Vec::new() }),
            galois: HashMap::new(),
            key_steps: BTreeSet::new(),
            error_stddev: stddev,
            rng,
            crt_cache: HashMap::new(),
        };

        // Relinearization key: switch from s² to s.
        let s_sq = scheme.sk.mul(&scheme.ctx, &scheme.sk);
        scheme.relin = Arc::new(scheme.gen_ks_key(&s_sq));

        // Rotation keys for the policy's steps.
        let steps = policy.steps(scheme.ctx.slots());
        for &step in &steps {
            let g = scheme.ctx.encoder().galois_element(step);
            let mut s_rot = RnsPoly::from_signed(&scheme.ctx, &scheme.sk_coeffs, r, true)
                .automorphism(&scheme.ctx, g);
            s_rot.ntt_forward(&scheme.ctx);
            let key = scheme.gen_ks_key(&s_rot);
            scheme.galois.insert(step, Arc::new(key));
        }
        scheme.key_steps = steps;
        scheme
    }

    /// Scheme context (degree, moduli, encoder).
    pub fn context(&self) -> &RnsContext {
        &self.ctx
    }

    /// Clones the scheme with the secret key replaced by an unrelated
    /// fresh secret (used by [`super::evaluator::RnsEvaluator`]): the
    /// public/evaluation keys still reference the original secret, so the
    /// clone can encrypt and evaluate but cannot recover plaintexts.
    pub(crate) fn clone_public_material(&self) -> RnsCkks {
        let mut rng = StdRng::seed_from_u64(0xE7A1);
        let fresh_coeffs = crate::sampling::ternary(&mut rng, self.ctx.degree());
        let mut fresh_sk =
            RnsPoly::from_signed(&self.ctx, &fresh_coeffs, self.ctx.max_level(), true);
        fresh_sk.ntt_forward(&self.ctx);
        RnsCkks {
            ctx: self.ctx.clone(),
            sk_coeffs: fresh_coeffs,
            sk: fresh_sk,
            pk: self.pk.clone(),
            relin: self.relin.clone(),
            galois: self.galois.clone(),
            key_steps: self.key_steps.clone(),
            error_stddev: self.error_stddev,
            rng,
            crt_cache: HashMap::new(),
        }
    }

    /// The rotation steps for which keys exist.
    pub fn rotation_key_steps(&self) -> &BTreeSet<usize> {
        &self.key_steps
    }

    fn sample_uniform_ntt(
        ctx: &RnsContext,
        rng: &mut StdRng,
        level: usize,
        special: bool,
    ) -> RnsPoly {
        // Fill pooled limbs in place (same draw order as
        // `sampling::uniform_mod`: component-major, coefficient-minor).
        let mut p = RnsPoly::uninit(ctx, level, special, true);
        let comps = p.data.len();
        for k in 0..comps {
            let idx = if special && k == comps - 1 { ctx.special_index() } else { k };
            let q = ctx.modulus(idx);
            for c in p.data[k].iter_mut() {
                *c = rng.gen_range(0..q);
            }
        }
        p
    }

    fn sample_error_ntt(
        ctx: &RnsContext,
        rng: &mut StdRng,
        stddev: f64,
        level: usize,
        special: bool,
    ) -> RnsPoly {
        let e = crate::sampling::gaussian(rng, ctx.degree(), stddev);
        let mut p = RnsPoly::from_signed(ctx, &e, level, special);
        p.ntt_forward(ctx);
        p
    }

    /// Generates a key-switching key from secret `s_from` (full-basis NTT)
    /// to the scheme secret `s`.
    fn gen_ks_key(&mut self, s_from: &RnsPoly) -> KsKey {
        // Disjoint field borrows: the context is read while the RNG mutates.
        let RnsCkks { ctx, rng, sk, error_stddev, .. } = self;
        let r = ctx.max_level();
        let mut rows = Vec::with_capacity(r);
        for i in 0..r {
            let a = Self::sample_uniform_ntt(ctx, rng, r, true);
            let e = Self::sample_error_ntt(ctx, rng, *error_stddev, r, true);
            let mut b = a.mul(ctx, sk);
            b.add_assign(ctx, &e);
            b.neg_assign(ctx);
            // Gadget: add (p mod q_i)·s_from on component i only.
            let q_i = ctx.modulus(i);
            let p_mod = ctx.special() % q_i;
            for (dst, &src) in b.data[i].iter_mut().zip(&s_from.data[i]) {
                *dst = (*dst + mul_mod(p_mod, src, q_i)) % q_i;
            }
            rows.push((b, a));
        }
        KsKey { rows }
    }

    /// Computes the hoistable half of a key switch: the gadget digits of a
    /// coefficient-form, chain-only polynomial `t`, base-converted to the
    /// full (chain-prefix + special) basis and NTT-transformed.
    ///
    /// The `(digit, component)` work items are flattened into one parallel
    /// region ([`par`] regions do not nest), each with a fixed index-ordered
    /// write target — results are bit-identical at any thread count.
    fn decompose(ctx: &RnsContext, t: &RnsPoly) -> KsDigits {
        assert!(!t.ntt_form && !t.special);
        let level = t.level;
        let comps = level + 1; // chain prefix + special
        let mut digits: Vec<RnsPoly> =
            (0..level).map(|_| RnsPoly::uninit(ctx, level, true, true)).collect();
        let mut jobs: Vec<(usize, usize, &mut Vec<u64>)> = Vec::with_capacity(level * comps);
        for (i, digit) in digits.iter_mut().enumerate() {
            for (k, limb) in digit.data.iter_mut().enumerate() {
                jobs.push((i, k, limb));
            }
        }
        par::par_iter_mut(&mut jobs, |_, (i, k, limb)| {
            let mod_idx = if *k == comps - 1 { ctx.special_index() } else { *k };
            let q = ctx.modulus(mod_idx);
            // Base-convert the unsigned decomposition digit, then NTT.
            for (dst, &v) in limb.iter_mut().zip(&t.data[*i]) {
                *dst = if v >= q { v % q } else { v };
            }
            ctx.ntt(mod_idx).forward(limb);
        });
        KsDigits { level, digits }
    }

    /// Inner products of precomputed digits with a key's rows, one output
    /// limb per full-basis modulus (NTT form). `perm`, when given, applies a
    /// Galois slot permutation to the digits on the fly — the hoisted
    /// rotation path — at zero extra passes over the data.
    ///
    /// Products of canonical residues (< 2^62) are accumulated in `u128`
    /// and reduced every 8 digits instead of per term: 8·(2^62−1)² plus a
    /// carried partial stays below 2^128.
    fn accumulate(
        ctx: &RnsContext,
        digits: &KsDigits,
        key: &KsKey,
        perm: Option<&[u32]>,
    ) -> (RnsPoly, RnsPoly) {
        let level = digits.level;
        let n = ctx.degree();
        let comps = level + 1;
        let mut acc0 = RnsPoly::uninit(ctx, level, true, true);
        let mut acc1 = RnsPoly::uninit(ctx, level, true, true);
        par::par_zip_mut(&mut acc0.data, &mut acc1.data, |k, acc0_k, acc1_k| {
            let mod_idx = if k == comps - 1 { ctx.special_index() } else { k };
            let q = ctx.modulus(mod_idx) as u128;
            // Key rows live at the full basis: chain j ↔ data[j],
            // special ↔ data[r].
            let key_k = if k == comps - 1 { ctx.max_level() } else { k };
            let dlimbs: Vec<&[u64]> =
                (0..level).map(|i| digits.digits[i].data[k].as_slice()).collect();
            let rows: Vec<(&[u64], &[u64])> = (0..level)
                .map(|i| {
                    (key.rows[i].0.data[key_k].as_slice(), key.rows[i].1.data[key_k].as_slice())
                })
                .collect();
            for idx in 0..n {
                let src = perm.map_or(idx, |p| p[idx] as usize);
                let mut s0: u128 = 0;
                let mut s1: u128 = 0;
                for (i, (dl, row)) in dlimbs.iter().zip(&rows).enumerate() {
                    let d = dl[src] as u128;
                    s0 += d * row.0[idx] as u128;
                    s1 += d * row.1[idx] as u128;
                    if i % 8 == 7 {
                        s0 %= q;
                        s1 %= q;
                    }
                }
                acc0_k[idx] = (s0 % q) as u64;
                acc1_k[idx] = (s1 % q) as u64;
            }
        });
        (acc0, acc1)
    }

    /// Key-switches a coefficient-form polynomial `t` (valid under some
    /// secret `s_from`) into a pair `(acc0, acc1)` valid under `s`, at `t`'s
    /// level, NTT form.
    fn switch_key(&self, t: &RnsPoly, key: &KsKey) -> (RnsPoly, RnsPoly) {
        let ctx = &self.ctx;
        let digits = Self::decompose(ctx, t);
        let (acc0, acc1) = Self::accumulate(ctx, &digits, key, None);
        (Self::mod_down_special(ctx, acc0), Self::mod_down_special(ctx, acc1))
    }

    /// Divides a (chain + special)-basis polynomial by the special prime
    /// with rounding, returning a chain-only polynomial (NTT form).
    fn mod_down_special(ctx: &RnsContext, mut poly: RnsPoly) -> RnsPoly {
        assert!(poly.special && poly.ntt_form);
        let level = poly.level;
        let p = ctx.special();
        // Bring the special component to coefficient form.
        let mut sp = poly.pop_component().expect("special component present");
        ctx.ntt(ctx.special_index()).inverse(&mut sp);
        poly.special = false;
        debug_assert_eq!(poly.data.len(), level);
        let sp_ref = &sp;
        par::par_iter_mut(&mut poly.data, |j, comp| {
            let q = ctx.modulus(j);
            let mut t = pool::acquire_uninit(sp_ref.len());
            for (dst, &v) in t.iter_mut().zip(sp_ref.iter()) {
                *dst = centered_switch(v, p, q);
            }
            ctx.ntt(j).forward(&mut t);
            let inv_p = ctx.inv_mod_of(ctx.special_index(), j);
            for (a, &b) in comp.iter_mut().zip(t.iter()) {
                *a = mul_mod(sub_mod(*a, b, q), inv_p, q);
            }
            pool::release(t);
        });
        pool::release(sp);
        poly
    }

    /// Drops both ciphertext components to `level` (modulus switch).
    fn align_level(&self, ct: &RnsCiphertext, level: usize) -> RnsCiphertext {
        if ct.level() == level {
            return ct.clone();
        }
        let mut out = ct.clone();
        out.c0.drop_to_level(level);
        out.c1.drop_to_level(level);
        out
    }

    fn check_scales(a: f64, b: f64) -> Result<(), HisaError> {
        if (a / b - 1.0).abs() < 1e-6 {
            Ok(())
        } else {
            Err(HisaError::ScaleMismatch { left: a, right: b })
        }
    }

    /// Rescales by exactly one chain prime (the last active one).
    fn rescale_one(&self, ct: &mut RnsCiphertext) {
        let ctx = &self.ctx;
        let level = ct.level();
        assert!(level > 1, "cannot rescale below level 1");
        let l = level - 1;
        let q_l = ctx.modulus(l);
        for c in [&mut ct.c0, &mut ct.c1] {
            let mut last = c.pop_component().expect("component");
            ctx.ntt(l).inverse(&mut last);
            c.level = l;
            let last_ref = &last;
            par::par_iter_mut(&mut c.data, |j, comp| {
                let q = ctx.modulus(j);
                let mut t = pool::acquire_uninit(last_ref.len());
                for (dst, &v) in t.iter_mut().zip(last_ref.iter()) {
                    *dst = centered_switch(v, q_l, q);
                }
                ctx.ntt(j).forward(&mut t);
                let inv = ctx.inv_mod_of(l, j);
                for (a, &b) in comp.iter_mut().zip(t.iter()) {
                    *a = mul_mod(sub_mod(*a, b, q), inv, q);
                }
                pool::release(t);
            });
            pool::release(last);
        }
        ct.scale /= q_l as f64;
    }

    /// Gadget-decomposes `ct.c1` — the hoistable (key-independent) half of
    /// a rotation's key switch.
    fn decompose_c1(&self, ct: &RnsCiphertext) -> KsDigits {
        let mut c1 = ct.c1.clone();
        c1.ntt_inverse(&self.ctx);
        Self::decompose(&self.ctx, &c1)
    }

    /// Finishes one rotation from precomputed digits of `ct.c1`: the Galois
    /// automorphism is a slot permutation in evaluation form, folded into
    /// the key-switch inner product ([`Self::accumulate`]) and applied to
    /// `c0` via [`RnsPoly::permute_ntt`] — no NTT round-trips per rotation.
    fn rotate_hoisted(
        &self,
        ct: &RnsCiphertext,
        digits: &KsDigits,
        step: usize,
    ) -> Result<RnsCiphertext, HisaError> {
        let ctx = &self.ctx;
        let g = ctx.encoder().galois_element(step);
        let key = self.galois.get(&step).ok_or_else(|| HisaError::MissingRotationKey {
            step,
            available: self.key_steps.iter().copied().collect(),
        })?;
        let perm = ctx.auto_perm(g);
        let (acc0, acc1) = Self::accumulate(ctx, digits, key, Some(&perm));
        let ks0 = Self::mod_down_special(ctx, acc0);
        let ks1 = Self::mod_down_special(ctx, acc1);
        let mut out0 = ct.c0.permute_ntt(ctx, &perm);
        out0.add_assign(ctx, &ks0);
        Ok(RnsCiphertext { c0: out0, c1: ks1, scale: ct.scale })
    }

    /// Applies one elementary rotation (a step with a dedicated key).
    ///
    /// Decompose-first: the single-rotation path is the hoisted path with a
    /// one-element batch, so singles and [`Hisa::rot_left_many`] are
    /// bit-identical by construction.
    fn rotate_step(&self, ct: &RnsCiphertext, step: usize) -> Result<RnsCiphertext, HisaError> {
        let digits = self.decompose_c1(ct);
        self.rotate_hoisted(ct, &digits, step)
    }
}

impl Hisa for RnsCkks {
    type Ct = RnsCiphertext;
    type Pt = RnsPlaintext;

    fn slots(&self) -> usize {
        self.ctx.slots()
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> RnsPlaintext {
        self.try_encode(values, scale).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_encode(&mut self, values: &[f64], scale: f64) -> Result<RnsPlaintext, HisaError> {
        if values.len() > self.ctx.slots() {
            return Err(HisaError::SlotOverflow {
                len: values.len(),
                slots: self.ctx.slots(),
            });
        }
        let int_coeffs = self.ctx.encoder().encode(values, scale);
        let mut poly = RnsPoly::from_signed(&self.ctx, &int_coeffs, self.ctx.max_level(), false);
        poly.ntt_forward(&self.ctx);
        let coeffs = int_coeffs.iter().map(|&c| c as f64).collect();
        Ok(RnsPlaintext { poly, scale, coeffs })
    }

    fn decode(&mut self, p: &RnsPlaintext) -> Vec<f64> {
        self.ctx.encoder().decode(&p.coeffs, p.scale)
    }

    fn encrypt(&mut self, p: &RnsPlaintext) -> RnsCiphertext {
        // Disjoint field borrows: keys/context are read, only the RNG
        // mutates.
        let RnsCkks { ctx, rng, pk, error_stddev, .. } = self;
        let r = ctx.max_level();
        let u_coeffs = crate::sampling::ternary(rng, ctx.degree());
        let mut u = RnsPoly::from_signed(ctx, &u_coeffs, r, false);
        u.ntt_forward(ctx);
        let e0 = Self::sample_error_ntt(ctx, rng, *error_stddev, r, false);
        let e1 = Self::sample_error_ntt(ctx, rng, *error_stddev, r, false);
        let mut c0 = pk.0.mul(ctx, &u);
        c0.add_assign(ctx, &e0);
        c0.add_assign(ctx, &p.poly);
        let mut c1 = pk.1.mul(ctx, &u);
        c1.add_assign(ctx, &e1);
        RnsCiphertext { c0, c1, scale: p.scale }
    }

    fn decrypt(&mut self, c: &RnsCiphertext) -> RnsPlaintext {
        let RnsCkks { ctx, sk, crt_cache, .. } = self;
        let level = c.level();
        let mut sk_l = sk.clone();
        sk_l.special = false;
        if let Some(limb) = sk_l.pop_component() {
            pool::release(limb);
        }
        sk_l.drop_to_level(level);
        let mut m = c.c1.mul(ctx, &sk_l);
        m.add_assign(ctx, &c.c0);
        m.ntt_inverse(ctx);
        // CRT-reconstruct centered coefficients to floats.
        let n = ctx.degree();
        let coeffs: Vec<f64> = if level == 1 {
            let q0 = ctx.modulus(0);
            m.data[0]
                .iter()
                .map(|&v| if v > q0 / 2 { -((q0 - v) as f64) } else { v as f64 })
                .collect()
        } else {
            let basis = crt_cache.entry(level).or_insert_with(|| {
                CrtBasis::new((0..level).map(|i| ctx.modulus(i)).collect())
            });
            (0..n)
                .map(|k| {
                    let residues: Vec<u64> = (0..level).map(|i| m.data[i][k]).collect();
                    let (neg, mag) = basis.reconstruct_centered(&residues);
                    let f = mag.to_f64();
                    if neg {
                        -f
                    } else {
                        f
                    }
                })
                .collect()
        };
        // Keep the exact reconstructed coefficients; rebuild residues so the
        // plaintext can also be reused in homomorphic ops.
        let int_coeffs: Vec<i64> = coeffs
            .iter()
            .map(|&c| c.clamp(-9.0e18, 9.0e18) as i64)
            .collect();
        let mut poly = RnsPoly::from_signed(&ctx, &int_coeffs, ctx.max_level(), false);
        poly.ntt_forward(&ctx);
        RnsPlaintext { poly, scale: c.scale, coeffs }
    }

    fn rot_left(&mut self, c: &RnsCiphertext, x: usize) -> RnsCiphertext {
        self.try_rot_left(c, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rot_left(&mut self, c: &RnsCiphertext, x: usize) -> Result<RnsCiphertext, HisaError> {
        let slots = self.slots();
        let step = normalize_rotation(x as i64, slots);
        if step == 0 {
            return Ok(c.clone());
        }
        let plan = plan_rotation(step, &self.key_steps, slots).ok_or_else(|| {
            HisaError::MissingRotationKey {
                step,
                available: self.key_steps.iter().copied().collect(),
            }
        })?;
        let mut out = c.clone();
        for s in plan {
            out = self.rotate_step(&out, s)?;
        }
        Ok(out)
    }

    fn rot_right(&mut self, c: &RnsCiphertext, x: usize) -> RnsCiphertext {
        self.try_rot_right(c, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rot_right(&mut self, c: &RnsCiphertext, x: usize) -> Result<RnsCiphertext, HisaError> {
        let slots = self.slots();
        let step = normalize_rotation(-(x as i64), slots);
        self.try_rot_left(c, step)
    }

    fn rot_left_many(&mut self, c: &RnsCiphertext, steps: &[usize]) -> Vec<RnsCiphertext> {
        self.try_rot_left_many(c, steps).unwrap_or_else(|e| panic!("{e}"))
    }

    fn rot_right_many(&mut self, c: &RnsCiphertext, steps: &[usize]) -> Vec<RnsCiphertext> {
        self.try_rot_right_many(c, steps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Hoisted multi-rotation: the gadget decomposition of `c1` — the
    /// dominant cost of a rotation's key switch — is computed once and
    /// shared by the first hop of every requested step. Remaining hops of
    /// composite plans fall back to single [`Self::rotate_step`]s, which
    /// use the same decompose-first path, so every output is bit-identical
    /// to the corresponding single-rotation call.
    fn try_rot_left_many(
        &mut self,
        c: &RnsCiphertext,
        steps: &[usize],
    ) -> Result<Vec<RnsCiphertext>, HisaError> {
        let slots = self.slots();
        // Plan every step up front so a missing key fails the whole batch
        // before any work is done.
        let mut plans = Vec::with_capacity(steps.len());
        let mut any = false;
        for &x in steps {
            let step = normalize_rotation(x as i64, slots);
            if step == 0 {
                plans.push(None);
            } else {
                let plan = plan_rotation(step, &self.key_steps, slots).ok_or_else(|| {
                    HisaError::MissingRotationKey {
                        step,
                        available: self.key_steps.iter().copied().collect(),
                    }
                })?;
                any = true;
                plans.push(Some(plan));
            }
        }
        if !any {
            return Ok(plans.iter().map(|_| c.clone()).collect());
        }
        let digits = self.decompose_c1(c);
        let mut out = Vec::with_capacity(steps.len());
        for plan in &plans {
            match plan {
                None => out.push(c.clone()),
                Some(hops) => {
                    let mut cur = self.rotate_hoisted(c, &digits, hops[0])?;
                    for &s in &hops[1..] {
                        cur = self.rotate_step(&cur, s)?;
                    }
                    out.push(cur);
                }
            }
        }
        Ok(out)
    }

    fn try_rot_right_many(
        &mut self,
        c: &RnsCiphertext,
        steps: &[usize],
    ) -> Result<Vec<RnsCiphertext>, HisaError> {
        let slots = self.slots();
        let lefts: Vec<usize> =
            steps.iter().map(|&x| normalize_rotation(-(x as i64), slots)).collect();
        self.try_rot_left_many(c, &lefts)
    }

    fn add(&mut self, a: &RnsCiphertext, b: &RnsCiphertext) -> RnsCiphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add(
        &mut self,
        a: &RnsCiphertext,
        b: &RnsCiphertext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, b.scale)?;
        let level = a.level().min(b.level());
        let mut x = self.align_level(a, level);
        let y = self.align_level(b, level);
        x.c0.add_assign(&self.ctx, &y.c0);
        x.c1.add_assign(&self.ctx, &y.c1);
        Ok(x)
    }

    fn add_assign(&mut self, a: &mut RnsCiphertext, b: &RnsCiphertext) {
        Self::check_scales(a.scale, b.scale).unwrap_or_else(|e| panic!("{e}"));
        let level = a.level().min(b.level());
        if a.level() > level {
            a.c0.drop_to_level(level);
            a.c1.drop_to_level(level);
        }
        // `b` may sit at a higher level; the prefix ops read its aligned
        // chain prefix in place — no clone, no truncation.
        a.c0.add_assign_prefix(&self.ctx, &b.c0);
        a.c1.add_assign_prefix(&self.ctx, &b.c1);
    }

    fn add_plain(&mut self, a: &RnsCiphertext, p: &RnsPlaintext) -> RnsCiphertext {
        self.try_add_plain(a, p).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add_plain(
        &mut self,
        a: &RnsCiphertext,
        p: &RnsPlaintext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, p.scale)?;
        let mut out = a.clone();
        out.c0.add_assign_prefix(&self.ctx, &p.poly);
        Ok(out)
    }

    fn add_plain_assign(&mut self, a: &mut RnsCiphertext, p: &RnsPlaintext) {
        Self::check_scales(a.scale, p.scale).unwrap_or_else(|e| panic!("{e}"));
        a.c0.add_assign_prefix(&self.ctx, &p.poly);
    }

    fn add_scalar(&mut self, a: &RnsCiphertext, x: f64) -> RnsCiphertext {
        let mut out = a.clone();
        self.add_scalar_assign(&mut out, x);
        out
    }

    fn add_scalar_assign(&mut self, a: &mut RnsCiphertext, x: f64) {
        let k = (x * a.scale).round() as i128;
        a.c0.add_scalar_all_slots_assign(&self.ctx, k);
    }

    fn sub_scalar_assign(&mut self, a: &mut RnsCiphertext, x: f64) {
        self.add_scalar_assign(a, -x);
    }

    fn sub(&mut self, a: &RnsCiphertext, b: &RnsCiphertext) -> RnsCiphertext {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_sub(
        &mut self,
        a: &RnsCiphertext,
        b: &RnsCiphertext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, b.scale)?;
        let level = a.level().min(b.level());
        let mut x = self.align_level(a, level);
        let y = self.align_level(b, level);
        x.c0.sub_assign(&self.ctx, &y.c0);
        x.c1.sub_assign(&self.ctx, &y.c1);
        Ok(x)
    }

    fn sub_assign(&mut self, a: &mut RnsCiphertext, b: &RnsCiphertext) {
        Self::check_scales(a.scale, b.scale).unwrap_or_else(|e| panic!("{e}"));
        let level = a.level().min(b.level());
        if a.level() > level {
            a.c0.drop_to_level(level);
            a.c1.drop_to_level(level);
        }
        a.c0.sub_assign_prefix(&self.ctx, &b.c0);
        a.c1.sub_assign_prefix(&self.ctx, &b.c1);
    }

    fn sub_plain(&mut self, a: &RnsCiphertext, p: &RnsPlaintext) -> RnsCiphertext {
        self.try_sub_plain(a, p).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_sub_plain(
        &mut self,
        a: &RnsCiphertext,
        p: &RnsPlaintext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, p.scale)?;
        let mut out = a.clone();
        out.c0.sub_assign_prefix(&self.ctx, &p.poly);
        Ok(out)
    }

    fn sub_plain_assign(&mut self, a: &mut RnsCiphertext, p: &RnsPlaintext) {
        Self::check_scales(a.scale, p.scale).unwrap_or_else(|e| panic!("{e}"));
        a.c0.sub_assign_prefix(&self.ctx, &p.poly);
    }

    fn sub_scalar(&mut self, a: &RnsCiphertext, x: f64) -> RnsCiphertext {
        self.add_scalar(a, -x)
    }

    fn mul(&mut self, a: &RnsCiphertext, b: &RnsCiphertext) -> RnsCiphertext {
        let ctx = &self.ctx;
        let level = a.level().min(b.level());
        let x = self.align_level(a, level);
        let y = self.align_level(b, level);
        let d0 = x.c0.mul(ctx, &y.c0);
        let mut d1 = x.c0.mul(ctx, &y.c1);
        d1.add_assign(ctx, &x.c1.mul(ctx, &y.c0));
        let mut d2 = x.c1.mul(ctx, &y.c1);
        // Relinearize d2·s² back to a degree-1 ciphertext.
        d2.ntt_inverse(ctx);
        let (ks0, ks1) = self.switch_key(&d2, &self.relin);
        let mut c0 = d0;
        c0.add_assign(ctx, &ks0);
        let mut c1 = d1;
        c1.add_assign(ctx, &ks1);
        RnsCiphertext { c0, c1, scale: x.scale * y.scale }
    }

    fn mul_plain(&mut self, a: &RnsCiphertext, p: &RnsPlaintext) -> RnsCiphertext {
        let mut out = a.clone();
        self.mul_plain_assign(&mut out, p);
        out
    }

    fn mul_plain_assign(&mut self, a: &mut RnsCiphertext, p: &RnsPlaintext) {
        a.c0.mul_assign_prefix(&self.ctx, &p.poly);
        a.c1.mul_assign_prefix(&self.ctx, &p.poly);
        a.scale *= p.scale;
    }

    fn mul_scalar(&mut self, a: &RnsCiphertext, x: f64, scale: f64) -> RnsCiphertext {
        let mut out = a.clone();
        self.mul_scalar_assign(&mut out, x, scale);
        out
    }

    fn mul_scalar_assign(&mut self, a: &mut RnsCiphertext, x: f64, scale: f64) {
        assert!(scale >= 1.0, "scalar scale must be >= 1");
        let k = (x * scale).round() as i128;
        a.c0.mul_scalar_assign(&self.ctx, k);
        a.c1.mul_scalar_assign(&self.ctx, k);
        a.scale *= scale;
    }

    fn rescale(&mut self, c: &RnsCiphertext, divisor: f64) -> RnsCiphertext {
        self.try_rescale(c, divisor).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rescale(
        &mut self,
        c: &RnsCiphertext,
        divisor: f64,
    ) -> Result<RnsCiphertext, HisaError> {
        if divisor <= 1.0 {
            return Ok(c.clone());
        }
        let mut out = c.clone();
        let mut d = divisor;
        let mut consumed = 0usize;
        while d > 1.5 {
            if out.level() <= 1 {
                return Err(HisaError::LevelExhausted {
                    remaining: (c.level() - 1) as f64,
                    requested: (consumed + 1) as f64,
                });
            }
            let q_last = self.ctx.modulus(out.level() - 1) as f64;
            self.rescale_one(&mut out);
            consumed += 1;
            d /= q_last;
        }
        if (d - 1.0).abs() >= 1e-6 {
            return Err(HisaError::InvalidRescale {
                divisor,
                reason: "not a product of the next chain primes".into(),
            });
        }
        Ok(out)
    }

    fn max_rescale(&mut self, c: &RnsCiphertext, ub: f64) -> f64 {
        if ub < 2.0 {
            return 1.0;
        }
        let mut prod = 1.0f64;
        let mut lvl = c.level();
        while lvl > 1 {
            let p = self.ctx.modulus(lvl - 1) as f64;
            if prod * p > ub {
                break;
            }
            prod *= p;
            lvl -= 1;
        }
        prod
    }

    fn scale_of(&self, c: &RnsCiphertext) -> f64 {
        c.scale
    }

    fn available_rotations(&self) -> Option<BTreeSet<usize>> {
        Some(self.key_steps.clone())
    }

    /// Forks a child scheme for one fan-out job: the key material is shared
    /// via [`Arc`], and the child RNG is seeded from the parent's stream so
    /// the (parent, child₀, child₁, …) randomness split is a pure function
    /// of program order — independent of how many threads later run the
    /// children.
    fn fork(&mut self) -> Option<Self> {
        let child_seed = self.rng.next_u64();
        Some(RnsCkks {
            ctx: self.ctx.clone(),
            sk_coeffs: self.sk_coeffs.clone(),
            sk: self.sk.clone(),
            pk: self.pk.clone(),
            relin: Arc::clone(&self.relin),
            galois: self.galois.clone(),
            key_steps: self.key_steps.clone(),
            error_stddev: self.error_stddev,
            rng: StdRng::seed_from_u64(child_seed),
            crt_cache: HashMap::new(),
        })
    }

    fn join(&mut self, child: Self) {
        // Evaluation ops are deterministic and keep no counters here; the
        // child's RNG stream was split off at fork time, so dropping it
        // leaves the parent stream unchanged.
        let _ = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = (1u64 << 30) as f64;

    fn scheme() -> RnsCkks {
        let params = EncryptionParams::rns_ckks(2048, 40, 3)
            .with_security(chet_hisa::SecurityLevel::Insecure);
        RnsCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 12345)
    }

    fn enc(h: &mut RnsCkks, vals: &[f64]) -> RnsCiphertext {
        let pt = h.encode(vals, SCALE);
        h.encrypt(&pt)
    }

    fn dec(h: &mut RnsCkks, ct: &RnsCiphertext) -> Vec<f64> {
        let pt = h.decrypt(ct);
        h.decode(&pt)
    }

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < tol, "slot {i}: got {g}, want {w}");
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut h = scheme();
        let vals = [1.5, -2.25, 3.0, 0.0, 100.0];
        let ct = enc(&mut h, &vals);
        assert_close(&dec(&mut h, &ct)[..5], &vals, 1e-3);
    }

    #[test]
    fn homomorphic_addition() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.0, 2.0, 3.0]);
        let b = enc(&mut h, &[10.0, 20.0, 30.0]);
        let c = h.add(&a, &b);
        assert_close(&dec(&mut h, &c)[..3], &[11.0, 22.0, 33.0], 1e-3);
    }

    #[test]
    fn homomorphic_multiplication_with_rescale() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.5, -2.0, 4.0]);
        let b = enc(&mut h, &[2.0, 3.0, -1.5]);
        let c = h.mul(&a, &b);
        assert_eq!(h.scale_of(&c), SCALE * SCALE);
        let d = h.max_rescale(&c, SCALE * SCALE);
        assert!(d > 1.0);
        let c = h.rescale(&c, d);
        assert_close(&dec(&mut h, &c)[..3], &[3.0, -6.0, -6.0], 1e-2);
    }

    #[test]
    fn plaintext_multiplication() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.0, 2.0, 3.0, 4.0]);
        let w = h.encode(&[0.5, -1.0, 2.0, 0.0], SCALE);
        let c = h.mul_plain(&a, &w);
        let d = h.max_rescale(&c, SCALE * SCALE);
        let c = h.rescale(&c, d);
        assert_close(&dec(&mut h, &c)[..4], &[0.5, -2.0, 6.0, 0.0], 1e-2);
    }

    #[test]
    fn scalar_ops() {
        let mut h = scheme();
        let a = enc(&mut h, &[2.0, -4.0]);
        let b = h.mul_scalar(&a, 2.5, SCALE);
        let d = h.max_rescale(&b, SCALE * SCALE);
        let b = h.rescale(&b, d);
        let b = h.add_scalar(&b, 1.0);
        assert_close(&dec(&mut h, &b)[..2], &[6.0, -9.0], 1e-2);
    }

    #[test]
    fn rotation_left_and_right() {
        let mut h = scheme();
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let ct = enc(&mut h, &vals);
        let r1 = h.rot_left(&ct, 1);
        let out = dec(&mut h, &r1);
        assert_close(&out[..4], &[1.0, 2.0, 3.0, 4.0], 1e-2);
        let r2 = h.rot_right(&ct, 2);
        let out = dec(&mut h, &r2);
        assert_close(&out[2..6], &[0.0, 1.0, 2.0, 3.0], 1e-2);
    }

    #[test]
    fn composite_rotation() {
        let mut h = scheme();
        let vals: Vec<f64> = (0..32).map(|i| (i as f64) * 0.5).collect();
        let ct = enc(&mut h, &vals);
        let r = h.rot_left(&ct, 7); // 4 + 2 + 1 under power-of-two keys
        let out = dec(&mut h, &r);
        assert_close(&out[..4], &[3.5, 4.0, 4.5, 5.0], 1e-2);
    }

    #[test]
    fn depth_two_computation() {
        // ((a*b rescaled) * c rescaled) with 3 chain primes.
        let mut h = scheme();
        let a = enc(&mut h, &[2.0]);
        let b = enc(&mut h, &[3.0]);
        let c = enc(&mut h, &[4.0]);
        let ab = h.mul(&a, &b);
        let d = h.max_rescale(&ab, SCALE * SCALE);
        let ab = h.rescale(&ab, d);
        let cc = h.align_level(&c, ab.level());
        // Scales differ slightly (SCALE² / q vs SCALE); rescale made scale
        // SCALE²/q. Multiply anyway: mul does not require equal scales.
        let abc = h.mul(&ab, &cc);
        // Decode at the large product scale directly; a final rescale would
        // shrink the scale to ~2^10 and surface the rounding noise.
        let out = dec(&mut h, &abc);
        assert!((out[0] - 24.0).abs() < 0.05, "got {}", out[0]);
    }

    #[test]
    fn add_plain_and_sub() {
        let mut h = scheme();
        let a = enc(&mut h, &[5.0, 7.0]);
        let p = h.encode(&[1.0, 2.0], SCALE);
        let b = h.add_plain(&a, &p);
        assert_close(&dec(&mut h, &b)[..2], &[6.0, 9.0], 1e-2);
        let c = h.sub_plain(&b, &p);
        assert_close(&dec(&mut h, &c)[..2], &[5.0, 7.0], 1e-2);
        let d = h.sub(&b, &a);
        assert_close(&dec(&mut h, &d)[..2], &[1.0, 2.0], 1e-2);
    }

    #[test]
    fn exact_rotation_keys_only() {
        let params = EncryptionParams::rns_ckks(2048, 40, 2)
            .with_security(chet_hisa::SecurityLevel::Insecure);
        let policy = RotationKeyPolicy::Exact([3usize, 5].into_iter().collect());
        let mut h = RnsCkks::new(&params, &policy, 7);
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let pt = h.encode(&vals, SCALE);
        let ct = h.encrypt(&pt);
        let r = h.rot_left(&ct, 5);
        let ptd = h.decrypt(&r);
        let out = h.decode(&ptd);
        assert!((out[0] - 5.0).abs() < 1e-2);
        // Composite 8 = 3 + 5.
        let r = h.rot_left(&ct, 8);
        let ptd = h.decrypt(&r);
        let out = h.decode(&ptd);
        assert!((out[0] - 8.0).abs() < 1e-2, "got {}", out[0]);
    }

    #[test]
    fn noise_stays_bounded_after_many_adds() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.0]);
        let mut acc = a.clone();
        for _ in 0..63 {
            acc = h.add(&acc, &a);
        }
        let out = dec(&mut h, &acc);
        assert!((out[0] - 64.0).abs() < 0.01, "got {}", out[0]);
    }
}
