//! The RNS-CKKS scheme (SEAL v3.1 style) implementing the HISA.
//!
//! * Coefficient modulus: a chain of word-sized NTT primes; rescaling
//!   divides by chain primes from the back.
//! * Key switching: hybrid with one special prime `p` — evaluation keys are
//!   generated modulo `Q·p` with a per-chain-prime gadget, and switching
//!   ends with a rounding division by `p`, keeping noise growth additive.
//! * Rotations: Galois automorphisms `X → X^{5^r}` plus key switching; the
//!   available rotation keys follow the configured [`RotationKeyPolicy`].

use super::context::RnsContext;
use super::poly::{centered_switch, RnsPoly};
use chet_hisa::keys::{normalize_rotation, plan_rotation, RotationKeyPolicy};
use chet_hisa::params::EncryptionParams;
use chet_hisa::{Hisa, HisaError};
use chet_math::crt::CrtBasis;
use chet_math::modint::{mul_mod, sub_mod};
use chet_math::par;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// An RNS-CKKS ciphertext: two NTT-form ring elements plus scale.
#[derive(Debug, Clone)]
pub struct RnsCiphertext {
    c0: RnsPoly,
    c1: RnsPoly,
    scale: f64,
}

impl RnsCiphertext {
    /// Current level (number of active chain primes).
    pub fn level(&self) -> usize {
        self.c0.level
    }

    /// Decomposes into components for the wire codec.
    pub(crate) fn parts(&self) -> (&RnsPoly, &RnsPoly, f64) {
        (&self.c0, &self.c1, self.scale)
    }

    /// Rebuilds from wire components.
    pub(crate) fn from_parts(c0: RnsPoly, c1: RnsPoly, scale: f64) -> Self {
        RnsCiphertext { c0, c1, scale }
    }

    /// Current fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// An encoded plaintext at the full chain level.
///
/// Alongside the RNS residues it keeps the exact integer coefficients (as
/// `f64`), so decoding is independent of the modulus size.
#[derive(Debug, Clone)]
pub struct RnsPlaintext {
    poly: RnsPoly,
    scale: f64,
    coeffs: Vec<f64>,
}

/// A key-switching key: one row per chain prime, each a pair of full-basis
/// (chain + special) NTT polynomials.
#[derive(Debug, Clone)]
struct KsKey {
    rows: Vec<(RnsPoly, RnsPoly)>,
}

/// The RNS-CKKS scheme instance: parameters, secret/public/evaluation keys
/// and the RLWE sampling state.
///
/// For the client/server split of the paper's Figure 3, this object plays
/// both roles; the compiler emits which rotation keys it must generate.
pub struct RnsCkks {
    ctx: Arc<RnsContext>,
    /// Ternary secret key, signed coefficients.
    sk_coeffs: Vec<i64>,
    /// Secret key in NTT form over the full basis (chain + special).
    sk: RnsPoly,
    /// Public encryption key (full chain level, no special prime).
    pk: (RnsPoly, RnsPoly),
    /// Relinearization key behind an [`Arc`]: ops and [`Hisa::fork`] share
    /// it without deep-copying the per-prime rows.
    relin: Arc<KsKey>,
    galois: HashMap<usize, Arc<KsKey>>,
    key_steps: BTreeSet<usize>,
    error_stddev: f64,
    rng: StdRng,
    crt_cache: HashMap<usize, CrtBasis>,
}

impl std::fmt::Debug for RnsCkks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RnsCkks")
            .field("degree", &self.ctx.degree())
            .field("max_level", &self.ctx.max_level())
            .field("rotation_keys", &self.key_steps.len())
            .finish()
    }
}

impl RnsCkks {
    /// Generates a full key set for the given parameters and rotation-key
    /// policy, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not an RNS prime chain.
    pub fn new(params: &EncryptionParams, policy: &RotationKeyPolicy, seed: u64) -> Self {
        let ctx = Arc::new(RnsContext::new(params));
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ctx.degree();
        let r = ctx.max_level();
        let stddev = params.error_stddev;

        let sk_coeffs = crate::sampling::ternary(&mut rng, n);
        let mut sk = RnsPoly::from_signed(&ctx, &sk_coeffs, r, true);
        sk.ntt_forward(&ctx);

        // Public key: (−(a·s + e), a) over the chain primes.
        let (pk0, pk1) = {
            let a = Self::sample_uniform_ntt(&ctx, &mut rng, r, false);
            let e = Self::sample_error_ntt(&ctx, &mut rng, stddev, r, false);
            let mut sk_chain = sk.clone();
            sk_chain.special = false;
            sk_chain.data.truncate(r);
            let mut b = a.mul(&ctx, &sk_chain);
            b.add_assign(&ctx, &e);
            b.neg_assign(&ctx);
            (b, a)
        };

        let mut scheme = RnsCkks {
            ctx,
            sk_coeffs,
            sk,
            pk: (pk0, pk1),
            relin: Arc::new(KsKey { rows: Vec::new() }),
            galois: HashMap::new(),
            key_steps: BTreeSet::new(),
            error_stddev: stddev,
            rng,
            crt_cache: HashMap::new(),
        };

        // Relinearization key: switch from s² to s.
        let s_sq = scheme.sk.mul(&scheme.ctx.clone(), &scheme.sk);
        scheme.relin = Arc::new(scheme.gen_ks_key(&s_sq));

        // Rotation keys for the policy's steps.
        let steps = policy.steps(scheme.ctx.slots());
        for &step in &steps {
            let g = scheme.ctx.encoder().galois_element(step);
            let mut s_rot =
                RnsPoly::from_signed(&scheme.ctx.clone(), &scheme.sk_coeffs, r, true);
            let s_rot_coeff = s_rot.automorphism(&scheme.ctx.clone(), g);
            s_rot = s_rot_coeff;
            s_rot.ntt_forward(&scheme.ctx.clone());
            let key = scheme.gen_ks_key(&s_rot);
            scheme.galois.insert(step, Arc::new(key));
        }
        scheme.key_steps = steps;
        scheme
    }

    /// Scheme context (degree, moduli, encoder).
    pub fn context(&self) -> &RnsContext {
        &self.ctx
    }

    /// Clones the scheme with the secret key replaced by an unrelated
    /// fresh secret (used by [`super::evaluator::RnsEvaluator`]): the
    /// public/evaluation keys still reference the original secret, so the
    /// clone can encrypt and evaluate but cannot recover plaintexts.
    pub(crate) fn clone_public_material(&self) -> RnsCkks {
        let mut rng = StdRng::seed_from_u64(0xE7A1);
        let fresh_coeffs = crate::sampling::ternary(&mut rng, self.ctx.degree());
        let mut fresh_sk =
            RnsPoly::from_signed(&self.ctx, &fresh_coeffs, self.ctx.max_level(), true);
        fresh_sk.ntt_forward(&self.ctx);
        RnsCkks {
            ctx: self.ctx.clone(),
            sk_coeffs: fresh_coeffs,
            sk: fresh_sk,
            pk: self.pk.clone(),
            relin: self.relin.clone(),
            galois: self.galois.clone(),
            key_steps: self.key_steps.clone(),
            error_stddev: self.error_stddev,
            rng,
            crt_cache: HashMap::new(),
        }
    }

    /// The rotation steps for which keys exist.
    pub fn rotation_key_steps(&self) -> &BTreeSet<usize> {
        &self.key_steps
    }

    fn sample_uniform_ntt(
        ctx: &RnsContext,
        rng: &mut StdRng,
        level: usize,
        special: bool,
    ) -> RnsPoly {
        let mut p = RnsPoly::zero(ctx, level, special, true);
        let comps = p.data.len();
        for k in 0..comps {
            let idx = if special && k == comps - 1 { ctx.special_index() } else { k };
            p.data[k] = crate::sampling::uniform_mod(rng, ctx.degree(), ctx.modulus(idx));
        }
        p
    }

    fn sample_error_ntt(
        ctx: &RnsContext,
        rng: &mut StdRng,
        stddev: f64,
        level: usize,
        special: bool,
    ) -> RnsPoly {
        let e = crate::sampling::gaussian(rng, ctx.degree(), stddev);
        let mut p = RnsPoly::from_signed(ctx, &e, level, special);
        p.ntt_forward(ctx);
        p
    }

    /// Generates a key-switching key from secret `s_from` (full-basis NTT)
    /// to the scheme secret `s`.
    fn gen_ks_key(&mut self, s_from: &RnsPoly) -> KsKey {
        let ctx = self.ctx.clone();
        let r = ctx.max_level();
        let mut rows = Vec::with_capacity(r);
        for i in 0..r {
            let a = Self::sample_uniform_ntt(&ctx, &mut self.rng, r, true);
            let e = Self::sample_error_ntt(&ctx, &mut self.rng, self.error_stddev, r, true);
            let mut b = a.mul(&ctx, &self.sk);
            b.add_assign(&ctx, &e);
            b.neg_assign(&ctx);
            // Gadget: add (p mod q_i)·s_from on component i only.
            let q_i = ctx.modulus(i);
            let p_mod = ctx.special() % q_i;
            for (dst, &src) in b.data[i].iter_mut().zip(&s_from.data[i]) {
                *dst = (*dst + mul_mod(p_mod, src, q_i)) % q_i;
            }
            rows.push((b, a));
        }
        KsKey { rows }
    }

    /// Key-switches a coefficient-form polynomial `t` (valid under some
    /// secret `s_from`) into a pair `(acc0, acc1)` valid under `s`, at `t`'s
    /// level, NTT form.
    ///
    /// The loop nest is component-outer: each output limb `k` accumulates
    /// over every decomposition digit independently, so the limbs fan out
    /// across the [`par`] pool with a fixed (index-ordered) write target —
    /// results are bit-identical at any thread count.
    fn switch_key(&self, t: &RnsPoly, key: &KsKey) -> (RnsPoly, RnsPoly) {
        let ctx = &self.ctx;
        assert!(!t.ntt_form && !t.special);
        let level = t.level;
        let n = ctx.degree();
        let mut acc0 = RnsPoly::zero(ctx, level, true, true);
        let mut acc1 = RnsPoly::zero(ctx, level, true, true);
        let comps = level + 1; // chain prefix + special
        par::par_zip_mut(&mut acc0.data, &mut acc1.data, |k, acc0_k, acc1_k| {
            let mod_idx = if k == comps - 1 { ctx.special_index() } else { k };
            let q = ctx.modulus(mod_idx);
            // Key rows live at the full basis: chain j ↔ data[j],
            // special ↔ data[r].
            let key_k = if k == comps - 1 { ctx.max_level() } else { k };
            for i in 0..level {
                let d = &t.data[i];
                let (row_b, row_a) = &key.rows[i];
                // Base-convert the unsigned decomposition digit, then NTT.
                let mut tmp: Vec<u64> =
                    d.iter().map(|&v| if v >= q { v % q } else { v }).collect();
                ctx.ntt(mod_idx).forward(&mut tmp);
                let b_comp = &row_b.data[key_k];
                let a_comp = &row_a.data[key_k];
                for idx in 0..n {
                    acc0_k[idx] =
                        (acc0_k[idx] + mul_mod(tmp[idx], b_comp[idx], q)) % q;
                    acc1_k[idx] =
                        (acc1_k[idx] + mul_mod(tmp[idx], a_comp[idx], q)) % q;
                }
            }
        });
        (self.mod_down_special(acc0), self.mod_down_special(acc1))
    }

    /// Divides a (chain + special)-basis polynomial by the special prime
    /// with rounding, returning a chain-only polynomial (NTT form).
    fn mod_down_special(&self, mut poly: RnsPoly) -> RnsPoly {
        let ctx = &self.ctx;
        assert!(poly.special && poly.ntt_form);
        let level = poly.level;
        let p = ctx.special();
        // Bring the special component to coefficient form.
        let mut sp = poly.data.pop().expect("special component present");
        ctx.ntt(ctx.special_index()).inverse(&mut sp);
        poly.special = false;
        debug_assert_eq!(poly.data.len(), level);
        let sp_ref = &sp;
        par::par_iter_mut(&mut poly.data, |j, comp| {
            let q = ctx.modulus(j);
            let mut t: Vec<u64> =
                sp_ref.iter().map(|&v| centered_switch(v, p, q)).collect();
            ctx.ntt(j).forward(&mut t);
            let inv_p = ctx.inv_mod_of(ctx.special_index(), j);
            for (a, &b) in comp.iter_mut().zip(&t) {
                *a = mul_mod(sub_mod(*a, b, q), inv_p, q);
            }
        });
        poly
    }

    /// Drops both ciphertext components to `level` (modulus switch).
    fn align_level(&self, ct: &RnsCiphertext, level: usize) -> RnsCiphertext {
        if ct.level() == level {
            return ct.clone();
        }
        let mut out = ct.clone();
        out.c0.drop_to_level(level);
        out.c1.drop_to_level(level);
        out
    }

    fn check_scales(a: f64, b: f64) -> Result<(), HisaError> {
        if (a / b - 1.0).abs() < 1e-6 {
            Ok(())
        } else {
            Err(HisaError::ScaleMismatch { left: a, right: b })
        }
    }

    /// Rescales by exactly one chain prime (the last active one).
    fn rescale_one(&self, ct: &mut RnsCiphertext) {
        let ctx = &self.ctx;
        let level = ct.level();
        assert!(level > 1, "cannot rescale below level 1");
        let l = level - 1;
        let q_l = ctx.modulus(l);
        for c in [&mut ct.c0, &mut ct.c1] {
            let mut last = c.data.pop().expect("component");
            ctx.ntt(l).inverse(&mut last);
            c.level = l;
            let last_ref = &last;
            par::par_iter_mut(&mut c.data, |j, comp| {
                let q = ctx.modulus(j);
                let mut t: Vec<u64> =
                    last_ref.iter().map(|&v| centered_switch(v, q_l, q)).collect();
                ctx.ntt(j).forward(&mut t);
                let inv = ctx.inv_mod_of(l, j);
                for (a, &b) in comp.iter_mut().zip(&t) {
                    *a = mul_mod(sub_mod(*a, b, q), inv, q);
                }
            });
        }
        ct.scale /= q_l as f64;
    }

    fn crt_basis(&mut self, level: usize) -> &CrtBasis {
        let ctx = self.ctx.clone();
        self.crt_cache.entry(level).or_insert_with(|| {
            CrtBasis::new((0..level).map(|i| ctx.modulus(i)).collect())
        })
    }

    /// Applies one elementary rotation (a step with a dedicated key).
    fn rotate_step(&mut self, ct: &RnsCiphertext, step: usize) -> Result<RnsCiphertext, HisaError> {
        let ctx = self.ctx.clone();
        let g = ctx.encoder().galois_element(step);
        // Arc clone only: the rows stay shared with the key table.
        let key = Arc::clone(self.galois.get(&step).ok_or_else(|| {
            HisaError::MissingRotationKey {
                step,
                available: self.key_steps.iter().copied().collect(),
            }
        })?);
        let mut c0 = ct.c0.clone();
        let mut c1 = ct.c1.clone();
        c0.ntt_inverse(&ctx);
        c1.ntt_inverse(&ctx);
        let mut c0g = c0.automorphism(&ctx, g);
        let c1g = c1.automorphism(&ctx, g);
        c0g.ntt_forward(&ctx);
        let (ks0, ks1) = self.switch_key(&c1g, &key);
        let mut out0 = c0g;
        out0.add_assign(&ctx, &ks0);
        Ok(RnsCiphertext { c0: out0, c1: ks1, scale: ct.scale })
    }
}

impl Hisa for RnsCkks {
    type Ct = RnsCiphertext;
    type Pt = RnsPlaintext;

    fn slots(&self) -> usize {
        self.ctx.slots()
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> RnsPlaintext {
        self.try_encode(values, scale).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_encode(&mut self, values: &[f64], scale: f64) -> Result<RnsPlaintext, HisaError> {
        if values.len() > self.ctx.slots() {
            return Err(HisaError::SlotOverflow {
                len: values.len(),
                slots: self.ctx.slots(),
            });
        }
        let int_coeffs = self.ctx.encoder().encode(values, scale);
        let mut poly = RnsPoly::from_signed(&self.ctx, &int_coeffs, self.ctx.max_level(), false);
        poly.ntt_forward(&self.ctx);
        let coeffs = int_coeffs.iter().map(|&c| c as f64).collect();
        Ok(RnsPlaintext { poly, scale, coeffs })
    }

    fn decode(&mut self, p: &RnsPlaintext) -> Vec<f64> {
        self.ctx.encoder().decode(&p.coeffs, p.scale)
    }

    fn encrypt(&mut self, p: &RnsPlaintext) -> RnsCiphertext {
        let ctx = self.ctx.clone();
        let r = ctx.max_level();
        let u_coeffs = crate::sampling::ternary(&mut self.rng, ctx.degree());
        let mut u = RnsPoly::from_signed(&ctx, &u_coeffs, r, false);
        u.ntt_forward(&ctx);
        let e0 = Self::sample_error_ntt(&ctx, &mut self.rng, self.error_stddev, r, false);
        let e1 = Self::sample_error_ntt(&ctx, &mut self.rng, self.error_stddev, r, false);
        let mut c0 = self.pk.0.mul(&ctx, &u);
        c0.add_assign(&ctx, &e0);
        c0.add_assign(&ctx, &p.poly);
        let mut c1 = self.pk.1.mul(&ctx, &u);
        c1.add_assign(&ctx, &e1);
        RnsCiphertext { c0, c1, scale: p.scale }
    }

    fn decrypt(&mut self, c: &RnsCiphertext) -> RnsPlaintext {
        let ctx = self.ctx.clone();
        let level = c.level();
        let mut sk_l = self.sk.clone();
        sk_l.special = false;
        sk_l.data.truncate(ctx.max_level());
        sk_l.drop_to_level(level);
        let mut m = c.c1.mul(&ctx, &sk_l);
        m.add_assign(&ctx, &c.c0);
        m.ntt_inverse(&ctx);
        // CRT-reconstruct centered coefficients to floats.
        let n = ctx.degree();
        let coeffs: Vec<f64> = if level == 1 {
            let q0 = ctx.modulus(0);
            m.data[0]
                .iter()
                .map(|&v| if v > q0 / 2 { -((q0 - v) as f64) } else { v as f64 })
                .collect()
        } else {
            let basis = self.crt_basis(level).clone();
            (0..n)
                .map(|k| {
                    let residues: Vec<u64> = (0..level).map(|i| m.data[i][k]).collect();
                    let (neg, mag) = basis.reconstruct_centered(&residues);
                    let f = mag.to_f64();
                    if neg {
                        -f
                    } else {
                        f
                    }
                })
                .collect()
        };
        // Keep the exact reconstructed coefficients; rebuild residues so the
        // plaintext can also be reused in homomorphic ops.
        let int_coeffs: Vec<i64> = coeffs
            .iter()
            .map(|&c| c.clamp(-9.0e18, 9.0e18) as i64)
            .collect();
        let mut poly = RnsPoly::from_signed(&ctx, &int_coeffs, ctx.max_level(), false);
        poly.ntt_forward(&ctx);
        RnsPlaintext { poly, scale: c.scale, coeffs }
    }

    fn rot_left(&mut self, c: &RnsCiphertext, x: usize) -> RnsCiphertext {
        self.try_rot_left(c, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rot_left(&mut self, c: &RnsCiphertext, x: usize) -> Result<RnsCiphertext, HisaError> {
        let slots = self.slots();
        let step = normalize_rotation(x as i64, slots);
        if step == 0 {
            return Ok(c.clone());
        }
        let plan = plan_rotation(step, &self.key_steps, slots).ok_or_else(|| {
            HisaError::MissingRotationKey {
                step,
                available: self.key_steps.iter().copied().collect(),
            }
        })?;
        let mut out = c.clone();
        for s in plan {
            out = self.rotate_step(&out, s)?;
        }
        Ok(out)
    }

    fn rot_right(&mut self, c: &RnsCiphertext, x: usize) -> RnsCiphertext {
        self.try_rot_right(c, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rot_right(&mut self, c: &RnsCiphertext, x: usize) -> Result<RnsCiphertext, HisaError> {
        let slots = self.slots();
        let step = normalize_rotation(-(x as i64), slots);
        self.try_rot_left(c, step)
    }

    fn add(&mut self, a: &RnsCiphertext, b: &RnsCiphertext) -> RnsCiphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add(
        &mut self,
        a: &RnsCiphertext,
        b: &RnsCiphertext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, b.scale)?;
        let level = a.level().min(b.level());
        let mut x = self.align_level(a, level);
        let y = self.align_level(b, level);
        x.c0.add_assign(&self.ctx, &y.c0);
        x.c1.add_assign(&self.ctx, &y.c1);
        Ok(x)
    }

    fn add_plain(&mut self, a: &RnsCiphertext, p: &RnsPlaintext) -> RnsCiphertext {
        self.try_add_plain(a, p).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add_plain(
        &mut self,
        a: &RnsCiphertext,
        p: &RnsPlaintext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, p.scale)?;
        let mut pt = p.poly.clone();
        pt.drop_to_level(a.level());
        let mut out = a.clone();
        out.c0.add_assign(&self.ctx, &pt);
        Ok(out)
    }

    fn add_scalar(&mut self, a: &RnsCiphertext, x: f64) -> RnsCiphertext {
        let k = (x * a.scale).round() as i128;
        let mut out = a.clone();
        out.c0.add_scalar_all_slots_assign(&self.ctx, k);
        out
    }

    fn sub(&mut self, a: &RnsCiphertext, b: &RnsCiphertext) -> RnsCiphertext {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_sub(
        &mut self,
        a: &RnsCiphertext,
        b: &RnsCiphertext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, b.scale)?;
        let level = a.level().min(b.level());
        let mut x = self.align_level(a, level);
        let y = self.align_level(b, level);
        x.c0.sub_assign(&self.ctx, &y.c0);
        x.c1.sub_assign(&self.ctx, &y.c1);
        Ok(x)
    }

    fn sub_plain(&mut self, a: &RnsCiphertext, p: &RnsPlaintext) -> RnsCiphertext {
        self.try_sub_plain(a, p).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_sub_plain(
        &mut self,
        a: &RnsCiphertext,
        p: &RnsPlaintext,
    ) -> Result<RnsCiphertext, HisaError> {
        Self::check_scales(a.scale, p.scale)?;
        let mut pt = p.poly.clone();
        pt.drop_to_level(a.level());
        let mut out = a.clone();
        out.c0.sub_assign(&self.ctx, &pt);
        Ok(out)
    }

    fn sub_scalar(&mut self, a: &RnsCiphertext, x: f64) -> RnsCiphertext {
        self.add_scalar(a, -x)
    }

    fn mul(&mut self, a: &RnsCiphertext, b: &RnsCiphertext) -> RnsCiphertext {
        let ctx = self.ctx.clone();
        let level = a.level().min(b.level());
        let x = self.align_level(a, level);
        let y = self.align_level(b, level);
        let d0 = x.c0.mul(&ctx, &y.c0);
        let mut d1 = x.c0.mul(&ctx, &y.c1);
        d1.add_assign(&ctx, &x.c1.mul(&ctx, &y.c0));
        let mut d2 = x.c1.mul(&ctx, &y.c1);
        // Relinearize d2·s² back to a degree-1 ciphertext.
        d2.ntt_inverse(&ctx);
        let relin = Arc::clone(&self.relin);
        let (ks0, ks1) = self.switch_key(&d2, &relin);
        let mut c0 = d0;
        c0.add_assign(&ctx, &ks0);
        let mut c1 = d1;
        c1.add_assign(&ctx, &ks1);
        RnsCiphertext { c0, c1, scale: x.scale * y.scale }
    }

    fn mul_plain(&mut self, a: &RnsCiphertext, p: &RnsPlaintext) -> RnsCiphertext {
        let mut pt = p.poly.clone();
        pt.drop_to_level(a.level());
        let mut out = a.clone();
        out.c0.mul_assign(&self.ctx, &pt);
        out.c1.mul_assign(&self.ctx, &pt);
        out.scale = a.scale * p.scale;
        out
    }

    fn mul_scalar(&mut self, a: &RnsCiphertext, x: f64, scale: f64) -> RnsCiphertext {
        assert!(scale >= 1.0, "scalar scale must be >= 1");
        let k = (x * scale).round() as i128;
        let mut out = a.clone();
        out.c0.mul_scalar_assign(&self.ctx, k);
        out.c1.mul_scalar_assign(&self.ctx, k);
        out.scale = a.scale * scale;
        out
    }

    fn rescale(&mut self, c: &RnsCiphertext, divisor: f64) -> RnsCiphertext {
        self.try_rescale(c, divisor).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_rescale(
        &mut self,
        c: &RnsCiphertext,
        divisor: f64,
    ) -> Result<RnsCiphertext, HisaError> {
        if divisor <= 1.0 {
            return Ok(c.clone());
        }
        let mut out = c.clone();
        let mut d = divisor;
        let mut consumed = 0usize;
        while d > 1.5 {
            if out.level() <= 1 {
                return Err(HisaError::LevelExhausted {
                    remaining: (c.level() - 1) as f64,
                    requested: (consumed + 1) as f64,
                });
            }
            let q_last = self.ctx.modulus(out.level() - 1) as f64;
            self.rescale_one(&mut out);
            consumed += 1;
            d /= q_last;
        }
        if (d - 1.0).abs() >= 1e-6 {
            return Err(HisaError::InvalidRescale {
                divisor,
                reason: "not a product of the next chain primes".into(),
            });
        }
        Ok(out)
    }

    fn max_rescale(&mut self, c: &RnsCiphertext, ub: f64) -> f64 {
        if ub < 2.0 {
            return 1.0;
        }
        let mut prod = 1.0f64;
        let mut lvl = c.level();
        while lvl > 1 {
            let p = self.ctx.modulus(lvl - 1) as f64;
            if prod * p > ub {
                break;
            }
            prod *= p;
            lvl -= 1;
        }
        prod
    }

    fn scale_of(&self, c: &RnsCiphertext) -> f64 {
        c.scale
    }

    fn available_rotations(&self) -> Option<BTreeSet<usize>> {
        Some(self.key_steps.clone())
    }

    /// Forks a child scheme for one fan-out job: the key material is shared
    /// via [`Arc`], and the child RNG is seeded from the parent's stream so
    /// the (parent, child₀, child₁, …) randomness split is a pure function
    /// of program order — independent of how many threads later run the
    /// children.
    fn fork(&mut self) -> Option<Self> {
        let child_seed = self.rng.next_u64();
        Some(RnsCkks {
            ctx: self.ctx.clone(),
            sk_coeffs: self.sk_coeffs.clone(),
            sk: self.sk.clone(),
            pk: self.pk.clone(),
            relin: Arc::clone(&self.relin),
            galois: self.galois.clone(),
            key_steps: self.key_steps.clone(),
            error_stddev: self.error_stddev,
            rng: StdRng::seed_from_u64(child_seed),
            crt_cache: HashMap::new(),
        })
    }

    fn join(&mut self, child: Self) {
        // Evaluation ops are deterministic and keep no counters here; the
        // child's RNG stream was split off at fork time, so dropping it
        // leaves the parent stream unchanged.
        let _ = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = (1u64 << 30) as f64;

    fn scheme() -> RnsCkks {
        let params = EncryptionParams::rns_ckks(2048, 40, 3)
            .with_security(chet_hisa::SecurityLevel::Insecure);
        RnsCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 12345)
    }

    fn enc(h: &mut RnsCkks, vals: &[f64]) -> RnsCiphertext {
        let pt = h.encode(vals, SCALE);
        h.encrypt(&pt)
    }

    fn dec(h: &mut RnsCkks, ct: &RnsCiphertext) -> Vec<f64> {
        let pt = h.decrypt(ct);
        h.decode(&pt)
    }

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < tol, "slot {i}: got {g}, want {w}");
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut h = scheme();
        let vals = [1.5, -2.25, 3.0, 0.0, 100.0];
        let ct = enc(&mut h, &vals);
        assert_close(&dec(&mut h, &ct)[..5], &vals, 1e-3);
    }

    #[test]
    fn homomorphic_addition() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.0, 2.0, 3.0]);
        let b = enc(&mut h, &[10.0, 20.0, 30.0]);
        let c = h.add(&a, &b);
        assert_close(&dec(&mut h, &c)[..3], &[11.0, 22.0, 33.0], 1e-3);
    }

    #[test]
    fn homomorphic_multiplication_with_rescale() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.5, -2.0, 4.0]);
        let b = enc(&mut h, &[2.0, 3.0, -1.5]);
        let c = h.mul(&a, &b);
        assert_eq!(h.scale_of(&c), SCALE * SCALE);
        let d = h.max_rescale(&c, SCALE * SCALE);
        assert!(d > 1.0);
        let c = h.rescale(&c, d);
        assert_close(&dec(&mut h, &c)[..3], &[3.0, -6.0, -6.0], 1e-2);
    }

    #[test]
    fn plaintext_multiplication() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.0, 2.0, 3.0, 4.0]);
        let w = h.encode(&[0.5, -1.0, 2.0, 0.0], SCALE);
        let c = h.mul_plain(&a, &w);
        let d = h.max_rescale(&c, SCALE * SCALE);
        let c = h.rescale(&c, d);
        assert_close(&dec(&mut h, &c)[..4], &[0.5, -2.0, 6.0, 0.0], 1e-2);
    }

    #[test]
    fn scalar_ops() {
        let mut h = scheme();
        let a = enc(&mut h, &[2.0, -4.0]);
        let b = h.mul_scalar(&a, 2.5, SCALE);
        let d = h.max_rescale(&b, SCALE * SCALE);
        let b = h.rescale(&b, d);
        let b = h.add_scalar(&b, 1.0);
        assert_close(&dec(&mut h, &b)[..2], &[6.0, -9.0], 1e-2);
    }

    #[test]
    fn rotation_left_and_right() {
        let mut h = scheme();
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let ct = enc(&mut h, &vals);
        let r1 = h.rot_left(&ct, 1);
        let out = dec(&mut h, &r1);
        assert_close(&out[..4], &[1.0, 2.0, 3.0, 4.0], 1e-2);
        let r2 = h.rot_right(&ct, 2);
        let out = dec(&mut h, &r2);
        assert_close(&out[2..6], &[0.0, 1.0, 2.0, 3.0], 1e-2);
    }

    #[test]
    fn composite_rotation() {
        let mut h = scheme();
        let vals: Vec<f64> = (0..32).map(|i| (i as f64) * 0.5).collect();
        let ct = enc(&mut h, &vals);
        let r = h.rot_left(&ct, 7); // 4 + 2 + 1 under power-of-two keys
        let out = dec(&mut h, &r);
        assert_close(&out[..4], &[3.5, 4.0, 4.5, 5.0], 1e-2);
    }

    #[test]
    fn depth_two_computation() {
        // ((a*b rescaled) * c rescaled) with 3 chain primes.
        let mut h = scheme();
        let a = enc(&mut h, &[2.0]);
        let b = enc(&mut h, &[3.0]);
        let c = enc(&mut h, &[4.0]);
        let ab = h.mul(&a, &b);
        let d = h.max_rescale(&ab, SCALE * SCALE);
        let ab = h.rescale(&ab, d);
        let cc = h.align_level(&c, ab.level());
        // Scales differ slightly (SCALE² / q vs SCALE); rescale made scale
        // SCALE²/q. Multiply anyway: mul does not require equal scales.
        let abc = h.mul(&ab, &cc);
        // Decode at the large product scale directly; a final rescale would
        // shrink the scale to ~2^10 and surface the rounding noise.
        let out = dec(&mut h, &abc);
        assert!((out[0] - 24.0).abs() < 0.05, "got {}", out[0]);
    }

    #[test]
    fn add_plain_and_sub() {
        let mut h = scheme();
        let a = enc(&mut h, &[5.0, 7.0]);
        let p = h.encode(&[1.0, 2.0], SCALE);
        let b = h.add_plain(&a, &p);
        assert_close(&dec(&mut h, &b)[..2], &[6.0, 9.0], 1e-2);
        let c = h.sub_plain(&b, &p);
        assert_close(&dec(&mut h, &c)[..2], &[5.0, 7.0], 1e-2);
        let d = h.sub(&b, &a);
        assert_close(&dec(&mut h, &d)[..2], &[1.0, 2.0], 1e-2);
    }

    #[test]
    fn exact_rotation_keys_only() {
        let params = EncryptionParams::rns_ckks(2048, 40, 2)
            .with_security(chet_hisa::SecurityLevel::Insecure);
        let policy = RotationKeyPolicy::Exact([3usize, 5].into_iter().collect());
        let mut h = RnsCkks::new(&params, &policy, 7);
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let pt = h.encode(&vals, SCALE);
        let ct = h.encrypt(&pt);
        let r = h.rot_left(&ct, 5);
        let ptd = h.decrypt(&r);
        let out = h.decode(&ptd);
        assert!((out[0] - 5.0).abs() < 1e-2);
        // Composite 8 = 3 + 5.
        let r = h.rot_left(&ct, 8);
        let ptd = h.decrypt(&r);
        let out = h.decode(&ptd);
        assert!((out[0] - 8.0).abs() < 1e-2, "got {}", out[0]);
    }

    #[test]
    fn noise_stays_bounded_after_many_adds() {
        let mut h = scheme();
        let a = enc(&mut h, &[1.0]);
        let mut acc = a.clone();
        for _ in 0..63 {
            acc = h.add(&acc, &a);
        }
        let out = dec(&mut h, &acc);
        assert!((out[0] - 64.0).abs() < 0.01, "got {}", out[0]);
    }
}
