//! Shared precomputations for an RNS-CKKS instance.

use crate::encoding::CkksEncoder;
use chet_hisa::params::{EncryptionParams, ModulusSpec};
use chet_math::modint::inv_mod;
use chet_math::ntt::{bit_reverse, NttTable};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Immutable per-instance data: the modulus chain, NTT tables, pairwise
/// modular inverses and the slot encoder.
///
/// Modulus layout: `moduli[0..num_chain]` is the rescaling chain — index 0
/// is the *base* prime (consumed last, anchors output precision), index
/// `num_chain − 1` is consumed first. `moduli[num_chain]` is the special
/// key-switching prime.
#[derive(Debug)]
pub struct RnsContext {
    degree: usize,
    moduli: Vec<u64>,
    num_chain: usize,
    ntt: Vec<NttTable>,
    /// `inv[i][j] = moduli[i]^{-1} mod moduli[j]` (diagonal unused).
    inv: Vec<Vec<u64>>,
    encoder: CkksEncoder,
    /// Lazily built NTT-domain automorphism tables, keyed by Galois
    /// element: `perm[i]` is the evaluation slot that moves to slot `i`
    /// under `X → X^g`.
    auto_perms: Mutex<HashMap<usize, Arc<Vec<u32>>>>,
}

impl RnsContext {
    /// Builds the context from RNS-CKKS encryption parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not a prime chain, contain non-NTT
    /// moduli, or duplicate primes.
    pub fn new(params: &EncryptionParams) -> Self {
        let (chain, special) = match &params.modulus {
            ModulusSpec::PrimeChain { primes, special } => (primes.clone(), *special),
            ModulusSpec::PowerOfTwo { .. } => {
                panic!("RnsContext requires a prime-chain modulus")
            }
        };
        assert!(!chain.is_empty(), "prime chain must be non-empty");
        let mut moduli = chain;
        let num_chain = moduli.len();
        moduli.push(special);
        let degree = params.degree;
        let ntt: Vec<NttTable> = moduli
            .iter()
            .map(|&q| NttTable::new(q, degree).expect("modulus must be NTT friendly"))
            .collect();
        let k = moduli.len();
        let mut inv = vec![vec![0u64; k]; k];
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    inv[i][j] = inv_mod(moduli[i] % moduli[j], moduli[j])
                        .expect("chain primes must be distinct");
                }
            }
        }
        RnsContext {
            degree,
            moduli,
            num_chain,
            ntt,
            inv,
            encoder: CkksEncoder::new(degree),
            auto_perms: Mutex::new(HashMap::new()),
        }
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Slot count `N/2`.
    pub fn slots(&self) -> usize {
        self.degree / 2
    }

    /// Number of chain primes `r` (maximum ciphertext level).
    pub fn max_level(&self) -> usize {
        self.num_chain
    }

    /// The `i`-th modulus (chain primes first, special prime last).
    pub fn modulus(&self, i: usize) -> u64 {
        self.moduli[i]
    }

    /// Index of the special prime in the modulus list.
    pub fn special_index(&self) -> usize {
        self.num_chain
    }

    /// The special key-switching prime.
    pub fn special(&self) -> u64 {
        self.moduli[self.num_chain]
    }

    /// NTT table for modulus `i`.
    pub fn ntt(&self, i: usize) -> &NttTable {
        &self.ntt[i]
    }

    /// `moduli[i]^{-1} mod moduli[j]`.
    pub fn inv_mod_of(&self, i: usize, j: usize) -> u64 {
        debug_assert_ne!(i, j);
        self.inv[i][j]
    }

    /// The slot encoder.
    pub fn encoder(&self) -> &CkksEncoder {
        &self.encoder
    }

    /// The NTT-domain permutation realizing the Galois automorphism
    /// `X → X^g` directly on evaluation slots, built once per Galois
    /// element and cached.
    ///
    /// Derivation: the forward NTT places `a(ψ^{2·brv(i)+1})` at slot `i`
    /// (pinned by `chet-math`'s `forward_output_order_is_bitrev_odd_powers`
    /// test). `σ_g(a)` evaluated there is `a(ψ^{(2·brv(i)+1)·g mod 2n})`,
    /// which the untransformed input holds at the slot whose odd exponent
    /// matches — so `perm[i] = brv(((2·brv(i)+1)·g mod 2n − 1) / 2)`.
    /// No sign corrections: evaluation slots carry values, not monomial
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even (even powers are not ring automorphisms of
    /// `Z[X]/(X^N + 1)`).
    pub fn auto_perm(&self, g: usize) -> Arc<Vec<u32>> {
        assert!(g % 2 == 1, "galois element must be odd");
        let mut cache = self
            .auto_perms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(p) = cache.get(&g) {
            return Arc::clone(p);
        }
        let n = self.degree;
        let m = 2 * n;
        let log_n = n.trailing_zeros();
        let mut perm = Vec::with_capacity(n);
        for i in 0..n {
            let e = (2 * bit_reverse(i, log_n) + 1) * g % m;
            perm.push(bit_reverse((e - 1) / 2, log_n) as u32);
        }
        let perm = Arc::new(perm);
        cache.insert(g, Arc::clone(&perm));
        perm
    }
}
