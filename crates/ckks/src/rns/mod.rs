//! SEAL v3.1-style RNS-CKKS backend.

pub mod context;
pub mod evaluator;
pub mod poly;
pub mod pool;
pub mod scheme;
pub mod wire;

pub use context::RnsContext;
pub use poly::RnsPoly;
pub use evaluator::RnsEvaluator;
pub use scheme::{RnsCiphertext, RnsCkks, RnsPlaintext};
