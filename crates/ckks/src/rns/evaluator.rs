//! The server-side role split of the paper's Figure 3.
//!
//! In deployment the *client* holds the private key (encrypt + decrypt)
//! while the *server* holds only public material: the encryption key, the
//! relinearization key and the selected rotation keys. [`RnsEvaluator`] is
//! a [`Hisa`] backend containing exactly the server's material — calling
//! [`Hisa::decrypt`] on it panics, by construction, because the secret key
//! is simply not there.

use super::scheme::RnsCkks;
use chet_hisa::Hisa;

/// Server-side evaluator: public keys only.
///
/// Obtained from [`RnsCkks::evaluator`]. Supports every HISA instruction
/// except decryption.
#[derive(Debug)]
pub struct RnsEvaluator {
    inner: RnsCkks,
}

impl RnsCkks {
    /// Extracts the public, server-side evaluator: the secret key material
    /// is replaced by a freshly drawn unrelated secret, so the evaluator
    /// can encrypt (public-key encryption) and evaluate but can never
    /// decrypt the client's ciphertexts.
    pub fn evaluator(&self) -> RnsEvaluator {
        RnsEvaluator { inner: self.clone_public_material() }
    }
}

impl Hisa for RnsEvaluator {
    type Ct = <RnsCkks as Hisa>::Ct;
    type Pt = <RnsCkks as Hisa>::Pt;

    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn encode(&mut self, values: &[f64], scale: f64) -> Self::Pt {
        self.inner.encode(values, scale)
    }

    fn decode(&mut self, p: &Self::Pt) -> Vec<f64> {
        self.inner.decode(p)
    }

    fn encrypt(&mut self, p: &Self::Pt) -> Self::Ct {
        self.inner.encrypt(p)
    }

    /// # Panics
    ///
    /// Always panics: the evaluator holds no secret key (this is the
    /// security property of the Figure 3 deployment).
    fn decrypt(&mut self, _c: &Self::Ct) -> Self::Pt {
        panic!("RnsEvaluator holds no secret key; decryption happens client-side");
    }

    fn rot_left(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.inner.rot_left(c, x)
    }

    fn rot_right(&mut self, c: &Self::Ct, x: usize) -> Self::Ct {
        self.inner.rot_right(c, x)
    }

    fn rot_left_many(&mut self, c: &Self::Ct, steps: &[usize]) -> Vec<Self::Ct> {
        self.inner.rot_left_many(c, steps)
    }

    fn rot_right_many(&mut self, c: &Self::Ct, steps: &[usize]) -> Vec<Self::Ct> {
        self.inner.rot_right_many(c, steps)
    }

    fn try_rot_left_many(
        &mut self,
        c: &Self::Ct,
        steps: &[usize],
    ) -> Result<Vec<Self::Ct>, chet_hisa::HisaError> {
        self.inner.try_rot_left_many(c, steps)
    }

    fn try_rot_right_many(
        &mut self,
        c: &Self::Ct,
        steps: &[usize],
    ) -> Result<Vec<Self::Ct>, chet_hisa::HisaError> {
        self.inner.try_rot_right_many(c, steps)
    }

    fn add(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.add(a, b)
    }

    fn add_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        self.inner.add_assign(a, b)
    }

    fn sub_assign(&mut self, a: &mut Self::Ct, b: &Self::Ct) {
        self.inner.sub_assign(a, b)
    }

    fn add_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        self.inner.add_plain_assign(a, p)
    }

    fn sub_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        self.inner.sub_plain_assign(a, p)
    }

    fn mul_plain_assign(&mut self, a: &mut Self::Ct, p: &Self::Pt) {
        self.inner.mul_plain_assign(a, p)
    }

    fn add_scalar_assign(&mut self, a: &mut Self::Ct, x: f64) {
        self.inner.add_scalar_assign(a, x)
    }

    fn sub_scalar_assign(&mut self, a: &mut Self::Ct, x: f64) {
        self.inner.sub_scalar_assign(a, x)
    }

    fn mul_scalar_assign(&mut self, a: &mut Self::Ct, x: f64, scale: f64) {
        self.inner.mul_scalar_assign(a, x, scale)
    }

    fn add_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.add_plain(a, p)
    }

    fn add_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.inner.add_scalar(a, x)
    }

    fn sub(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.sub(a, b)
    }

    fn sub_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.sub_plain(a, p)
    }

    fn sub_scalar(&mut self, a: &Self::Ct, x: f64) -> Self::Ct {
        self.inner.sub_scalar(a, x)
    }

    fn mul(&mut self, a: &Self::Ct, b: &Self::Ct) -> Self::Ct {
        self.inner.mul(a, b)
    }

    fn mul_plain(&mut self, a: &Self::Ct, p: &Self::Pt) -> Self::Ct {
        self.inner.mul_plain(a, p)
    }

    fn mul_scalar(&mut self, a: &Self::Ct, x: f64, scale: f64) -> Self::Ct {
        self.inner.mul_scalar(a, x, scale)
    }

    fn rescale(&mut self, c: &Self::Ct, divisor: f64) -> Self::Ct {
        self.inner.rescale(c, divisor)
    }

    fn max_rescale(&mut self, c: &Self::Ct, ub: f64) -> f64 {
        self.inner.max_rescale(c, ub)
    }

    fn scale_of(&self, c: &Self::Ct) -> f64 {
        self.inner.scale_of(c)
    }

    fn available_rotations(&self) -> Option<std::collections::BTreeSet<usize>> {
        self.inner.available_rotations()
    }

    fn fork(&mut self) -> Option<Self> {
        self.inner.fork().map(|inner| RnsEvaluator { inner })
    }

    fn join(&mut self, child: Self) {
        self.inner.join(child.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chet_hisa::{EncryptionParams, RotationKeyPolicy, SecurityLevel};

    fn client() -> RnsCkks {
        let params = EncryptionParams::rns_ckks(2048, 40, 3)
            .with_security(SecurityLevel::Insecure);
        RnsCkks::new(&params, &RotationKeyPolicy::PowersOfTwo, 5)
    }

    const S: f64 = (1u64 << 28) as f64;

    #[test]
    fn server_evaluates_client_decrypts() {
        let mut client = client();
        let mut server = client.evaluator();
        // Client encrypts.
        let pt = client.encode(&[3.0, -1.5], S);
        let ct = client.encrypt(&pt);
        // Server computes (2x)² − 1 without the secret key.
        let doubled = server.mul_scalar(&ct, 2.0, S);
        let d = server.max_rescale(&doubled, S * 2.0);
        let doubled = server.rescale(&doubled, d);
        let squared = server.mul(&doubled, &doubled);
        let result = server.sub_scalar(&squared, 1.0);
        // Client decrypts.
        let out_pt = client.decrypt(&result);
        let out = client.decode(&out_pt);
        assert!((out[0] - 35.0).abs() < 0.05, "got {}", out[0]);
        assert!((out[1] - 8.0).abs() < 0.05, "got {}", out[1]);
    }

    #[test]
    #[should_panic(expected = "no secret key")]
    fn server_cannot_decrypt() {
        let mut client = client();
        let mut server = client.evaluator();
        let pt = client.encode(&[1.0], S);
        let ct = client.encrypt(&pt);
        let _ = server.decrypt(&ct);
    }

    #[test]
    fn server_rotations_use_client_keys() {
        let mut client = client();
        let mut server = client.evaluator();
        let vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let pt = client.encode(&vals, S);
        let ct = client.encrypt(&pt);
        let rotated = server.rot_left(&ct, 3);
        let out_pt = client.decrypt(&rotated);
        let out = client.decode(&out_pt);
        assert!((out[0] - 3.0).abs() < 0.02);
    }
}
